//! Offline stand-in for `serde_json`: renders the local `serde` crate's
//! [`serde::Value`] tree as JSON text. Only the emission half of the API is
//! provided (`to_string`, `to_string_pretty`) — nothing in the workspace
//! parses JSON.

pub use serde::Value;

/// Error type for JSON serialization.
///
/// Emission over the in-memory [`Value`] tree cannot fail, so this carries
/// only a message and exists for API compatibility.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats render with a ".0".
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                // serde_json renders non-finite numbers as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_delimited(items.iter(), ('[', ']'), indent, depth, out, |item, d, o| {
                write_value(item, indent, d, o);
            })
        }
        Value::Map(entries) => {
            write_delimited(entries.iter(), ('{', '}'), indent, depth, out, |(k, val), d, o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, d, o);
            })
        }
    }
}

fn write_delimited<I, F>(
    items: I,
    (open, close): (char, char),
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_item(item, depth + 1, out);
    }
    if !empty {
        newline_indent(indent, depth, out);
    }
    out.push(close);
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_structure() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Seq(vec![Value::U64(1), Value::F64(2.0)])),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&ValueWrap(v.clone())).unwrap();
        assert_eq!(compact, r#"{"name":"a\"b","xs":[1,2.0],"none":null}"#);
        let pretty = to_string_pretty(&ValueWrap(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"a\\\"b\""));
    }

    struct ValueWrap(Value);
    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(to_string_pretty(&ValueWrap(Value::Seq(vec![]))).unwrap(), "[]");
        assert_eq!(to_string_pretty(&ValueWrap(Value::Map(vec![]))).unwrap(), "{}");
    }
}
