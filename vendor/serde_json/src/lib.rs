//! Offline stand-in for `serde_json`: renders the local `serde` crate's
//! [`serde::Value`] tree as JSON text (`to_string`, `to_string_pretty`) and
//! parses JSON text back into a [`Value`] tree (`from_str`) — the half the
//! `gpm-service` JSON-lines protocol reads requests with.

pub use serde::Value;

/// Error type for JSON serialization and parsing.
///
/// Emission over the in-memory [`Value`] tree cannot fail; parse errors
/// carry the byte offset and a description of what was expected.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, msg: impl std::fmt::Display) -> Self {
        Error(format!("at byte {offset}: {msg}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] tree.
///
/// The full JSON grammar is accepted: objects, arrays, strings (with
/// `\uXXXX` escapes, including surrogate pairs), numbers, booleans, and
/// `null`.  Integral numbers parse to [`Value::U64`]/[`Value::I64`], all
/// others to [`Value::F64`].  Trailing content after the document is an
/// error, so each line of a JSON-lines stream parses independently.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters after JSON document"));
    }
    Ok(value)
}

/// Maximum container nesting.  The parser recurses per level, so untrusted
/// input (the gpm-service wire) must not be able to overflow the stack —
/// a stack overflow aborts the whole process, not just the connection.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse(self.pos, "too deeply nested (max 128 levels)"));
        }
        match self.peek() {
            None => Err(Error::parse(self.pos, "unexpected end of input")),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::parse(self.pos, format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected '{lit}'")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX low
                                // surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined = 0x10000
                                            + ((u32::from(hi) - 0xD800) << 10)
                                            + (u32::from(lo) - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(c.ok_or_else(|| {
                                Error::parse(self.pos, "invalid \\u escape sequence")
                            })?);
                        }
                        other => {
                            return Err(Error::parse(
                                self.pos - 1,
                                format!("invalid escape '\\{}'", other as char),
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse(self.pos, "truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse(self.pos, "non-ASCII \\u escape"))?;
        let v = u16::from_str_radix(hex, 16)
            .map_err(|_| Error::parse(self.pos, "invalid hex in \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::parse(start, format!("invalid number '{text}'")))
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats render with a ".0".
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                // serde_json renders non-finite numbers as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_delimited(items.iter(), ('[', ']'), indent, depth, out, |item, d, o| {
                write_value(item, indent, d, o);
            })
        }
        Value::Map(entries) => {
            write_delimited(entries.iter(), ('{', '}'), indent, depth, out, |(k, val), d, o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, d, o);
            })
        }
    }
}

fn write_delimited<I, F>(
    items: I,
    (open, close): (char, char),
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_item(item, depth + 1, out);
    }
    if !empty {
        newline_indent(indent, depth, out);
    }
    out.push(close);
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_structure() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Seq(vec![Value::U64(1), Value::F64(2.0)])),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&ValueWrap(v.clone())).unwrap();
        assert_eq!(compact, r#"{"name":"a\"b","xs":[1,2.0],"none":null}"#);
        let pretty = to_string_pretty(&ValueWrap(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"a\\\"b\""));
    }

    struct ValueWrap(Value);
    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(to_string_pretty(&ValueWrap(Value::Seq(vec![]))).unwrap(), "[]");
        assert_eq!(to_string_pretty(&ValueWrap(Value::Map(vec![]))).unwrap(), "{}");
    }

    #[test]
    fn parses_every_value_kind() {
        let v = from_str(
            r#" {"s":"a\n\"b","n":7,"neg":-3,"x":1.5,"e":2e3,"b":[true,false,null],"o":{}} "#,
        )
        .unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\n\"b"));
        assert_eq!(v.get("n").cloned(), Some(Value::U64(7)));
        assert_eq!(v.get("neg").cloned(), Some(Value::I64(-3)));
        assert_eq!(v.get("x").cloned(), Some(Value::F64(1.5)));
        assert_eq!(v.get("e").cloned(), Some(Value::F64(2000.0)));
        let seq = v.get("b").and_then(Value::as_seq).unwrap();
        assert_eq!(seq, &[Value::Bool(true), Value::Bool(false), Value::Null]);
        assert_eq!(v.get("o").and_then(Value::as_map).map(<[(String, Value)]>::len), Some(0));
    }

    #[test]
    fn parses_unicode_escapes_and_raw_utf8() {
        let v = from_str(r#""café 😀 naïve""#).unwrap();
        assert_eq!(v.as_str(), Some("café 😀 naïve"));
    }

    #[test]
    fn round_trips_through_to_string() {
        let original = Value::Map(vec![
            ("algorithm".into(), Value::Str("G-PR-Shr@adaptive:0.7".into())),
            (
                "edges".into(),
                Value::Seq(vec![
                    Value::Seq(vec![Value::U64(0), Value::U64(1)]),
                    Value::Seq(vec![Value::U64(2), Value::U64(0)]),
                ]),
            ),
            ("seconds".into(), Value::F64(0.25)),
            ("device".into(), Value::Null),
        ]);
        let text = to_string(&ValueWrap(original.clone())).unwrap();
        assert_eq!(from_str(&text).unwrap(), original);
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            let err = from_str(bad).unwrap_err();
            assert!(err.to_string().contains("at byte"), "{bad:?}: {err}");
        }
        assert!(from_str("[1] []").unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn surrogate_pairs_validate_and_malformed_pairs_fail() {
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::Str("😀".into()));
        // An escaped surrogate pair decodes to the same character.
        assert_eq!(from_str(r#""\uD83D\uDE00""#).unwrap(), Value::Str("😀".into()));
        // High surrogate followed by a non-surrogate must error, not panic.
        assert!(from_str(r#""\uD800A""#).is_err());
        // Lone high surrogate, lone low surrogate.
        assert!(from_str(r#""\uD800""#).is_err());
        assert!(from_str(r#""\uDC00x""#).is_err());
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // A hostile one-liner must be rejected, not overflow the stack.
        let deep = "[".repeat(100_000);
        let err = from_str(&deep).unwrap_err();
        assert!(err.to_string().contains("deeply nested"), "{err}");
        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn large_integers_stay_exact() {
        assert_eq!(from_str("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(from_str("-9223372036854775808").unwrap(), Value::I64(i64::MIN));
    }
}
