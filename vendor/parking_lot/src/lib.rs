//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (tiny) subset of the `parking_lot` API the project
//! uses, implemented on top of `std::sync`. Semantics match `parking_lot`
//! where they differ from `std`: locks are not poisoned — a panic while a
//! guard is held simply releases the lock.

use std::sync::PoisonError;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock()` returns
/// the guard directly (no poisoning), matching `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("boom");
        });
        assert_eq!(*m.lock(), 0);
    }
}
