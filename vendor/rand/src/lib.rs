//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand` 0.8 API used by this workspace —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range`, and `gen_bool` — implemented with a
//! deterministic xoshiro256++ generator seeded by SplitMix64. The exact
//! stream differs from upstream `rand`, which is fine: every consumer in
//! this workspace treats seeds as opaque reproducibility handles.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be instantiated from a numeric seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value from the "standard" distribution of `T`:
    /// uniform over all values for integers, `[0, 1)` for floats,
    /// fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from `self`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit-spanning type
                    // cannot occur for the <=64-bit types we implement.
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against round-up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state and
            // guarantees a non-zero state even for seed 0.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }
}
