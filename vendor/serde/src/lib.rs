//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! serialization surface the workspace actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, consumed by the local
//! `serde_json` stand-in. Instead of upstream serde's visitor architecture,
//! [`Serialize`] lowers values into a small JSON-like [`Value`] tree, which
//! is all a reproduction harness needs for report/figure output.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree produced by [`Serialize::to_value`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// For maps: the value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// `true` iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can lower themselves into a [`Value`] tree.
///
/// Derivable via `#[derive(Serialize)]` for structs with named fields and
/// for enums with unit or tuple variants.
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A `Value` serializes as itself, so hand-built trees can be passed
/// straight to `serde_json::to_string`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {}

/// Marker trait for types that declare themselves deserializable.
///
/// Nothing in the workspace currently deserializes, so the derive only
/// emits a marker impl; the trait exists so `#[derive(Deserialize)]` and
/// `T: Deserialize` bounds compile unchanged.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_select_the_right_variants() {
        let v = Value::Map(vec![
            ("n".into(), Value::U64(7)),
            ("neg".into(), Value::I64(-2)),
            ("x".into(), Value::F64(1.5)),
            ("s".into(), Value::Str("hi".into())),
            ("b".into(), Value::Bool(true)),
            ("xs".into(), Value::Seq(vec![Value::Null])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("neg").and_then(Value::as_i64), Some(-2));
        assert_eq!(v.get("neg").and_then(Value::as_u64), None);
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Value::as_seq).map(<[Value]>::len), Some(1));
        assert!(v.get("xs").unwrap().as_seq().unwrap()[0].is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_map().map(<[(String, Value)]>::len), Some(6));
        assert!(Value::Null.get("n").is_none());
    }

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(vec![1u32, 2].to_value(), Value::Seq(vec![Value::U64(1), Value::U64(2)]));
    }
}
