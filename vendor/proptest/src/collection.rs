//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec`s with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = Vec::new();
        let min = self.size.start;
        let len = value.len();
        // Structural shrinks first: shorter vectors fail faster.
        if len > min {
            out.push(value[..min].to_vec());
            let half = (len / 2).max(min);
            if half != min && half != len {
                out.push(value[..half].to_vec());
            }
            out.push(value[..len - 1].to_vec());
            if len - min > 1 {
                out.push(value[len - min..].to_vec().clone());
                out.push(value[1..].to_vec());
            }
        }
        // Then element-wise shrinks on a bounded prefix.
        for i in 0..len.min(16) {
            for cand in self.element.shrink(&value[i]).into_iter().take(2) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampled_lengths_and_elements_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let strat = vec(0u32..7, 2..20);
        for _ in 0..500 {
            let v = strat.sample(&mut rng);
            assert!((2..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn shrinks_never_go_below_min_len() {
        let mut rng = StdRng::seed_from_u64(12);
        let strat = vec(0u32..7, 2..20);
        let v = strat.sample(&mut rng);
        for s in strat.shrink(&v) {
            assert!(s.len() >= 2);
            assert!(s.iter().all(|&x| x < 7));
        }
    }
}
