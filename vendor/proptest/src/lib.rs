//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! property-testing surface the workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range/tuple/`any`/[`collection::vec()`]
//! strategies, the `proptest!`/`prop_assert!` macros, and a runner with
//! deterministic per-case seeding and greedy shrinking.
//!
//! Differences from upstream proptest, by design:
//!
//! * Shrinking works on final values via [`Strategy::shrink`] candidates
//!   rather than proptest's `ValueTree` bisection, so mapped/flat-mapped
//!   strategies do not shrink through the mapping (custom strategies can
//!   implement `shrink` directly on their output — see the workspace's
//!   `gpm-testutil`).
//! * Cases are seeded deterministically from the test name and case index;
//!   there is no failure persistence file.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..100, ys in proptest::collection::vec(0u64..10, 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(&config, stringify!($name), strategy, |($($arg,)+)| $body);
            }
        )*
    };
}
