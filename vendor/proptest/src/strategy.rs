//! The [`Strategy`] trait and the primitive strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of arbitrary values with optional shrinking.
///
/// `sample` draws one value; `shrink` proposes strictly "simpler" candidate
/// values derived from a failing one (the runner keeps any candidate that
/// still fails and iterates to a local minimum).
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes simpler candidates for `value`. Every candidate must itself
    /// be a value this strategy could have produced.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    ///
    /// Mapped strategies do not shrink (the mapping is not invertible);
    /// implement [`Strategy::shrink`] on a custom strategy to shrink
    /// structured values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `predicate` (resampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, predicate }
    }

    /// Erases the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Clone + Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Strategy that always yields a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        self.inner.shrink(value).into_iter().filter(|v| (self.predicate)(v)).collect()
    }
}

/// Types with a canonical "any value" strategy, mirroring `proptest::Arbitrary`.
pub trait Arbitrary: Clone + Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;

    /// Proposes simpler candidates (toward zero/false).
    fn shrink_value(&self) -> Vec<Self>;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }

            fn shrink_value(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    let half = self / 2;
                    if half != 0 {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }

    fn shrink_value(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != lo {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_samples_stay_in_bounds_and_shrink_downward() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = 5u32..50;
        for _ in 0..1000 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((5..50).contains(&v));
            for s in Strategy::shrink(&strat, &v) {
                assert!(s < v && (5..50).contains(&s));
            }
        }
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let strat = (0u32..10, 0u32..10);
        let shrunk = strat.shrink(&(4, 6));
        assert!(!shrunk.is_empty());
        for (a, b) in shrunk {
            assert!((a, b) != (4, 6));
            assert!(a == 4 || b == 6);
        }
    }

    #[test]
    fn flat_map_composes() {
        let mut rng = StdRng::seed_from_u64(9);
        let strat = (1usize..10).prop_flat_map(|n| (0..n as u32, Just(n)));
        for _ in 0..500 {
            let (v, n) = strat.sample(&mut rng);
            assert!((v as usize) < n);
        }
    }
}
