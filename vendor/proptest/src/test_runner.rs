//! Case execution: deterministic seeding, panic capture, greedy shrinking.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Upper bound on shrink candidates evaluated after a failure.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 2048 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Runs `test` against `config.cases` sampled values; on failure, shrinks to
/// a local minimum and panics with the minimal reproducing input.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    for case in 0..config.cases {
        let seed = case_seed(name, case);
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strategy.sample(&mut rng);
        if let Err(payload) = run_case(&test, value.clone()) {
            let minimal = shrink_failure(config, &strategy, value, &test);
            panic!(
                "proptest `{name}` failed at case {case} (seed {seed}).\n\
                 original failure: {}\n\
                 minimal failing input: {minimal:#?}",
                payload_message(payload.as_ref())
            );
        }
    }
}

fn run_case<V, F: Fn(V)>(test: &F, value: V) -> Result<(), Box<dyn std::any::Any + Send>> {
    catch_unwind(AssertUnwindSafe(|| test(value)))
}

fn shrink_failure<S, F>(
    config: &ProptestConfig,
    strategy: &S,
    mut current: S::Value,
    test: &F,
) -> S::Value
where
    S: Strategy,
    F: Fn(S::Value),
{
    // Silence the panic hook while probing candidates: every failing
    // candidate panics by design, and up to max_shrink_iters backtraces
    // would bury the final report. The hook is global, so a concurrently
    // failing test's first message may be swallowed too — same trade-off
    // upstream proptest makes.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut budget = config.max_shrink_iters;
    'outer: while budget > 0 {
        for candidate in strategy.shrink(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if run_case(test, candidate.clone()).is_err() {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    std::panic::set_hook(saved_hook);
    current
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// FNV-1a over the test name, mixed with the case index — deterministic
/// across runs, distinct across tests and cases.
fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        run(&ProptestConfig::with_cases(17), "passing", 0u32..100, |v| {
            counter.set(counter.get() + 1);
            assert!(v < 100);
        });
        assert_eq!(counter.get(), 17);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run(&ProptestConfig::with_cases(200), "failing", 0u32..1000, |v| {
                assert!(v < 50, "too big");
            });
        }))
        .expect_err("property must fail");
        let msg = payload_message(err.as_ref());
        // Greedy shrinking must land exactly on the boundary value.
        assert!(msg.contains("minimal failing input: 50"), "got: {msg}");
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(case_seed("a", 0), case_seed("a", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
    }
}
