//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
