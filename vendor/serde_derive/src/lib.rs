//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! local `serde` crate without `syn`/`quote` (neither is available offline):
//! the item's token stream is scanned directly. Supported shapes — all the
//! workspace uses — are structs with named fields and enums with unit,
//! tuple, or named-field variants, without generic parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Derives `serde::Serialize` by lowering the value into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match &item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let payload = if *n == 1 {
                            values[0].clone()
                        } else {
                            format!("::serde::Value::Seq(::std::vec![{}])", values.join(", "))
                        };
                        format!(
                            "{name}::{v}({binders}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {payload})]),",
                            binders = binders.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {fs} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{entries}]))]),",
                            fs = fs.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive stub generated invalid Rust")
}

/// Derives the marker trait `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => return Err(format!("serde derive stub: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive stub: expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive stub: generic parameters on `{name}` are not supported"
            ));
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => {
                return Err(format!(
                    "serde derive stub: `{name}` has no braced body (tuple/unit structs \
                     are not supported)"
                ))
            }
        }
    };
    if kind == "struct" {
        Ok(Item::Struct { name, fields: parse_named_fields(body)? })
    } else {
        Ok(Item::Enum { name, variants: parse_variants(body)? })
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute's bracket group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional pub(crate) restriction
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` bodies, returning the field names. Commas inside
/// angle brackets (`Vec<(A, B)>` arrives as a group, but `Result<A, B>` does
/// not) are tracked via `<`/`>` depth; `->` does not occur in these types.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde derive stub: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde derive stub: expected `:` after field `{field}`, got {other:?}"
                ))
            }
        }
        fields.push(field);
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!("serde derive stub: expected variant name, got {other:?}"))
            }
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an optional discriminant, then the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}
