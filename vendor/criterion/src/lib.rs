//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple mean-of-samples timer instead of criterion's statistical
//! machinery. Good enough to compare orders of magnitude and to keep every
//! bench compiling and runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns `x` opaquely to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to every bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a standalone benchmark named `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Runs `f` with `input` as a benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter, `"name/param"`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_one<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One warm-up call, then `sample_size` timed samples.
    let mut bencher = Bencher { samples: Vec::new() };
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let total: Duration = bencher.samples.iter().sum();
    let samples = bencher.samples.len().max(1);
    let mean = total / samples as u32;
    println!("{name:<60} time: [{}]  ({samples} samples)", format_duration(mean));
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this
            // stand-in runs everything and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_respects_sample_size() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("test");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                })
            });
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
