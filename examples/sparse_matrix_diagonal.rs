//! Maximum transversal of a sparse matrix: permute columns so that the
//! diagonal has as few zeros as possible.
//!
//! This is the sparse-linear-solver use case from the paper's introduction
//! ("maximum cardinality bipartite matching is also employed routinely in
//! sparse linear solvers"): a maximum matching between rows and columns of
//! the nonzero pattern gives a column permutation with a maximum number of
//! nonzero diagonal entries, a standard preprocessing step (MC21/`dmperm`).
//!
//! ```text
//! cargo run --release --example sparse_matrix_diagonal [path/to/matrix.mtx]
//! ```
//!
//! Without an argument a synthetic planted-transversal matrix is used.

use gpu_pr_matching::core::solver::{Algorithm, Solver};
use gpu_pr_matching::graph::{gen, io, BipartiteCsr};

fn load_graph() -> BipartiteCsr {
    match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path}");
            io::read_matrix_market_file(&path).unwrap_or_else(|e| {
                eprintln!("could not read {path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            println!("no .mtx given, generating a synthetic 5000x5000 sparse pattern");
            gen::planted_perfect(5_000, 35_000, 7).expect("generator")
        }
    }
}

fn main() {
    let graph = load_graph();
    println!(
        "pattern: {} x {} with {} nonzeros",
        graph.num_rows(),
        graph.num_cols(),
        graph.num_edges()
    );

    let mut solver = Solver::builder().build().expect("valid solver config");
    let report = solver.solve(&graph, Algorithm::gpr_default()).unwrap_or_else(|e| {
        eprintln!("solve failed: {e}");
        std::process::exit(1);
    });
    let matching = &report.matching;
    let structural_rank = report.cardinality;
    println!(
        "structural rank (maximum transversal size): {} of {}",
        structural_rank,
        graph.num_rows().min(graph.num_cols())
    );
    if structural_rank < graph.num_rows().min(graph.num_cols()) {
        println!("the matrix is structurally singular (no zero-free diagonal exists)");
    }

    // Build the column permutation: column perm[r] is moved to position r, so
    // entry (r, perm[r]) lands on the diagonal.
    let mut perm: Vec<Option<u32>> = vec![None; graph.num_rows()];
    for r in 0..graph.num_rows() as u32 {
        perm[r as usize] = matching.row_mate(r);
    }
    let on_diagonal = perm.iter().filter(|p| p.is_some()).count();
    println!("column permutation places {on_diagonal} nonzeros on the diagonal");

    // Show the head of the permutation.
    print!("perm head: ");
    for (r, p) in perm.iter().take(10).enumerate() {
        match p {
            Some(c) => print!("{r}->{c} "),
            None => print!("{r}->* "),
        }
    }
    println!();
    println!(
        "solved with {} in {:.3} ms of modelled device time",
        report.algorithm,
        report.modelled_device_seconds.unwrap_or(0.0) * 1e3
    );
}
