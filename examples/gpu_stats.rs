//! Kernel-level anatomy of one G-PR run: how many times each kernel launched,
//! how many threads it used, and where the modelled device time went — the
//! kind of breakdown the paper uses to motivate the active-list and shrinking
//! optimizations.
//!
//! ```text
//! cargo run --release --example gpu_stats [instance-name]
//! ```

use gpu_pr_matching::core::gpr::{self, GprConfig, GprVariant};
use gpu_pr_matching::core::GrStrategy;
use gpu_pr_matching::gpu::VirtualGpu;
use gpu_pr_matching::graph::heuristics::cheap_matching;
use gpu_pr_matching::graph::instances::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "kron_g500-logn20".to_string());
    let spec = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown instance '{name}'; see gpm_graph::instances::paper_suite()");
        std::process::exit(1);
    });
    let graph = spec.generate(Scale::Small).expect("generator");
    let initial = cheap_matching(&graph);
    println!(
        "{name}: {} rows, {} edges, IM = {}",
        graph.num_rows(),
        graph.num_edges(),
        initial.cardinality()
    );

    for variant in [GprVariant::First, GprVariant::ActiveList, GprVariant::Shrink] {
        let gpu = VirtualGpu::parallel();
        let config = GprConfig {
            variant,
            strategy: GrStrategy::paper_default(),
            ..GprConfig::paper_default()
        };
        let result = gpr::run(&gpu, &graph, &initial, config);
        println!(
            "\n=== {} ===  matching {}  loops {}  global relabels {}  shrinks {}",
            variant.label(),
            result.matching.cardinality(),
            result.stats.loops,
            result.stats.global_relabels,
            result.stats.shrinks
        );
        println!(
            "{:<22} {:>8} {:>12} {:>12} {:>12}",
            "kernel", "launches", "threads", "work", "modelled ms"
        );
        for (kernel, k) in &result.stats.device.kernels {
            println!(
                "{:<22} {:>8} {:>12} {:>12} {:>12.3}",
                kernel,
                k.launches,
                k.total_threads,
                k.total_work,
                k.modelled_time_ns / 1e6
            );
        }
        println!(
            "total modelled device time: {:.3} ms (host {:.3} ms)",
            result.stats.device.modelled_time_secs() * 1e3,
            result.stats.seconds * 1e3
        );
    }
}
