//! Instance sweep: run the paper's comparison algorithms over the mini suite
//! (one stand-in per structural family of Table I) and print a compact table.
//!
//! ```text
//! cargo run --release --example instance_sweep
//! ```

use gpu_pr_matching::core::solver::{paper_comparison_set, Solver};
use gpu_pr_matching::graph::heuristics::cheap_matching;
use gpu_pr_matching::graph::instances::{mini_suite, Scale};

fn main() {
    let scale = Scale::Tiny;
    println!(
        "{:<20} {:>8} {:>9} {:>8} {:>8}   {:>10} {:>10} {:>10} {:>10}",
        "instance", "rows", "edges", "IM", "MM", "G-PR", "G-HKDW", "P-DBFS", "PR"
    );
    // One warm solver session sweeps the whole suite: the device and all
    // per-algorithm buffers are created once and reused.
    let mut solver = Solver::builder().build().expect("valid solver config");
    for spec in mini_suite() {
        let graph = spec.generate(scale).expect("generator");
        let initial = cheap_matching(&graph);
        let mut times = Vec::new();
        let mut mm = 0;
        for alg in paper_comparison_set() {
            let report = solver.solve_with_initial(&graph, &initial, alg).expect("solve");
            mm = report.cardinality;
            times.push(report.comparable_seconds() * 1e3);
        }
        println!(
            "{:<20} {:>8} {:>9} {:>8} {:>8}   {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9.2}ms",
            spec.name,
            graph.num_rows(),
            graph.num_edges(),
            initial.cardinality(),
            mm,
            times[0],
            times[1],
            times[2],
            times[3]
        );
    }
    println!("\n(times: modelled device ms for GPU algorithms, host ms for CPU algorithms)");
}
