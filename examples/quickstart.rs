//! Quickstart: build a bipartite graph, run the paper's G-PR algorithm on the
//! virtual GPU, and verify the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_pr_matching::core::solver::{Algorithm, Solver};
use gpu_pr_matching::graph::verify;
use gpu_pr_matching::graph::{gen, heuristics};

fn main() {
    // A Kronecker-style bipartite graph with a heavy-tailed degree
    // distribution, like the kron_g500 instances of the paper.
    let graph = gen::rmat(gen::RmatParams::graph500(12, 8), 42).expect("generator");
    println!(
        "graph: {} rows, {} cols, {} edges",
        graph.num_rows(),
        graph.num_cols(),
        graph.num_edges()
    );

    // The paper initializes every algorithm with the cheap greedy matching.
    let initial = heuristics::cheap_matching(&graph);
    println!("cheap initial matching: {} pairs", initial.cardinality());

    // A solver session owns the virtual GPU and warm per-algorithm buffers;
    // run G-PR (shrinking active lists, adaptive global relabeling) on it.
    let mut solver = Solver::builder().build().expect("valid solver config");
    let report = solver.solve(&graph, Algorithm::gpr_default()).expect("solve");
    println!(
        "{}: maximum matching of {} pairs ({} found by the initializer)",
        report.algorithm, report.cardinality, report.initial_cardinality
    );
    println!(
        "host time {:.3} ms, modelled device time {:.3} ms",
        report.wall_seconds * 1e3,
        report.modelled_device_seconds.unwrap_or(0.0) * 1e3
    );

    // Verify with the independent oracle: no augmenting path may remain.
    assert!(verify::is_maximum(&graph, &report.matching), "result must be maximum");
    println!("verified: the matching is maximum (Berge certificate)");

    // Kernel-level breakdown.
    if let Some(stats) = &report.device_stats {
        println!("\nper-kernel device statistics:");
        for (name, k) in &stats.kernels {
            println!(
                "  {:<22} launches {:>5}  threads {:>9}  modelled {:>8.3} ms",
                name,
                k.launches,
                k.total_threads,
                k.modelled_time_ns / 1e6
            );
        }
    }
}
