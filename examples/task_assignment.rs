//! Task assignment: match workers to tasks under eligibility constraints and
//! compare the GPU algorithm against the CPU baselines.
//!
//! The scheduling use case from the paper's introduction: `m` workers, `n`
//! tasks, an edge when a worker is qualified for a task; a maximum matching
//! is a largest set of simultaneous assignments.
//!
//! ```text
//! cargo run --release --example task_assignment [workers] [tasks]
//! ```

use gpu_pr_matching::core::solver::{paper_comparison_set, Solver};
use gpu_pr_matching::graph::{heuristics, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let workers: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let tasks: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(22_000);

    // Eligibility model: most workers are generalists qualified for a handful
    // of random tasks; a few specialists are qualified for one rare task
    // only, which is what makes greedy assignment suboptimal.
    let mut rng = StdRng::seed_from_u64(99);
    let mut builder = GraphBuilder::with_capacity(workers, tasks, workers * 6);
    for w in 0..workers as u32 {
        let skills = 1 + rng.gen_range(0..6);
        for _ in 0..skills {
            // Skewed task popularity: low-index tasks are requested more.
            let t = (rng.gen_range(0.0f64..1.0).powi(2) * tasks as f64) as u32;
            builder.add_edge(w, t.min(tasks as u32 - 1)).expect("in bounds");
        }
    }
    let graph = builder.build();
    println!(
        "{} workers, {} tasks, {} eligibility pairs",
        graph.num_rows(),
        graph.num_cols(),
        graph.num_edges()
    );

    // Reference upper bound from a plain generator-independent oracle (HK).
    let mut best: Option<usize> = None;
    println!("\n{:<10} {:>12} {:>14} {:>14}", "algorithm", "assignments", "host ms", "device ms");
    // Batch-solve the whole comparison on one warm session: one Result per
    // job, so a misconfigured algorithm would not abort the sweep.
    let mut solver = Solver::builder().build().expect("valid solver config");
    let jobs = paper_comparison_set().into_iter().map(|alg| (&graph, alg));
    for result in solver.solve_batch(jobs) {
        let report = result.expect("solve");
        println!(
            "{:<10} {:>12} {:>14.3} {:>14.3}",
            report.algorithm,
            report.cardinality,
            report.wall_seconds * 1e3,
            report.modelled_device_seconds.map(|s| s * 1e3).unwrap_or(f64::NAN)
        );
        if let Some(prev) = best {
            assert_eq!(prev, report.cardinality, "all algorithms must agree");
        }
        best = Some(report.cardinality);
    }

    // How much better than naive greedy assignment?
    let greedy = heuristics::cheap_matching(&graph).cardinality();
    let optimal = best.unwrap_or(0);
    println!(
        "\ngreedy assignment covers {greedy} tasks; maximum matching covers {optimal} \
         (+{} assignments recovered)",
        optimal - greedy
    );
}
