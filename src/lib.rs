//! # gpu-pr-matching — umbrella crate
//!
//! Re-exports the public API of the workspace crates.  See the README for a
//! tour; the individual crates are:
//!
//! * [`graph`] (`gpm-graph`) — bipartite graph substrate, generators, I/O,
//!   verification oracles, initialization heuristics.
//! * [`gpu`] (`gpm-gpu`) — the virtual SIMT GPU the kernels run on.
//! * [`cpu`] (`gpm-cpu`) — sequential and multicore baselines (PR, PF+, HK,
//!   HKDW, P-DBFS).
//! * [`core`] (`gpm-core`) — the paper's G-PR algorithm family and the
//!   G-HK/G-HKDW GPU baselines, plus the unified [`core::solver`] front-end.
//! * [`service`] (`gpm-service`) — the concurrent matching service: a warm
//!   solver pool behind [`service::Service`], a content-addressed graph
//!   cache, and a JSON-lines TCP front-end (`gpm-service` binary).
//!
//! ## Quick start
//!
//! ```
//! use gpu_pr_matching::core::solver::{Algorithm, Solver};
//! use gpu_pr_matching::graph::{gen, verify};
//!
//! // A solver session: owns the virtual GPU and a warm workspace per
//! // algorithm, so repeated solves skip the per-call setup.
//! let mut solver = Solver::builder().build().unwrap();
//!
//! // A 300-row graph with a planted perfect matching plus 1 200 noise edges.
//! let graph = gen::planted_perfect(300, 1_200, 7).unwrap();
//!
//! // The paper's headline algorithm: G-PR-Shr with the (adaptive, 0.7)
//! // global-relabeling strategy, run on the virtual GPU.
//! let report = solver.solve(&graph, Algorithm::gpr_default()).unwrap();
//!
//! assert_eq!(report.cardinality, 300);
//! assert!(verify::is_maximum(&graph, &report.matching));
//!
//! // Algorithms have round-trippable labels, and batches return one
//! // Result per job:
//! let alg: Algorithm = "G-PR-Shr@adaptive:0.7".parse().unwrap();
//! let results = solver.solve_batch(vec![(&graph, alg), (&graph, Algorithm::HopcroftKarp)]);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```
//!
//! Migrating from the pre-session API: the free functions
//! `core::solver::solve` / `solve_with_initial` still exist as shims over a
//! throwaway `Solver`, but now return `Result` — append `?`/`.unwrap()`, or
//! switch to a reusable `Solver::builder()` session.

pub use gpm_core as core;
pub use gpm_cpu as cpu;
pub use gpm_gpu as gpu;
pub use gpm_graph as graph;
pub use gpm_service as service;
