//! # gpu-pr-matching — umbrella crate
//!
//! Re-exports the public API of the workspace crates.  See the README for a
//! tour; the individual crates are:
//!
//! * [`graph`] (`gpm-graph`) — bipartite graph substrate, generators, I/O,
//!   verification oracles, initialization heuristics.
//! * [`gpu`] (`gpm-gpu`) — the virtual SIMT GPU the kernels run on.
//! * [`cpu`] (`gpm-cpu`) — sequential and multicore baselines (PR, PF+, HK,
//!   HKDW, P-DBFS).
//! * [`core`] (`gpm-core`) — the paper's G-PR algorithm family and the
//!   G-HK/G-HKDW GPU baselines, plus the unified [`core::solver`] front-end.

pub use gpm_core as core;
pub use gpm_cpu as cpu;
pub use gpm_gpu as gpu;
pub use gpm_graph as graph;
