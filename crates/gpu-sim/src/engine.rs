//! The virtual GPU device and its kernel-launch engine.

use crate::perfmodel::PerfModel;
use crate::stats::DeviceStats;
use parking_lot::Mutex;
use std::cell::Cell;

/// How kernel threads are executed on the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// All logical threads run on the calling host thread, in increasing
    /// thread-id order.  Fully deterministic; used by tests that need a
    /// reproducible interleaving and as the reference for cross-backend
    /// equivalence checks.
    Sequential,
    /// Logical threads are partitioned over `workers` host threads which run
    /// truly concurrently, so the benign races the paper's kernels allow
    /// actually happen.  This is the default for benchmarks.
    Parallel {
        /// Number of host worker threads.
        workers: usize,
    },
}

impl Backend {
    /// A parallel backend sized to the host's available parallelism.
    pub fn parallel_auto() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Backend::Parallel { workers }
    }
}

/// Configuration of a virtual GPU device.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Human-readable device name (shows up in reports).
    pub name: String,
    /// Host execution backend.
    pub backend: Backend,
    /// Analytical cost model used for modelled device time.
    pub perf: PerfModel,
    /// Grids smaller than this run inline on the calling thread even with a
    /// parallel backend; mirrors the fact that tiny CUDA grids cannot fill
    /// the device and their cost is dominated by launch overhead.
    pub parallel_threshold: usize,
}

impl GpuConfig {
    /// Tesla C2050-like configuration with the given backend.
    pub fn tesla_c2050(backend: Backend) -> Self {
        Self {
            name: "Virtual Tesla C2050".to_string(),
            backend,
            perf: PerfModel::tesla_c2050(),
            parallel_threshold: 2048,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::tesla_c2050(Backend::parallel_auto())
    }
}

/// Per-logical-thread execution context handed to kernels.
///
/// `global_id` plays the role of
/// `blockIdx.x * blockDim.x + threadIdx.x` in the CUDA kernels of the paper.
pub struct ThreadCtx {
    /// Global thread index within the launch (0-based).
    pub global_id: usize,
    /// Total number of logical threads in the launch.
    pub grid_size: usize,
    work: Cell<u64>,
}

impl ThreadCtx {
    fn new(global_id: usize, grid_size: usize) -> Self {
        Self { global_id, grid_size, work: Cell::new(0) }
    }

    /// Reports `units` of memory work (one unit ≈ one adjacency entry /
    /// global-memory transaction).  Feeds the cost model; has no effect on
    /// algorithm semantics.
    #[inline]
    pub fn add_work(&self, units: u64) {
        self.work.set(self.work.get() + units);
    }

    /// Work reported so far by this thread.
    #[inline]
    pub fn work(&self) -> u64 {
        self.work.get()
    }
}

/// Outcome of a single kernel launch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaunchRecord {
    /// Grid size of the launch.
    pub threads: usize,
    /// Total work units reported by all threads.
    pub work: u64,
    /// Maximum work reported by a single thread (divergence indicator).
    pub max_thread_work: u64,
    /// Modelled device time of the launch, nanoseconds.
    pub modelled_time_ns: f64,
    /// Host wall-clock time of the launch, nanoseconds.
    pub wall_time_ns: f64,
}

/// The virtual GPU device.
///
/// A `VirtualGpu` owns no memory; [`crate::DeviceBuffer`]s are created
/// independently and captured by kernel closures, mirroring how CUDA kernels
/// receive device pointers.
pub struct VirtualGpu {
    config: GpuConfig,
    stats: Mutex<DeviceStats>,
}

impl VirtualGpu {
    /// Creates a device with the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        Self { config, stats: Mutex::new(DeviceStats::default()) }
    }

    /// Tesla C2050-like device with the given backend.
    pub fn tesla_c2050(backend: Backend) -> Self {
        Self::new(GpuConfig::tesla_c2050(backend))
    }

    /// Tesla C2050-like device with a deterministic sequential backend.
    pub fn sequential() -> Self {
        Self::tesla_c2050(Backend::Sequential)
    }

    /// Tesla C2050-like device with an auto-sized parallel backend.
    pub fn parallel() -> Self {
        Self::tesla_c2050(Backend::parallel_auto())
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Launches a kernel over `grid` logical threads and blocks until every
    /// thread has finished (the implicit barrier at the end of a CUDA launch
    /// on the default stream).
    ///
    /// The kernel closure is invoked once per logical thread with a
    /// [`ThreadCtx`]; it typically captures [`crate::DeviceBuffer`]
    /// references and indexes them with `ctx.global_id`.
    pub fn launch<F>(&self, name: &str, grid: usize, kernel: F) -> LaunchRecord
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let start = std::time::Instant::now();
        let (work, max_thread_work) = match self.config.backend {
            Backend::Sequential => Self::run_range(0, grid, grid, &kernel),
            Backend::Parallel { workers } => {
                if grid < self.config.parallel_threshold || workers <= 1 {
                    Self::run_range(0, grid, grid, &kernel)
                } else {
                    self.run_parallel(grid, workers, &kernel)
                }
            }
        };
        let wall_time_ns = start.elapsed().as_nanos() as f64;
        let modelled_time_ns = self.config.perf.launch_cost_ns(grid, work, max_thread_work);
        let record =
            LaunchRecord { threads: grid, work, max_thread_work, modelled_time_ns, wall_time_ns };
        self.stats.lock().record(name, grid, work, modelled_time_ns, wall_time_ns);
        record
    }

    fn run_range<F>(start: usize, end: usize, grid: usize, kernel: &F) -> (u64, u64)
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let mut total = 0u64;
        let mut max = 0u64;
        for id in start..end {
            let ctx = ThreadCtx::new(id, grid);
            kernel(&ctx);
            let w = ctx.work();
            total += w;
            max = max.max(w);
        }
        (total, max)
    }

    fn run_parallel<F>(&self, grid: usize, workers: usize, kernel: &F) -> (u64, u64)
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let chunk = grid.div_ceil(workers);
        let mut results: Vec<(u64, u64)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(grid);
                if start >= end {
                    break;
                }
                handles.push(scope.spawn(move || Self::run_range(start, end, grid, kernel)));
            }
            for h in handles {
                results.push(h.join().expect("virtual GPU worker panicked"));
            }
        });
        results.iter().fold((0, 0), |(t, m), &(w, mw)| (t + w, m.max(mw)))
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats.lock().clone()
    }

    /// Clears the accumulated statistics.
    pub fn reset_stats(&self) {
        *self.stats.lock() = DeviceStats::default();
    }
}

impl std::fmt::Debug for VirtualGpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualGpu")
            .field("name", &self.config.name)
            .field("backend", &self.config.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;

    #[test]
    fn launch_runs_every_thread_exactly_once() {
        for gpu in [VirtualGpu::sequential(), VirtualGpu::parallel()] {
            let out = DeviceBuffer::<u32>::new(10_000, 0);
            gpu.launch("mark", out.len(), |ctx| {
                out.set(ctx.global_id, ctx.global_id as u32 + 1);
            });
            let host = out.to_vec();
            for (i, v) in host.iter().enumerate() {
                assert_eq!(*v, i as u32 + 1);
            }
        }
    }

    #[test]
    fn zero_grid_launch_is_fine() {
        let gpu = VirtualGpu::parallel();
        let rec = gpu.launch("empty", 0, |_ctx| panic!("no threads should run"));
        assert_eq!(rec.threads, 0);
        assert_eq!(rec.work, 0);
        assert_eq!(gpu.stats().launches_of("empty"), 1);
    }

    #[test]
    fn work_accounting_sums_and_maxes() {
        let gpu = VirtualGpu::sequential();
        let rec = gpu.launch("work", 4, |ctx| {
            ctx.add_work(ctx.global_id as u64);
            assert_eq!(ctx.work(), ctx.global_id as u64);
        });
        // Work accumulated across thread ids 0..4.
        assert_eq!(rec.work, 1 + 2 + 3);
        assert_eq!(rec.max_thread_work, 3);
        assert!(rec.modelled_time_ns > 0.0);
    }

    #[test]
    fn parallel_backend_covers_all_threads_above_threshold() {
        let gpu = VirtualGpu::new(GpuConfig {
            parallel_threshold: 8,
            ..GpuConfig::tesla_c2050(Backend::Parallel { workers: 4 })
        });
        let grid = 100_000;
        let out = DeviceBuffer::<u32>::new(grid, 0);
        gpu.launch("cover", grid, |ctx| out.set(ctx.global_id, 1));
        assert_eq!(out.to_vec().iter().map(|&v| v as usize).sum::<usize>(), grid);
    }

    #[test]
    fn stats_accumulate_across_launches_and_reset() {
        let gpu = VirtualGpu::sequential();
        gpu.launch("a", 10, |_| {});
        gpu.launch("a", 20, |_| {});
        gpu.launch("b", 5, |ctx| ctx.add_work(2));
        let s = gpu.stats();
        assert_eq!(s.total_launches(), 3);
        assert_eq!(s.launches_of("a"), 2);
        assert_eq!(s.kernels["a"].total_threads, 30);
        assert_eq!(s.kernels["b"].total_work, 10);
        assert!(s.modelled_time_secs() > 0.0);
        gpu.reset_stats();
        assert_eq!(gpu.stats().total_launches(), 0);
    }

    #[test]
    fn grid_size_is_visible_to_threads() {
        let gpu = VirtualGpu::sequential();
        gpu.launch("grid", 17, |ctx| assert_eq!(ctx.grid_size, 17));
    }

    #[test]
    fn sequential_and_parallel_agree_on_data_parallel_kernels() {
        // For kernels with disjoint writes the two backends must produce the
        // same memory image.
        let input: Vec<i64> = (0..50_000).map(|i| (i * 7919) % 1000 - 500).collect();
        let mut images = Vec::new();
        for gpu in [VirtualGpu::sequential(), VirtualGpu::parallel()] {
            let src = DeviceBuffer::from_slice(&input);
            let dst = DeviceBuffer::<i64>::new(input.len(), 0);
            gpu.launch("map", input.len(), |ctx| {
                let i = ctx.global_id;
                dst.set(i, src.get(i).abs() * 2);
                ctx.add_work(2);
            });
            images.push(dst.to_vec());
        }
        assert_eq!(images[0], images[1]);
    }

    #[test]
    fn backend_parallel_auto_has_at_least_one_worker() {
        match Backend::parallel_auto() {
            Backend::Parallel { workers } => assert!(workers >= 1),
            _ => panic!("expected parallel backend"),
        }
    }

    #[test]
    fn debug_formatting_mentions_device_name() {
        let gpu = VirtualGpu::sequential();
        let s = format!("{gpu:?}");
        assert!(s.contains("C2050"));
    }
}
