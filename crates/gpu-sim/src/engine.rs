//! The virtual GPU device and its kernel-launch engine.

use crate::exec::{ResidentBody, WorkerPool};
use crate::perfmodel::PerfModel;
use crate::scratch::ScratchArena;
use crate::stats::DeviceStats;
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::sync::{Arc, OnceLock};

/// How kernel threads are executed on the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// All logical threads run on the calling host thread, in increasing
    /// thread-id order.  Fully deterministic; used by tests that need a
    /// reproducible interleaving and as the reference for cross-backend
    /// equivalence checks.
    Sequential,
    /// Logical threads run truly concurrently on `workers` persistent host
    /// threads, so the benign races the paper's kernels allow actually
    /// happen.  This is the default for benchmarks.
    Parallel {
        /// Number of host worker threads.
        workers: usize,
    },
}

impl Backend {
    /// A parallel backend sized to the host's available parallelism.
    pub fn parallel_auto() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Backend::Parallel { workers }
    }
}

/// How an engine's round loop drives the device.
///
/// Threaded end-to-end the way [`crate::WorklistMode`] is: through
/// `GprConfig` / `Solver::builder()`, the `@resident` algorithm-label
/// suffix, the service wire format, and the bench sweep axis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// One kernel launch per round — the paper's execution model: the host
    /// relaunches the round kernel until the termination condition holds,
    /// paying [`PerfModel::kernel_launch_overhead_ns`] every round.
    #[default]
    LaunchPerRound,
    /// Persistent (megakernel) execution: one resident launch stays alive
    /// for the whole solve ([`VirtualGpu::resident`]) and rounds cross a
    /// software global barrier ([`crate::GlobalBarrier`]) instead of
    /// relaunching, paying [`PerfModel::global_barrier_cost_ns`] per round.
    Persistent,
}

impl ExecMode {
    /// Both execution modes, launch-per-round first (the paper baseline).
    pub fn all() -> [ExecMode; 2] {
        [ExecMode::LaunchPerRound, ExecMode::Persistent]
    }

    /// The round-trippable label used in `Algorithm` specs: the default
    /// `launch`, or `resident` (spelled `@resident` as a label suffix).
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::LaunchPerRound => "launch",
            ExecMode::Persistent => "resident",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when a string is not an [`ExecMode`] label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExecModeError {
    /// The string that failed to parse.
    pub input: String,
}

impl std::fmt::Display for ParseExecModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot parse exec mode '{}': expected one of launch, resident", self.input)
    }
}

impl std::error::Error for ParseExecModeError {}

impl std::str::FromStr for ExecMode {
    type Err = ParseExecModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "launch" => Ok(ExecMode::LaunchPerRound),
            "resident" => Ok(ExecMode::Persistent),
            _ => Err(ParseExecModeError { input: s.to_string() }),
        }
    }
}

/// Tuning knobs of the persistent kernel executor (the internal `exec`
/// module).
///
/// All knobs are plumbed upward: `gpm-core`'s `Solver::builder()` and
/// `gpm-service`'s `Service::builder()` accept an `ExecutorConfig` and apply
/// it to every device they create, so a service with N workers can size its
/// N devices to the host instead of oversubscribing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Grids smaller than this run inline on the calling thread even with a
    /// parallel backend; mirrors the fact that tiny CUDA grids cannot fill
    /// the device and their cost is dominated by launch overhead.
    pub parallel_threshold: usize,
    /// Grid indices per chunk that pool workers claim from the launch's
    /// shared cursor.  Smaller chunks balance divergent kernels better;
    /// larger chunks amortize the cursor increment.  Must be at least 1
    /// ([`ExecutorConfig::validate`]; `Solver::builder()` rejects 0 with a
    /// structured error, and the executor itself clamps to 1 as a last
    /// resort).  The effective chunk is capped per launch at
    /// `grid / workers` (rounded up) so every pool worker gets a share of
    /// mid-sized grids.
    pub chunk_size: usize,
    /// Legacy execution strategy: spawn and join scoped host threads on
    /// every launch (static equal partitions) instead of dispatching to the
    /// persistent pool.  Kept for A/B benchmarking of the executor itself
    /// (`benches/launch_overhead.rs`); leave `false` for real use.
    pub per_launch_spawn: bool,
    /// Tag baked into the pool's host thread names
    /// (`gpm-gpu-t<tag>-worker-<i>`; tag 0, the default, keeps the plain
    /// `gpm-gpu-worker-<i>` names).  A deployment running several executor
    /// pools — one per `gpm-service` shard — sets a distinct tag per pool so
    /// kernel threads are attributable to their shard in thread dumps and
    /// profilers.  Purely observational: scheduling is unaffected.
    pub pool_tag: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self { parallel_threshold: 2048, chunk_size: 1024, per_launch_spawn: false, pool_tag: 0 }
    }
}

impl ExecutorConfig {
    /// Same configuration with a different inline threshold.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Same configuration with a different chunk size.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Same configuration with a different pool-name tag (see
    /// [`ExecutorConfig::pool_tag`]).
    pub fn with_pool_tag(mut self, tag: usize) -> Self {
        self.pool_tag = tag;
        self
    }

    /// Checks the configuration for values the executor cannot run with.
    /// Builders (`Solver::builder()`, `Service::builder()`) call this before
    /// a device is created so a zero chunk size becomes a structured
    /// configuration error instead of surprising clamping in the launch
    /// loop.
    pub fn validate(&self) -> Result<(), String> {
        if self.chunk_size == 0 {
            return Err("executor chunk_size must be at least 1 (pool workers claim grid chunks)"
                .to_string());
        }
        Ok(())
    }
}

/// Configuration of a virtual GPU device.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Human-readable device name (shows up in reports).
    pub name: String,
    /// Host execution backend.
    pub backend: Backend,
    /// Analytical cost model used for modelled device time.
    pub perf: PerfModel,
    /// Persistent-executor tuning (inline threshold, chunk size, legacy
    /// per-launch spawning).
    pub executor: ExecutorConfig,
}

impl GpuConfig {
    /// Tesla C2050-like configuration with the given backend.
    pub fn tesla_c2050(backend: Backend) -> Self {
        Self {
            name: "Virtual Tesla C2050".to_string(),
            backend,
            perf: PerfModel::tesla_c2050(),
            executor: ExecutorConfig::default(),
        }
    }

    /// Same configuration with different executor tuning.
    pub fn with_executor(mut self, executor: ExecutorConfig) -> Self {
        self.executor = executor;
        self
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::tesla_c2050(Backend::parallel_auto())
    }
}

/// Per-logical-thread execution context handed to kernels.
///
/// `global_id` plays the role of
/// `blockIdx.x * blockDim.x + threadIdx.x` in the CUDA kernels of the paper.
pub struct ThreadCtx {
    /// Global thread index within the launch (0-based).
    pub global_id: usize,
    /// Total number of logical threads in the launch.
    pub grid_size: usize,
    work: Cell<u64>,
    atomics: Cell<u64>,
    /// Per-word RMW counts, `(word_id, count)`.  A kernel thread touches at
    /// most a couple of contended words (a queue tail, an overflow flag), so
    /// a tiny inline array beats any map; counts beyond the last slot are
    /// still in `atomics` but lose their word attribution.
    atomic_words: Cell<[(u64, u64); ThreadCtx::ATOMIC_WORD_SLOTS]>,
}

impl ThreadCtx {
    /// Distinct contended words tracked per thread.
    const ATOMIC_WORD_SLOTS: usize = 4;

    pub(crate) fn new(global_id: usize, grid_size: usize) -> Self {
        Self {
            global_id,
            grid_size,
            work: Cell::new(0),
            atomics: Cell::new(0),
            atomic_words: Cell::new([(0, 0); Self::ATOMIC_WORD_SLOTS]),
        }
    }

    /// Reports `units` of memory work (one unit ≈ one adjacency entry /
    /// global-memory transaction).  Feeds the cost model; has no effect on
    /// algorithm semantics.
    #[inline]
    pub fn add_work(&self, units: u64) {
        self.work.set(self.work.get() + units);
    }

    /// Work reported so far by this thread.
    #[inline]
    pub fn work(&self) -> u64 {
        self.work.get()
    }

    /// Reports one atomic read-modify-write on the given word (see
    /// [`crate::DeviceBuffer::word_id`]).  The launch folds these into a
    /// total RMW count and a per-word histogram; the cost model charges
    /// throughput for every RMW and serialization for RMWs that pile onto a
    /// single word.  Like [`ThreadCtx::add_work`], purely observational.
    #[inline]
    pub fn add_atomic(&self, word: u64) {
        self.atomics.set(self.atomics.get() + 1);
        let mut words = self.atomic_words.get();
        for slot in words.iter_mut() {
            if slot.1 == 0 {
                *slot = (word, 1);
                break;
            }
            if slot.0 == word {
                slot.1 += 1;
                break;
            }
        }
        self.atomic_words.set(words);
    }

    /// Atomics reported so far by this thread.
    #[inline]
    pub fn atomics(&self) -> u64 {
        self.atomics.get()
    }
}

/// Outcome of a single kernel launch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaunchRecord {
    /// Grid size of the launch.
    pub threads: usize,
    /// Total work units reported by all threads.
    pub work: u64,
    /// Maximum work reported by a single thread (divergence indicator).
    pub max_thread_work: u64,
    /// Total atomic RMW operations, kernel-reported plus the executor's
    /// modelled chunk-cursor claims.
    pub atomics: u64,
    /// RMWs on the single most contended word of the launch.
    pub hot_word_atomics: u64,
    /// Modelled device time of the launch, nanoseconds.
    pub modelled_time_ns: f64,
    /// Host wall-clock time of the launch, nanoseconds.
    pub wall_time_ns: f64,
}

/// Work and atomic counters aggregated over the threads of one launch.
/// Workers fold thread counters in locally and merge once per worker, so
/// the only cross-thread traffic on the hot path is the final merge.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct LaunchTotals {
    /// Sum of per-thread work units.
    pub(crate) work: u64,
    /// Maximum single-thread work.
    pub(crate) max_thread_work: u64,
    /// Total RMW operations reported by kernel threads.
    pub(crate) atomics: u64,
    /// Per-word RMW counts, `(word_id, count)`.  A launch touches at most a
    /// handful of contended words, so linear search is the fast path.
    pub(crate) atomic_words: Vec<(u64, u64)>,
}

impl LaunchTotals {
    /// Folds one finished thread's counters in.
    pub(crate) fn absorb_thread(&mut self, ctx: &ThreadCtx) {
        let work = ctx.work();
        self.work += work;
        self.max_thread_work = self.max_thread_work.max(work);
        self.atomics += ctx.atomics.get();
        for (word, count) in ctx.atomic_words.get() {
            if count > 0 {
                self.add_word(word, count);
            }
        }
    }

    /// Folds another worker's totals in.
    pub(crate) fn merge(&mut self, other: &LaunchTotals) {
        self.work += other.work;
        self.max_thread_work = self.max_thread_work.max(other.max_thread_work);
        self.atomics += other.atomics;
        for &(word, count) in &other.atomic_words {
            self.add_word(word, count);
        }
    }

    fn add_word(&mut self, word: u64, count: u64) {
        if let Some(entry) = self.atomic_words.iter_mut().find(|(w, _)| *w == word) {
            entry.1 += count;
        } else {
            self.atomic_words.push((word, count));
        }
    }

    /// RMW count on the launch's most contended word.
    pub(crate) fn hot_word_atomics(&self) -> u64 {
        self.atomic_words.iter().map(|&(_, count)| count).max().unwrap_or(0)
    }
}

/// One launch's raw statistics, queued off the hot path and merged into the
/// per-kernel [`DeviceStats`] only when a snapshot is requested.
#[derive(Clone, Copy)]
struct LaunchEvent {
    name: &'static str,
    threads: usize,
    work: u64,
    atomics: u64,
    hot_word_atomics: u64,
    modelled_time_ns: f64,
    wall_time_ns: f64,
    /// `true` for work fused into the tail of the preceding launch: charged
    /// to the same kernel without counting as a launch of its own.
    fused: bool,
    /// `true` for a device-resident round: charged a barrier crossing
    /// instead of launch overhead, counted as `resident_rounds`/`barriers`
    /// rather than `launches`.
    resident: bool,
}

/// Pending launch events plus the merged per-kernel aggregate.  `record` is
/// a plain `Vec` push; the `BTreeMap` lookups and string allocations happen
/// in `flush`, i.e. on `stats()` / `reset()` or every `FLUSH_AT` launches.
#[derive(Default)]
struct StatsAccum {
    merged: DeviceStats,
    pending: Vec<LaunchEvent>,
}

impl StatsAccum {
    /// Bound on the pending queue so a snapshot-free workload cannot grow it
    /// without limit.
    const FLUSH_AT: usize = 1024;

    fn record(&mut self, event: LaunchEvent) {
        self.pending.push(event);
        if self.pending.len() >= Self::FLUSH_AT {
            self.flush();
        }
    }

    fn flush(&mut self) {
        for event in self.pending.drain(..) {
            if event.resident {
                self.merged.record_resident(
                    event.name,
                    event.threads,
                    event.work,
                    event.atomics,
                    event.hot_word_atomics,
                    event.modelled_time_ns,
                    event.wall_time_ns,
                );
            } else if event.fused {
                self.merged.record_fused(
                    event.name,
                    event.threads,
                    event.work,
                    event.atomics,
                    event.hot_word_atomics,
                    event.modelled_time_ns,
                    event.wall_time_ns,
                );
            } else {
                self.merged.record(
                    event.name,
                    event.threads,
                    event.work,
                    event.atomics,
                    event.hot_word_atomics,
                    event.modelled_time_ns,
                    event.wall_time_ns,
                );
            }
        }
    }

    fn snapshot(&mut self) -> DeviceStats {
        self.flush();
        self.merged.clone()
    }

    fn reset(&mut self) {
        self.pending.clear();
        self.merged = DeviceStats::default();
    }
}

/// Ambient state of an open [`VirtualGpu::resident`] scope on the current
/// host thread.  `launch_inner` consults it first: launches issued on the
/// scope's device while it is open execute as barrier-separated rounds of
/// the persistent grid instead of fresh launches.
struct ResidentScope {
    /// Identity of the device that opened the scope (its address), so
    /// launches on *other* devices keep launching normally.
    device: usize,
    /// Resident threads the entry launch kept alive; what each round's
    /// barrier crossing is priced for.
    participants: usize,
    /// Pool workers executing rounds; 0 when rounds run inline.
    workers: usize,
    /// The device's configured chunk size, for round scheduling and the
    /// deterministic cursor-claim accounting.
    chunk_size: usize,
    /// The pooled round-loop state; `None` runs rounds inline on the
    /// calling thread (sequential backend, single worker, or the legacy
    /// spawn-per-launch strategy).
    body: Option<Arc<ResidentBody>>,
}

thread_local! {
    static RESIDENT: RefCell<Option<ResidentScope>> = const { RefCell::new(None) };
}

/// Panic-safe occupancy of the thread-local resident slot: entering twice
/// is a programming error, and the slot is cleared even when the scope body
/// unwinds.
struct ResidentScopeGuard;

impl ResidentScopeGuard {
    fn enter(scope: ResidentScope) -> Self {
        RESIDENT.with(|slot| {
            let mut slot = slot.borrow_mut();
            assert!(
                slot.is_none(),
                "nested VirtualGpu::resident scopes on one thread are not supported"
            );
            *slot = Some(scope);
        });
        ResidentScopeGuard
    }
}

impl Drop for ResidentScopeGuard {
    fn drop(&mut self) {
        RESIDENT.with(|slot| slot.borrow_mut().take());
    }
}

/// The virtual GPU device.
///
/// A `VirtualGpu` owns no user-visible memory; [`crate::DeviceBuffer`]s are
/// created independently and captured by kernel closures, mirroring how CUDA
/// kernels receive device pointers.  What it does own is its **execution
/// engine**: with a parallel backend, a persistent worker pool is spawned on
/// the first launch that is large enough to go parallel and reused for every
/// later launch (the internal `exec` module); dropping the device shuts the
/// pool
/// down and joins every worker.  It also owns a [`ScratchArena`] the device
/// primitives draw their working buffers from.
pub struct VirtualGpu {
    config: GpuConfig,
    stats: Mutex<StatsAccum>,
    scratch: ScratchArena,
    pool: OnceLock<WorkerPool>,
}

impl VirtualGpu {
    /// Creates a device with the given configuration.  No host threads are
    /// spawned until the first launch that needs them.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            config,
            stats: Mutex::new(StatsAccum::default()),
            scratch: ScratchArena::new(),
            pool: OnceLock::new(),
        }
    }

    /// Tesla C2050-like device with the given backend.
    pub fn tesla_c2050(backend: Backend) -> Self {
        Self::new(GpuConfig::tesla_c2050(backend))
    }

    /// Tesla C2050-like device with a deterministic sequential backend.
    pub fn sequential() -> Self {
        Self::tesla_c2050(Backend::Sequential)
    }

    /// Tesla C2050-like device with an auto-sized parallel backend.
    pub fn parallel() -> Self {
        Self::tesla_c2050(Backend::parallel_auto())
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The device's scratch-buffer arena (used by [`crate::primitives`];
    /// available to any multi-pass kernel sequence needing short-lived `u64`
    /// working buffers).
    pub fn scratch(&self) -> &ScratchArena {
        &self.scratch
    }

    /// Number of persistent worker threads this device has spawned: 0 before
    /// the first pooled launch, the backend's worker count afterwards —
    /// never more, no matter how many launches run.
    pub fn worker_threads_spawned(&self) -> usize {
        self.pool.get().map(WorkerPool::workers).unwrap_or(0)
    }

    /// Launches a kernel over `grid` logical threads and blocks until every
    /// thread has finished (the implicit barrier at the end of a CUDA launch
    /// on the default stream).  Concurrent *pooled* launches on one device
    /// serialize on the pool, like work on the default stream; launches that
    /// run inline (sequential backend, or grids under
    /// [`ExecutorConfig::parallel_threshold`]) execute on the calling thread
    /// and make no cross-launch ordering promise.
    ///
    /// The kernel closure is invoked once per logical thread with a
    /// [`ThreadCtx`]; it typically captures [`crate::DeviceBuffer`]
    /// references and indexes them with `ctx.global_id`.
    ///
    /// # Panics
    /// A panic in the kernel fails this launch (the payload is re-raised on
    /// the caller) but leaves the device and its worker pool usable: the
    /// next launch runs normally.
    pub fn launch<F>(&self, name: &'static str, grid: usize, kernel: F) -> LaunchRecord
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        self.launch_inner(name, grid, &kernel, false)
    }

    /// Launches a kernel as the **fused tail** of the immediately preceding
    /// launch of the same `name`: the threads run exactly like
    /// [`VirtualGpu::launch`], but the modelled cost omits the per-launch
    /// overhead and the statistics fold the work into the preceding kernel's
    /// row without counting a new launch (only
    /// [`crate::KernelStats::fused_tails`] is bumped).
    ///
    /// This models the CUDA last-block-done idiom: the final thread block of
    /// a kernel detects a condition (e.g. "the append queue stayed empty")
    /// and performs an epilogue sweep inside the same kernel, so no second
    /// launch and no second 7 µs of driver latency exist on the device.
    pub fn launch_fused<F>(&self, name: &'static str, grid: usize, kernel: F) -> LaunchRecord
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        self.launch_inner(name, grid, &kernel, true)
    }

    /// Opens a **persistent (megakernel) scope**: one resident launch named
    /// `name` enters the device and stays alive while `body` runs, and every
    /// launch `body` issues *on this device from this thread* executes as a
    /// device-resident round of that grid — synchronized by a software
    /// global barrier ([`crate::GlobalBarrier`]) instead of returning to the
    /// host — until the scope closes.
    ///
    /// Cost-model view: entering charges one real launch of
    /// `min(domain, resident_capacity)` threads (the megakernel's single
    /// driver round-trip); each round then pays its work/atomic terms plus
    /// one [`PerfModel::global_barrier_cost_ns`] crossing *instead of*
    /// [`PerfModel::kernel_launch_overhead_ns`].  Rounds are accounted as
    /// [`crate::KernelStats::resident_rounds`]/[`crate::KernelStats::barriers`]
    /// under their own kernel names; fused tails
    /// ([`VirtualGpu::launch_fused`]) still fuse (same round, no extra
    /// barrier).
    ///
    /// Execution view: with a pooled parallel backend the pool workers enter
    /// a resident loop for the whole scope — the grid monopolizes the
    /// device, like a real megakernel occupying every SM, so concurrent
    /// launches from other threads on this device block until the scope
    /// closes.  The sequential backend (and the legacy
    /// [`ExecutorConfig::per_launch_spawn`] strategy, and single-worker
    /// pools) runs rounds inline, preserving deterministic thread order.
    /// Either way the kernels and counters are identical to launch-per-round
    /// execution; only launch overhead becomes barrier crossings.
    ///
    /// # Panics
    /// Panics if a resident scope is already open on this thread.  A panic
    /// inside `body` (host code or kernel) closes the scope cleanly: the
    /// workers leave the resident loop and the pool survives.
    pub fn resident<R>(&self, name: &'static str, domain: usize, body: impl FnOnce() -> R) -> R {
        // Check before touching the pool: a nested scope must fail fast, not
        // deadlock on the launch gate the outer scope is holding.
        RESIDENT.with(|slot| {
            assert!(
                slot.borrow().is_none(),
                "nested VirtualGpu::resident scopes on one thread are not supported"
            );
        });
        let participants = domain.clamp(1, self.config.perf.resident_capacity());
        let start = std::time::Instant::now();
        let session = match self.config.backend {
            Backend::Parallel { workers }
                if workers > 1 && !self.config.executor.per_launch_spawn =>
            {
                Some(self.pool(workers).begin_resident())
            }
            _ => None,
        };
        // The megakernel's one driver round-trip: a real launch of the
        // resident grid, with no work yet (the rounds report their own).
        self.stats.lock().record(LaunchEvent {
            name,
            threads: participants,
            work: 0,
            atomics: 0,
            hot_word_atomics: 0,
            modelled_time_ns: self.config.perf.launch_cost_ns(participants, 0, 0),
            wall_time_ns: start.elapsed().as_nanos() as f64,
            fused: false,
            resident: false,
        });
        let _guard = ResidentScopeGuard::enter(ResidentScope {
            device: self as *const VirtualGpu as usize,
            participants,
            workers: session.as_ref().map_or(0, |s| s.workers()),
            chunk_size: self.config.executor.chunk_size,
            body: session.as_ref().map(|s| s.body()),
        });
        // Drop order on exit (including unwind): `_guard` first (clears the
        // thread-local before any non-resident launch could reach the still
        // gated pool), then `session` (exits the workers' resident loop and
        // releases the device gate).
        body()
    }

    /// Executes one launch as a round of the open resident scope, if the
    /// calling thread has one on this device.
    fn resident_round(
        &self,
        name: &'static str,
        grid: usize,
        kernel: &(dyn Fn(&ThreadCtx) + Sync),
        fused: bool,
    ) -> Option<LaunchRecord> {
        let (participants, workers, chunk_size, round_body) = RESIDENT.with(|slot| {
            let slot = slot.borrow();
            let scope = slot.as_ref()?;
            if scope.device != self as *const VirtualGpu as usize {
                return None;
            }
            Some((scope.participants, scope.workers, scope.chunk_size, scope.body.clone()))
        })?;
        let start = std::time::Instant::now();
        let totals = match &round_body {
            Some(body) => body.round(grid, chunk_size, kernel),
            None => run_range(0, grid, grid, kernel),
        };
        // Same deterministic chunk-cursor accounting as a pooled launch:
        // resident workers claim grid chunks from a per-round cursor.
        let cursor_claims = if round_body.is_some() && workers > 0 {
            grid.div_ceil(crate::exec::effective_chunk(chunk_size, grid, workers)) as u64
        } else {
            0
        };
        let atomics = totals.atomics + cursor_claims;
        let hot_word_atomics = totals.hot_word_atomics().max(cursor_claims);
        let wall_time_ns = start.elapsed().as_nanos() as f64;
        // A round pays everything a launch pays except the driver
        // round-trip; a non-fused round then adds its barrier crossing.
        // (A fused tail rides the *same* round as its host kernel, so it
        // crosses no extra barrier — exactly as it pays no extra launch.)
        let mut modelled_time_ns = (self.config.perf.launch_cost_with_atomics_ns(
            grid,
            totals.work,
            totals.max_thread_work,
            atomics,
            hot_word_atomics,
        ) - self.config.perf.kernel_launch_overhead_ns)
            .max(0.0);
        if !fused {
            modelled_time_ns += self.config.perf.global_barrier_cost_ns(participants);
        }
        let record = LaunchRecord {
            threads: grid,
            work: totals.work,
            max_thread_work: totals.max_thread_work,
            atomics,
            hot_word_atomics,
            modelled_time_ns,
            wall_time_ns,
        };
        self.stats.lock().record(LaunchEvent {
            name,
            threads: grid,
            work: totals.work,
            atomics,
            hot_word_atomics,
            modelled_time_ns,
            wall_time_ns,
            fused,
            resident: !fused,
        });
        Some(record)
    }

    fn launch_inner(
        &self,
        name: &'static str,
        grid: usize,
        kernel: &(dyn Fn(&ThreadCtx) + Sync),
        fused: bool,
    ) -> LaunchRecord {
        if let Some(record) = self.resident_round(name, grid, kernel, fused) {
            return record;
        }
        let start = std::time::Instant::now();
        let executor = self.config.executor;
        let mut pooled_workers = 0;
        let totals = match self.config.backend {
            Backend::Sequential => run_range(0, grid, grid, kernel),
            Backend::Parallel { workers } => {
                if grid < executor.parallel_threshold || workers <= 1 {
                    run_range(0, grid, grid, kernel)
                } else if executor.per_launch_spawn {
                    run_scoped(grid, workers, kernel)
                } else {
                    pooled_workers = workers;
                    self.pool(workers).run(grid, executor.chunk_size, kernel)
                }
            }
        };
        // The executor's chunk cursor is itself a contended RMW word: every
        // pooled chunk claim is one fetch_add.  Charge it through the same
        // model, deterministically (the claim count is a function of the
        // grid and the effective chunk, not of scheduling).  Inline and
        // sequential paths have no cursor, so they charge nothing and the
        // deterministic bench cells stay structurally unchanged.
        let cursor_claims = if pooled_workers > 0 {
            grid.div_ceil(crate::exec::effective_chunk(executor.chunk_size, grid, pooled_workers))
                as u64
        } else {
            0
        };
        let atomics = totals.atomics + cursor_claims;
        // The cursor lives on its own cache line, away from any kernel word,
        // so it competes for "hottest word" only with its own claim count.
        let hot_word_atomics = totals.hot_word_atomics().max(cursor_claims);
        let wall_time_ns = start.elapsed().as_nanos() as f64;
        let mut modelled_time_ns = self.config.perf.launch_cost_with_atomics_ns(
            grid,
            totals.work,
            totals.max_thread_work,
            atomics,
            hot_word_atomics,
        );
        if fused {
            // A fused tail rides the previous launch: no driver round-trip.
            modelled_time_ns =
                (modelled_time_ns - self.config.perf.kernel_launch_overhead_ns).max(0.0);
        }
        let record = LaunchRecord {
            threads: grid,
            work: totals.work,
            max_thread_work: totals.max_thread_work,
            atomics,
            hot_word_atomics,
            modelled_time_ns,
            wall_time_ns,
        };
        self.stats.lock().record(LaunchEvent {
            name,
            threads: grid,
            work: totals.work,
            atomics,
            hot_word_atomics,
            modelled_time_ns,
            wall_time_ns,
            fused,
            resident: false,
        });
        record
    }

    /// The persistent pool, spawned on first use and reused afterwards.
    fn pool(&self, workers: usize) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::spawn_tagged(workers, self.config.executor.pool_tag))
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats.lock().snapshot()
    }

    /// Clears the accumulated statistics.
    pub fn reset_stats(&self) {
        self.stats.lock().reset();
    }
}

/// Runs logical threads `start..end` of a `grid`-sized launch inline,
/// returning the aggregated [`LaunchTotals`].
fn run_range<F>(start: usize, end: usize, grid: usize, kernel: &F) -> LaunchTotals
where
    F: Fn(&ThreadCtx) + Sync + ?Sized,
{
    let mut totals = LaunchTotals::default();
    for id in start..end {
        let ctx = ThreadCtx::new(id, grid);
        kernel(&ctx);
        totals.absorb_thread(&ctx);
    }
    totals
}

/// The legacy execution strategy: spawn `workers` scoped threads over static
/// equal partitions and join them, once per launch.  Kept behind
/// [`ExecutorConfig::per_launch_spawn`] as the benchmark baseline the
/// persistent pool is measured against.
fn run_scoped(grid: usize, workers: usize, kernel: &(dyn Fn(&ThreadCtx) + Sync)) -> LaunchTotals {
    let chunk = grid.div_ceil(workers);
    let mut results: Vec<LaunchTotals> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(grid);
            if start >= end {
                break;
            }
            handles.push(scope.spawn(move || run_range(start, end, grid, kernel)));
        }
        // Join everything before re-raising so the first panic's payload
        // reaches the caller intact — the same contract as the pooled path.
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(result) => results.push(result),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    });
    let mut totals = LaunchTotals::default();
    for result in &results {
        totals.merge(result);
    }
    totals
}

impl std::fmt::Debug for VirtualGpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualGpu")
            .field("name", &self.config.name)
            .field("backend", &self.config.backend)
            .field("executor", &self.config.executor)
            .field("workers_spawned", &self.worker_threads_spawned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;

    /// A parallel device whose pool engages even for small test grids.
    fn pooled(workers: usize, threshold: usize, chunk: usize) -> VirtualGpu {
        VirtualGpu::new(GpuConfig::tesla_c2050(Backend::Parallel { workers }).with_executor(
            ExecutorConfig {
                parallel_threshold: threshold,
                chunk_size: chunk,
                ..Default::default()
            },
        ))
    }

    #[test]
    fn launch_runs_every_thread_exactly_once() {
        for gpu in [VirtualGpu::sequential(), VirtualGpu::parallel(), pooled(3, 16, 64)] {
            let out = DeviceBuffer::<u32>::new(10_000, 0);
            gpu.launch("mark", out.len(), |ctx| {
                out.set(ctx.global_id, ctx.global_id as u32 + 1);
            });
            let host = out.to_vec();
            for (i, v) in host.iter().enumerate() {
                assert_eq!(*v, i as u32 + 1);
            }
        }
    }

    #[test]
    fn zero_grid_launch_is_fine() {
        let gpu = VirtualGpu::parallel();
        let rec = gpu.launch("empty", 0, |_ctx| panic!("no threads should run"));
        assert_eq!(rec.threads, 0);
        assert_eq!(rec.work, 0);
        assert_eq!(gpu.stats().launches_of("empty"), 1);
    }

    #[test]
    fn work_accounting_sums_and_maxes() {
        let gpu = VirtualGpu::sequential();
        let rec = gpu.launch("work", 4, |ctx| {
            ctx.add_work(ctx.global_id as u64);
            assert_eq!(ctx.work(), ctx.global_id as u64);
        });
        // Work accumulated across thread ids 0..4.
        assert_eq!(rec.work, 1 + 2 + 3);
        assert_eq!(rec.max_thread_work, 3);
        assert!(rec.modelled_time_ns > 0.0);
    }

    #[test]
    fn work_accounting_agrees_across_execution_strategies() {
        let grid = 50_000;
        let kernel = |ctx: &ThreadCtx| ctx.add_work((ctx.global_id % 97) as u64);
        let strategies = [
            VirtualGpu::sequential(),
            pooled(4, 8, 128),
            VirtualGpu::new(
                GpuConfig::tesla_c2050(Backend::Parallel { workers: 4 }).with_executor(
                    ExecutorConfig {
                        parallel_threshold: 8,
                        per_launch_spawn: true,
                        ..Default::default()
                    },
                ),
            ),
        ];
        let records: Vec<LaunchRecord> =
            strategies.iter().map(|gpu| gpu.launch("acct", grid, kernel)).collect();
        for rec in &records {
            assert_eq!(rec.work, records[0].work);
            assert_eq!(rec.max_thread_work, records[0].max_thread_work);
        }
    }

    #[test]
    fn parallel_backend_covers_all_threads_above_threshold() {
        let gpu = pooled(4, 8, 1024);
        let grid = 100_000;
        let out = DeviceBuffer::<u32>::new(grid, 0);
        gpu.launch("cover", grid, |ctx| out.set(ctx.global_id, 1));
        assert_eq!(out.to_vec().iter().map(|&v| v as usize).sum::<usize>(), grid);
        assert_eq!(gpu.worker_threads_spawned(), 4);
    }

    #[test]
    fn stats_accumulate_across_launches_and_reset() {
        let gpu = VirtualGpu::sequential();
        gpu.launch("a", 10, |_| {});
        gpu.launch("a", 20, |_| {});
        gpu.launch("b", 5, |ctx| ctx.add_work(2));
        let s = gpu.stats();
        assert_eq!(s.total_launches(), 3);
        assert_eq!(s.launches_of("a"), 2);
        assert_eq!(s.kernels["a"].total_threads, 30);
        assert_eq!(s.kernels["b"].total_work, 10);
        assert!(s.modelled_time_secs() > 0.0);
        gpu.reset_stats();
        assert_eq!(gpu.stats().total_launches(), 0);
    }

    #[test]
    fn deferred_stats_survive_the_flush_boundary() {
        // More launches than the pending-queue flush threshold: snapshots
        // must see every one of them exactly once.
        let gpu = VirtualGpu::sequential();
        let launches = StatsAccum::FLUSH_AT * 2 + 17;
        for _ in 0..launches {
            gpu.launch("flush_me", 3, |ctx| ctx.add_work(1));
        }
        let s = gpu.stats();
        assert_eq!(s.launches_of("flush_me"), launches as u64);
        assert_eq!(s.kernels["flush_me"].total_work, 3 * launches as u64);
        assert_eq!(gpu.stats().launches_of("flush_me"), launches as u64);
    }

    #[test]
    fn atomic_accounting_separates_hot_word_from_total() {
        let gpu = VirtualGpu::sequential();
        let tail = DeviceBuffer::<u64>::new(1, 0);
        let spread = DeviceBuffer::<u64>::new(64, 0);
        let rec = gpu.launch("atomics", 64, |ctx| {
            tail.fetch_add(0, 1);
            ctx.add_atomic(tail.word_id(0));
            spread.fetch_add(ctx.global_id, 1);
            ctx.add_atomic(spread.word_id(ctx.global_id));
        });
        // Sequential backend: no executor cursor, so the counts are exactly
        // what the kernel reported.
        assert_eq!(rec.atomics, 128);
        assert_eq!(rec.hot_word_atomics, 64);
        let s = gpu.stats();
        assert_eq!(s.kernels["atomics"].total_atomics, 128);
        assert_eq!(s.kernels["atomics"].hot_word_atomics, 64);
        // And the model charged for them.
        let base = gpu.config().perf.launch_cost_ns(64, 0, 0);
        assert!(rec.modelled_time_ns > base);
    }

    #[test]
    fn pooled_launches_charge_the_chunk_cursor() {
        let workers = 4;
        let chunk = 64;
        let grid = 10_000;
        let gpu = pooled(workers, 8, chunk);
        let rec = gpu.launch("cursor", grid, |_ctx| {});
        let claims = grid.div_ceil(crate::exec::effective_chunk(chunk, grid, workers)) as u64;
        assert!(claims > 0);
        assert_eq!(rec.atomics, claims);
        assert_eq!(rec.hot_word_atomics, claims);
        // The sequential device charges nothing for the cursor it does not
        // have, keeping deterministic runs structurally unchanged.
        let seq = VirtualGpu::sequential().launch("cursor", grid, |_ctx| {});
        assert_eq!(seq.atomics, 0);
    }

    #[test]
    fn fused_launch_skips_launch_overhead_and_launch_count() {
        let gpu = VirtualGpu::sequential();
        let normal = gpu.launch("tail", 1000, |ctx| ctx.add_work(1));
        let fused = gpu.launch_fused("tail", 1000, |ctx| ctx.add_work(1));
        let overhead = gpu.config().perf.kernel_launch_overhead_ns;
        assert!((normal.modelled_time_ns - fused.modelled_time_ns - overhead).abs() < 1e-6);
        let s = gpu.stats();
        assert_eq!(s.launches_of("tail"), 1);
        assert_eq!(s.fused_tails_of("tail"), 1);
        assert_eq!(s.kernels["tail"].total_threads, 2000);
        assert_eq!(s.kernels["tail"].total_work, 2000);
        // A fused tail cheaper than the overhead clamps at zero rather than
        // crediting time back.
        let tiny = gpu.launch_fused("tiny", 0, |_ctx| {});
        assert_eq!(tiny.modelled_time_ns, 0.0);
    }

    #[test]
    fn grid_size_is_visible_to_threads() {
        let gpu = VirtualGpu::sequential();
        gpu.launch("grid", 17, |ctx| assert_eq!(ctx.grid_size, 17));
    }

    #[test]
    fn sequential_and_parallel_agree_on_data_parallel_kernels() {
        // For kernels with disjoint writes the two backends must produce the
        // same memory image.
        let input: Vec<i64> = (0..50_000).map(|i| (i * 7919) % 1000 - 500).collect();
        let mut images = Vec::new();
        for gpu in [VirtualGpu::sequential(), VirtualGpu::parallel(), pooled(3, 16, 256)] {
            let src = DeviceBuffer::from_slice(&input);
            let dst = DeviceBuffer::<i64>::new(input.len(), 0);
            gpu.launch("map", input.len(), |ctx| {
                let i = ctx.global_id;
                dst.set(i, src.get(i).abs() * 2);
                ctx.add_work(2);
            });
            images.push(dst.to_vec());
        }
        assert_eq!(images[0], images[1]);
        assert_eq!(images[0], images[2]);
    }

    #[test]
    fn backend_parallel_auto_has_at_least_one_worker() {
        match Backend::parallel_auto() {
            Backend::Parallel { workers } => assert!(workers >= 1),
            _ => panic!("expected parallel backend"),
        }
    }

    #[test]
    fn per_launch_spawn_flag_matches_pooled_results() {
        let grid = 20_000;
        let spawned = VirtualGpu::new(
            GpuConfig::tesla_c2050(Backend::Parallel { workers: 3 }).with_executor(
                ExecutorConfig {
                    parallel_threshold: 8,
                    per_launch_spawn: true,
                    ..Default::default()
                },
            ),
        );
        let out = DeviceBuffer::<u32>::new(grid, 0);
        spawned.launch("legacy", grid, |ctx| out.set(ctx.global_id, 1));
        assert_eq!(out.to_vec().iter().map(|&v| v as usize).sum::<usize>(), grid);
        // The legacy strategy never creates the persistent pool.
        assert_eq!(spawned.worker_threads_spawned(), 0);
    }

    #[test]
    fn debug_formatting_mentions_device_name() {
        let gpu = VirtualGpu::sequential();
        let s = format!("{gpu:?}");
        assert!(s.contains("C2050"));
    }

    #[test]
    fn exec_mode_labels_round_trip() {
        for mode in ExecMode::all() {
            assert_eq!(mode.label().parse::<ExecMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(ExecMode::default(), ExecMode::LaunchPerRound);
        let err = "megakernel".parse::<ExecMode>().unwrap_err();
        assert!(err.to_string().contains("launch, resident"), "{err}");
    }

    #[test]
    fn resident_scope_turns_launches_into_rounds() {
        for gpu in [VirtualGpu::sequential(), pooled(3, 16, 64)] {
            let grid = 10_000;
            let out = DeviceBuffer::<u32>::new(grid, 0);
            let rounds = 7u32;
            gpu.resident("MEGA", grid, || {
                for _ in 0..rounds {
                    gpu.launch("STEP", grid, |ctx| {
                        out.set(ctx.global_id, out.get(ctx.global_id) + 1);
                        ctx.add_work(1);
                    });
                }
            });
            assert!(out.to_vec().iter().all(|&v| v == rounds));
            let s = gpu.stats();
            // One real launch enters the megakernel; the rounds are
            // barrier crossings, not launches.
            assert_eq!(s.total_launches(), 1);
            assert_eq!(s.launches_of("MEGA"), 1);
            assert_eq!(s.launches_of("STEP"), 0);
            assert_eq!(s.resident_rounds_of("STEP"), u64::from(rounds));
            assert_eq!(s.kernels["STEP"].barriers, u64::from(rounds));
            assert_eq!(s.kernels["STEP"].total_work, u64::from(rounds) * grid as u64);
        }
    }

    #[test]
    fn resident_rounds_price_barriers_instead_of_launches() {
        let gpu = VirtualGpu::sequential();
        let grid = 1000;
        let baseline = gpu.launch("lpr", grid, |ctx| ctx.add_work(1)).modelled_time_ns;
        let mut round_cost = 0.0;
        gpu.resident("scope", grid, || {
            round_cost = gpu.launch("res", grid, |ctx| ctx.add_work(1)).modelled_time_ns;
        });
        let perf = gpu.config().perf;
        let participants = grid.clamp(1, perf.resident_capacity());
        let expected =
            baseline - perf.kernel_launch_overhead_ns + perf.global_barrier_cost_ns(participants);
        assert!((round_cost - expected).abs() < 1e-6, "{round_cost} vs {expected}");
        // The entry launch is priced as a real launch of the resident grid.
        let s = gpu.stats();
        assert_eq!(s.kernels["scope"].modelled_time_ns, perf.launch_cost_ns(participants, 0, 0));
    }

    #[test]
    fn fused_tails_inside_a_resident_scope_stay_fused() {
        let gpu = VirtualGpu::sequential();
        gpu.resident("scope", 500, || {
            gpu.launch("host_kernel", 500, |ctx| ctx.add_work(1));
            let rec = gpu.launch_fused("tail", 500, |ctx| ctx.add_work(1));
            // No launch overhead and no *extra* barrier: the tail rides its
            // host kernel's round.
            let work_only = gpu.config().perf.launch_cost_ns(500, 500, 1)
                - gpu.config().perf.kernel_launch_overhead_ns;
            assert!((rec.modelled_time_ns - work_only).abs() < 1e-6);
        });
        let s = gpu.stats();
        assert_eq!(s.fused_tails_of("tail"), 1);
        assert_eq!(s.resident_rounds_of("tail"), 0);
        assert_eq!(s.resident_rounds_of("host_kernel"), 1);
    }

    #[test]
    fn resident_participants_clamp_to_device_capacity() {
        let gpu = VirtualGpu::sequential();
        let cap = gpu.config().perf.resident_capacity();
        gpu.resident("huge", 10 * cap, || {});
        gpu.resident("tiny", 0, || {});
        let s = gpu.stats();
        assert_eq!(s.kernels["huge"].max_grid, cap as u64);
        assert_eq!(s.kernels["tiny"].max_grid, 1);
    }

    #[test]
    fn launches_on_other_devices_ignore_the_scope() {
        let a = VirtualGpu::sequential();
        let b = VirtualGpu::sequential();
        a.resident("scope", 100, || {
            b.launch("other", 100, |_| {});
        });
        assert_eq!(b.stats().launches_of("other"), 1);
        assert_eq!(b.stats().total_resident_rounds(), 0);
        assert_eq!(a.stats().resident_rounds_of("other"), 0);
    }

    #[test]
    fn resident_scope_results_match_launch_per_round() {
        // The same kernel sequence produces identical memory images and
        // work counters under both execution modes, on both backends.
        let grid = 30_000;
        let mut images = Vec::new();
        for resident in [false, true] {
            for gpu in [VirtualGpu::sequential(), pooled(4, 8, 128)] {
                let data = DeviceBuffer::<u64>::new(grid, 1);
                let run = || {
                    for shift in 0..4u64 {
                        gpu.launch("STEP", grid, |ctx| {
                            let v = data.get(ctx.global_id);
                            data.set(ctx.global_id, v + (ctx.global_id as u64 >> shift));
                            ctx.add_work(1 + shift);
                        });
                    }
                };
                if resident {
                    gpu.resident("scope", grid, run);
                } else {
                    run();
                }
                let stats = gpu.stats();
                assert_eq!(stats.kernels["STEP"].total_work, grid as u64 * (1 + 2 + 3 + 4));
                images.push(data.to_vec());
            }
        }
        for image in &images[1..] {
            assert_eq!(image, &images[0]);
        }
    }

    #[test]
    fn panicking_kernel_inside_resident_scope_leaves_device_usable() {
        let gpu = pooled(3, 8, 64);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpu.resident("scope", 1000, || {
                gpu.launch("ok", 1000, |_| {});
                gpu.launch("boom", 1000, |ctx| {
                    if ctx.global_id == 500 {
                        panic!("resident kernel panic");
                    }
                });
            })
        }))
        .unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"resident kernel panic"));
        // Scope unwound: both resident state and the pool are clean.
        let out = DeviceBuffer::<u32>::new(1000, 0);
        gpu.launch("after", 1000, |ctx| out.set(ctx.global_id, 1));
        assert_eq!(out.to_vec().iter().map(|&v| u64::from(v)).sum::<u64>(), 1000);
        assert_eq!(gpu.stats().launches_of("after"), 1);
    }

    #[test]
    #[should_panic(expected = "nested VirtualGpu::resident")]
    fn nested_resident_scopes_panic() {
        let gpu = VirtualGpu::sequential();
        gpu.resident("outer", 10, || {
            gpu.resident("inner", 10, || {});
        });
    }
}
