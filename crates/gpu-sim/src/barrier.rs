//! A software **global barrier** for persistent (device-resident) kernels.
//!
//! CUDA has no device-wide barrier inside a launch: `__syncthreads()` stops
//! at the thread block.  Persistent-threads codes — including the GPU
//! matching and BFS implementations this reproduction follows — therefore
//! synchronize their resident blocks with a *software* barrier built from
//! global-memory atomics: every block atomically bumps an arrival counter,
//! then spins on a generation word until the last arriver (or a designated
//! leader) flips it.  Crossing such a barrier costs a few atomic round-trips
//! instead of a full kernel launch, which is the entire point of the
//! persistent execution mode ([`crate::VirtualGpu::resident`]).
//!
//! ## The sense-reversing protocol
//!
//! [`GlobalBarrier`] is the classic centralized sense-reversing barrier, with
//! the sense bit generalized to a monotonically increasing **generation
//! counter** (`sense`); the counter's parity *is* the classic sense bit, and
//! keeping the whole counter lets waiters that oversleep an epoch still make
//! progress (`sense > my_epoch` instead of `sense != my_sense`).
//!
//! * `participants` threads each [`arrive`](GlobalBarrier::arrive) by
//!   fetch-adding the **arrival counter** — the crate's one
//!   read-modify-write, [`crate::DeviceBuffer::fetch_add`] — and then
//!   [`wait_past`](GlobalBarrier::wait_past) the generation they observed on
//!   entry.
//! * When the arrival counter reaches `participants`, the **leader** (either
//!   the last arriver in [`arrive_and_wait`](GlobalBarrier::arrive_and_wait)
//!   or an external driver, as in the resident executor) runs its
//!   between-rounds work, [`depart_all`](GlobalBarrier::depart_all)s to reset
//!   the arrival counter, and [`release`](GlobalBarrier::release)s by
//!   bumping the generation counter, which frees every spinning waiter.
//! * Because waiters of epoch *e* spin on `sense > e` and never touch the
//!   arrival counter until released, the counter can be reset and reused for
//!   epoch *e + 1* without the double-buffering a non-sense-reversing
//!   counter barrier would need.
//!
//! ## Memory-model assumptions under the pooled executor
//!
//! On a real GPU the barrier's ordering comes from `__threadfence()` around
//! the atomics.  Host-side, [`crate::DeviceBuffer`] words are relaxed
//! atomics by design (they model unordered device memory), so the barrier
//! supplies the ordering itself with explicit fences:
//!
//! * [`arrive`](GlobalBarrier::arrive) issues a `Release` fence *before* the
//!   arrival fetch-add, so every write a worker made during its round is
//!   ordered before its arrival;
//! * the leader's [`await_full`](GlobalBarrier::await_full) issues an
//!   `Acquire` fence *after* observing the full arrival count, making all of
//!   those round writes visible to the leader's between-rounds work
//!   (fence-to-fence synchronization through the RMW chain on the arrival
//!   word);
//! * [`release`](GlobalBarrier::release) issues a `Release` fence before
//!   bumping the generation word, and
//!   [`wait_past`](GlobalBarrier::wait_past) issues an `Acquire` fence after
//!   observing the bump, so the leader's work (including
//!   [`depart_all`](GlobalBarrier::depart_all)'s counter reset and any
//!   worklist round transition) is visible to every worker before its next
//!   round begins.
//!
//! The net guarantee is exactly a device-wide happens-before edge per
//! crossing: *everything before the barrier, on every participant, is
//! visible to everything after it, on every participant.*
//!
//! ## Failure containment
//!
//! A panicking participant would deadlock a naive spin barrier.  Two layers
//! prevent that: the resident executor makes panicking workers arrive anyway
//! (the poisoned round still completes, and the payload is re-raised on the
//! launcher after the crossing), and the barrier itself can be
//! [`poison`](GlobalBarrier::poison)ed, which unblocks every current and
//! future waiter with a failure return instead of a successful crossing.
//!
//! Misuse — more arrivals than participants, releasing while threads are
//! still arriving, departing a barrier that is not full — is caught by debug
//! assertions rather than runtime checks, keeping the crossing cheap in
//! release builds.

use crate::buffer::DeviceBuffer;
use std::sync::atomic::{fence, AtomicBool, Ordering};

/// What [`GlobalBarrier::arrive_and_wait`] made of the calling thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierRole {
    /// This thread was the last arriver: it reset the barrier and released
    /// the others.  Exactly one participant per crossing is the leader.
    Leader,
    /// This thread waited for the leader's release.
    Follower,
    /// The barrier was poisoned while waiting; the crossing never completed.
    Poisoned,
}

/// A sense-reversing software global barrier for a fixed set of
/// `participants` threads; see the [module docs](self) for the protocol and
/// its memory-model guarantees.
///
/// Both counters live in [`DeviceBuffer`] words so the arrival traffic is
/// the same modelled RMW the worklist queues use; the cost model prices one
/// crossing through [`crate::PerfModel::global_barrier_cost_ns`].
pub struct GlobalBarrier {
    participants: usize,
    /// Arrivals in the current epoch; reset by the leader each crossing.
    arrived: DeviceBuffer<u64>,
    /// Generation counter: number of completed releases.  Its parity is the
    /// classic sense bit.
    sense: DeviceBuffer<u64>,
    poisoned: AtomicBool,
}

impl GlobalBarrier {
    /// Creates a barrier for exactly `participants` threads.
    ///
    /// # Panics
    /// Panics if `participants` is zero.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "a global barrier needs at least one participant");
        Self {
            participants,
            arrived: DeviceBuffer::new(1, 0),
            sense: DeviceBuffer::new(1, 0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of threads that must arrive to complete one crossing.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Completed crossings (releases) so far — the current generation.
    pub fn epoch(&self) -> u64 {
        self.sense.get(0)
    }

    /// Arrivals recorded in the current epoch (diagnostic; racy by nature).
    pub fn arrived(&self) -> u64 {
        self.arrived.get(0)
    }

    /// Registers this thread's arrival at the barrier and returns its
    /// 0-based arrival ticket.  A `Release` fence orders all of the
    /// thread's prior writes before the arrival.
    ///
    /// The ticket `participants - 1` identifies the last arriver, which
    /// self-elects as leader in [`GlobalBarrier::arrive_and_wait`].
    pub fn arrive(&self) -> u64 {
        fence(Ordering::Release);
        let ticket = self.arrived.fetch_add(0, 1);
        debug_assert!(
            ticket < self.participants as u64,
            "global barrier misuse: arrival #{ticket} exceeds {} participants \
             (arrived twice in one epoch, or released before full?)",
            self.participants
        );
        ticket
    }

    /// Spins until the generation counter passes `epoch` (i.e. the epoch the
    /// caller arrived in has been released).  Returns `true` on a successful
    /// crossing — with an `Acquire` fence, so everything the leader did
    /// before [`GlobalBarrier::release`] is visible — or `false` if the
    /// barrier was poisoned first.
    pub fn wait_past(&self, epoch: u64) -> bool {
        let mut spins = 0u32;
        loop {
            if self.sense.get(0) > epoch {
                fence(Ordering::Acquire);
                return true;
            }
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            backoff(&mut spins);
        }
    }

    /// Leader-side: spins until every participant has arrived.  Returns
    /// `true` once full — with an `Acquire` fence, so every worker's round
    /// writes are visible to the leader — or `false` if the barrier was
    /// poisoned before filling.
    pub fn await_full(&self) -> bool {
        let mut spins = 0u32;
        loop {
            let arrived = self.arrived.get(0);
            debug_assert!(
                arrived <= self.participants as u64,
                "global barrier misuse: {arrived} arrivals for {} participants",
                self.participants
            );
            if arrived == self.participants as u64 {
                fence(Ordering::Acquire);
                return true;
            }
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            backoff(&mut spins);
        }
    }

    /// Leader-side: resets the arrival counter of a **full** barrier so the
    /// next epoch can reuse it.  Must be followed by
    /// [`GlobalBarrier::release`]; waiters stay blocked in between, which is
    /// the window where the leader runs its between-rounds work.
    pub fn depart_all(&self) {
        debug_assert_eq!(
            self.arrived.get(0),
            self.participants as u64,
            "global barrier misuse: departing a barrier that is not full"
        );
        self.arrived.set(0, 0);
    }

    /// Leader-side: bumps the generation counter, releasing every waiter of
    /// the previous epoch.  A `Release` fence orders the leader's work
    /// (including the [`GlobalBarrier::depart_all`] reset) before the bump.
    pub fn release(&self) {
        debug_assert_eq!(
            self.arrived.get(0),
            0,
            "global barrier misuse: releasing before depart_all reset the arrivals"
        );
        fence(Ordering::Release);
        self.sense.fetch_add(0, 1);
    }

    /// The symmetric all-worker crossing: arrive, and either lead (last
    /// arriver: reset + release) or wait for the release.  One full
    /// [`BarrierRole::Leader`] is reported per crossing; everyone else is a
    /// [`BarrierRole::Follower`].
    ///
    /// The resident executor does **not** use this — its leader is the
    /// launcher thread driving [`GlobalBarrier::await_full`] /
    /// [`GlobalBarrier::depart_all`] / [`GlobalBarrier::release`] directly —
    /// but standalone persistent kernels can.
    pub fn arrive_and_wait(&self) -> BarrierRole {
        if self.is_poisoned() {
            return BarrierRole::Poisoned;
        }
        let epoch = self.epoch();
        let ticket = self.arrive();
        if ticket + 1 == self.participants as u64 {
            self.depart_all();
            self.release();
            BarrierRole::Leader
        } else if self.wait_past(epoch) {
            BarrierRole::Follower
        } else {
            BarrierRole::Poisoned
        }
    }

    /// Marks the barrier as failed: every current and future waiter returns
    /// unsuccessfully instead of spinning forever.  Used when a participant
    /// panics out of the protocol.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// `true` once the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for GlobalBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalBarrier")
            .field("participants", &self.participants)
            .field("epoch", &self.epoch())
            .field("arrived", &self.arrived())
            .field("poisoned", &self.is_poisoned())
            .finish()
    }
}

/// Spin-wait backoff: busy-spin briefly (a barrier crossing is normally
/// shorter than a context switch), then start yielding the time slice so
/// oversubscribed hosts — more pool workers than cores — still converge.
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_always_leads() {
        let b = GlobalBarrier::new(1);
        for expected_epoch in 1..=5 {
            assert_eq!(b.arrive_and_wait(), BarrierRole::Leader);
            assert_eq!(b.epoch(), expected_epoch);
            assert_eq!(b.arrived(), 0);
        }
    }

    #[test]
    fn reuse_across_epochs_with_symmetric_crossings() {
        const THREADS: usize = 4;
        const EPOCHS: u64 = 100;
        let b = Arc::new(GlobalBarrier::new(THREADS));
        let tally = Arc::new(DeviceBuffer::<u64>::new(1, 0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let b = Arc::clone(&b);
                let tally = Arc::clone(&tally);
                std::thread::spawn(move || {
                    let mut led = 0u64;
                    for e in 0..EPOCHS {
                        tally.fetch_add(0, 1);
                        match b.arrive_and_wait() {
                            BarrierRole::Leader => {
                                led += 1;
                                // The leader crosses with an acquire fence,
                                // so it must observe every arrival's add.
                                assert_eq!(tally.get(0), (e + 1) * THREADS as u64);
                            }
                            BarrierRole::Follower => {}
                            BarrierRole::Poisoned => panic!("unexpected poison"),
                        }
                    }
                    led
                })
            })
            .collect();
        let total_leads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Exactly one leader per crossing, and every crossing completed.
        assert_eq!(total_leads, EPOCHS);
        assert_eq!(b.epoch(), EPOCHS);
        assert_eq!(tally.get(0), EPOCHS * THREADS as u64);
    }

    #[test]
    fn external_leader_drives_workers_through_rounds() {
        // The resident executor's shape: the launcher is the leader; workers
        // only arrive and wait.
        const WORKERS: usize = 3;
        const ROUNDS: u64 = 50;
        let b = Arc::new(GlobalBarrier::new(WORKERS));
        let sum = Arc::new(DeviceBuffer::<u64>::new(1, 0));
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let b = Arc::clone(&b);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    for epoch in 0..ROUNDS {
                        assert!(b.wait_past(epoch), "poisoned mid-protocol");
                        sum.fetch_add(0, epoch + 1);
                        b.arrive();
                    }
                })
            })
            .collect();
        let mut expected = 0u64;
        for round in 0..ROUNDS {
            b.release(); // open round `round`
            assert!(b.await_full());
            expected += (round + 1) * WORKERS as u64;
            // Leader observes all the round's writes after the crossing.
            assert_eq!(sum.get(0), expected);
            b.depart_all();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.epoch(), ROUNDS);
    }

    #[test]
    fn poison_unblocks_current_and_future_waiters() {
        let b = Arc::new(GlobalBarrier::new(2));
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let epoch = b.epoch();
                b.arrive();
                b.wait_past(epoch)
            })
        };
        // Give the waiter time to actually block, then poison instead of
        // supplying the second arrival.
        while b.arrived() == 0 {
            std::thread::yield_now();
        }
        b.poison();
        assert!(!waiter.join().unwrap(), "poisoned wait must fail, not hang");
        assert!(b.is_poisoned());
        // Future waits fail immediately too.
        assert!(!b.wait_past(b.epoch()));
        assert!(!b.await_full());
        assert_eq!(b.arrive_and_wait(), BarrierRole::Poisoned);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "global barrier misuse")]
    fn over_arrival_is_caught_in_debug_builds() {
        let b = GlobalBarrier::new(1);
        b.arrive(); // fills the barrier (leader duties not performed)
        b.arrive(); // second arrival in the same epoch: misuse
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "not full")]
    fn departing_a_non_full_barrier_is_caught_in_debug_builds() {
        let b = GlobalBarrier::new(2);
        b.arrive();
        b.depart_all();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before depart_all")]
    fn releasing_with_pending_arrivals_is_caught_in_debug_builds() {
        let b = GlobalBarrier::new(2);
        b.arrive();
        b.release();
    }

    #[test]
    fn debug_format_shows_protocol_state() {
        let b = GlobalBarrier::new(3);
        let s = format!("{b:?}");
        assert!(s.contains("participants: 3"), "{s}");
        assert!(s.contains("epoch: 0"), "{s}");
    }
}
