//! The device worklist: one API over four active-set representations.
//!
//! Every frontier-driven engine in the workspace — the paper's G-PR
//! push-relabel kernels, the G-GR global-relabeling BFS, and the G-HK /
//! G-HKDW phase BFS — iterates a set of *active* vertices in rounds, adds
//! vertices for the next round while processing the current one, and
//! periodically rebuilds the set.  How that set is **represented on the
//! device** is the performance knob the paper's Section III-C is about, so
//! this module factors it out as a [`Worklist`] with four interchangeable
//! [`WorklistMode`]s:
//!
//! * [`WorklistMode::DenseStamp`] — membership is a per-vertex stamp (the
//!   paper's `iA` array); iteration scans the whole slot list (or domain)
//!   every round.  Zero bookkeeping between rounds, full-width launches.
//!   This is the representation behind `G-PR-NoShr` and the paper's dense
//!   level-synchronous BFS kernels.
//! * [`WorklistMode::Compacted`] — the same stamps, but the list is rebuilt
//!   by the paper's `G-PR-SHRKRNL` pattern (a count pass, a device
//!   [exclusive prefix sum](crate::primitives::exclusive_prefix_sum), and a
//!   scatter into private regions), so later launches cover only live
//!   entries.  This is `G-PR-Shr`'s representation, generalized.
//! * [`WorklistMode::AtomicQueue`] — vertices for the next round are
//!   **appended device-side** with an atomic fetch-add
//!   ([`DeviceQueue`]), the worklist-centric design of the GPU BFS
//!   literature.  No scan of any kind runs between rounds: the next launch
//!   is exactly as wide as the number of appended items, which makes this
//!   the representation of choice for launch-bound instances whose active
//!   set collapses quickly.  Every push, however, funnels through the one
//!   queue-tail word, and the device model charges same-address atomics a
//!   serialization cost — the single-tail bottleneck.
//! * [`WorklistMode::BlockedQueue`] — the same append-driven design, but
//!   pushes claim cache-line-sized **slot blocks** (one `fetch_add` per
//!   [`primitives::QUEUE_BLOCK`] slots, held in a per-worker thread-local
//!   cursor) instead of single slots, cutting tail contention by the block
//!   factor.  Partial blocks leave holes; a *wide* round handoff runs a
//!   cheap two-pass *stitch* over at most one block per claim — not a
//!   domain scan — fused into the preceding launch's tail
//!   ([`VirtualGpu::launch_fused`]), compacting the claimed blocks into the
//!   dense prefix the next round launches over.  Rounds narrower than one
//!   warp-issue quantum skip the stitch and adopt the claimed blocks
//!   verbatim: iteration skips the hole markers, and at that width the
//!   holes cannot cost an extra issue round while the stitch passes would.
//!
//! # Protocols
//!
//! Two engine shapes are supported over the same storage:
//!
//! * the **slot protocol** ([`Worklist::begin_round`] /
//!   [`Worklist::for_each_active`] / [`Worklist::end_round`]) reproduces the
//!   paper's two-array `A_c`/`A_p` scheme: each slot remembers the item it
//!   processed so a push rolled back by a benign race is retried
//!   (`G-PR-INITKRNL`), and each thread reports one [`SlotAction`] per slot;
//! * the **frontier protocol** ([`Worklist::for_each_frontier`] /
//!   [`Worklist::advance_frontier`]) is the level-synchronous BFS shape:
//!   threads push any number of discovered vertices, and advancing moves the
//!   epoch to the next level.
//!
//! # Epochs and stamps
//!
//! The worklist owns a domain-sized stamp array.  A vertex is *in the
//! current round* iff its stamp equals the current epoch — this is exactly
//! the paper's `iA` duplicate-processing guard (Algorithm 9 line 13),
//! exposed as [`ActiveView::in_current_round`].  Epochs increase
//! monotonically across rounds **and across re-seeds**, so a recycled
//! worklist never needs its stamps cleared.
//!
//! # AtomicQueue memory model
//!
//! A queue push is `fetch_add(tail)` + relaxed store of the item, with a
//! same-epoch stamp check in front to drop most duplicates.  Three races are
//! possible and all are handled:
//!
//! 1. *Duplicate appends* — two threads can pass the stamp check
//!    simultaneously; the item is processed twice next round, which every
//!    engine built on this module tolerates (the same benign-race argument
//!    the paper makes for its kernels).
//! 2. *Unordered claim/store* — a claimed slot's store has no ordering
//!    guarantee within the launch.  The queue is therefore only read
//!    **after** the launch barrier: under the pooled executor the
//!    end-of-launch join synchronizes the workers (a happens-before edge),
//!    so every store is visible to the host and to the next launch — the
//!    same publication a real GPU gets from the implicit barrier between
//!    kernels on the default stream.
//! 3. *Overflow / lost items* — capacity is the domain size, so overflow
//!    can only come from duplicate races; the stamp array still holds full
//!    membership, and the round rebuilds from it (and a push-relabel loop
//!    whose queue runs dry re-scans by predicate before concluding it is
//!    done, so an item lost to a rolled-back push can never end the solve
//!    early).
//!
//! [`WorklistMode::BlockedQueue`] adds block claims on top, and two more
//! races with them:
//!
//! 4. *Claim vs. fill* — a worker that claims a block immediately pre-fills
//!    it with the hole marker before storing any item.  No other thread
//!    touches those slots during the launch: the `fetch_add` on the tail
//!    hands out disjoint slot ranges, so the block is exclusively owned
//!    until the end-of-launch barrier publishes it (the same happens-before
//!    edge as race 2).  The stitch — and any other reader — only runs after
//!    that barrier, so it sees every hole marker and every stored item.
//! 5. *Stale cursors* — a worker's thread-local cursor could outlive the
//!    round that claimed it and point at slots the (reset) tail no longer
//!    covers.  Queue views carry a unique id per construction and the
//!    cursor is keyed by it, so a new round's first push re-claims instead
//!    of resurrecting dead slots; abandoned partial blocks are just holes,
//!    which a wide round's stitch compacts away and a narrow round's
//!    iteration skips in place.  Blocked claims can also round the
//!    tail past capacity even without duplicate races; the overflow path is
//!    the same stamp rebuild as race 3.

use crate::buffer::DeviceBuffer;
use crate::engine::{ThreadCtx, VirtualGpu};
use crate::primitives::{self, DeviceQueue, QUEUE_BLOCK};
use crate::scratch::ScratchBuffer;
use std::cell::OnceCell;
use std::fmt;
use std::str::FromStr;

/// Sentinel for an empty worklist slot.
pub const WL_EMPTY: u64 = u64::MAX;

/// Widest blocked-queue round that adopts its claimed blocks verbatim
/// (holes included) instead of stitching them into a dense prefix.  One
/// warp-issue quantum of the modelled device — `num_sms × warp_size`
/// threads retire per issue round — so below this width the holes cannot
/// add an issue round, while the two fused stitch passes always would.
const STITCH_THRESHOLD: usize = 448;

/// How a [`Worklist`] represents its active set on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorklistMode {
    /// Stamp-guarded slots scanned in full every round (the paper's
    /// `iA`-array scheme; no compaction ever runs).
    DenseStamp,
    /// Slots compacted with the count / prefix-sum / scatter pattern of
    /// `G-PR-SHRKRNL` when the engine asks for it.
    Compacted,
    /// Device-side atomic-append queue: each round launches over exactly
    /// the items pushed by the previous round, with no scan in between.
    AtomicQueue,
    /// Atomic-append queue with blocked claims: one tail `fetch_add` per
    /// cache-line-sized slot block instead of per item, with a fused stitch
    /// compacting partial blocks at the round handoff.
    BlockedQueue,
}

impl WorklistMode {
    /// All four representations, in ablation order.
    pub fn all() -> [WorklistMode; 4] {
        [
            WorklistMode::DenseStamp,
            WorklistMode::Compacted,
            WorklistMode::AtomicQueue,
            WorklistMode::BlockedQueue,
        ]
    }

    /// The round-trippable label used in `Algorithm` specs (`+dense`,
    /// `+compacted`, `+queue`, `+blocked`).
    pub fn label(&self) -> &'static str {
        match self {
            WorklistMode::DenseStamp => "dense",
            WorklistMode::Compacted => "compacted",
            WorklistMode::AtomicQueue => "queue",
            WorklistMode::BlockedQueue => "blocked",
        }
    }

    /// `true` for the append-driven representations (per-item or blocked
    /// queue), which share storage layout, epochs, and recovery paths.
    pub fn is_queue(&self) -> bool {
        matches!(self, WorklistMode::AtomicQueue | WorklistMode::BlockedQueue)
    }
}

impl fmt::Display for WorklistMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when a string is not a [`WorklistMode`] label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseWorklistModeError {
    /// The string that failed to parse.
    pub input: String,
}

impl fmt::Display for ParseWorklistModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse worklist mode '{}': expected one of dense, compacted, queue, blocked",
            self.input
        )
    }
}

impl std::error::Error for ParseWorklistModeError {}

impl FromStr for WorklistMode {
    type Err = ParseWorklistModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(WorklistMode::DenseStamp),
            "compacted" => Ok(WorklistMode::Compacted),
            "queue" => Ok(WorklistMode::AtomicQueue),
            "blocked" => Ok(WorklistMode::BlockedQueue),
            _ => Err(ParseWorklistModeError { input: s.to_string() }),
        }
    }
}

/// Kernel names a worklist charges its maintenance launches to, so each
/// engine's device statistics keep their paper-faithful labels
/// (`G-PR-INITKRNL`, `G-PR-SHRKRNL_count`, …).
#[derive(Clone, Copy, Debug)]
pub struct WorklistKernels {
    /// Slot-resolve / stamp pass (the paper's `G-PR-INITKRNL`).
    pub init: &'static str,
    /// Compaction count pass (`G-PR-SHRKRNL` pass 1).
    pub compact_count: &'static str,
    /// Compaction scatter pass (`G-PR-SHRKRNL` pass 3; pass 2 is the shared
    /// device prefix sum).
    pub compact_scatter: &'static str,
    /// Queue rebuild passes (predicate re-scan on a drained queue, stamp
    /// re-scan after an overflow).  Also the name the **fused** drained-queue
    /// refill is charged to: with [`Worklist::for_each_active_refill`] the
    /// refill stops appearing as launches and shows up as
    /// [`fused_tails`](crate::KernelStats::fused_tails) instead.
    pub refill: &'static str,
    /// Blocked-append stitch passes (compact claimed blocks, then gather the
    /// block fronts into the dense prefix); both are fused tails, so this
    /// kernel accrues `fused_tails`, never `launches`.
    pub stitch: &'static str,
}

/// What a slot-protocol thread decided about its item; applied by the
/// worklist so every representation keeps its invariants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotAction {
    /// The item succeeded and displaced another item, which must be
    /// processed in a later round (the paper's double push).
    Push(usize),
    /// The item could not be processed this round and must be retried
    /// (Algorithm 9's deferral when the target's mate is active).
    Defer,
    /// The item was processed; it only returns if the engine's predicate
    /// reports it live again (a push rolled back by a benign race).
    Finish,
    /// The item is permanently done (e.g. proven unmatchable): drop it and
    /// its retry memory.
    Retire,
}

/// In-kernel view handed to slot-protocol threads.
pub struct ActiveView<'a> {
    stamp: &'a DeviceBuffer<u64>,
    epoch: u64,
    /// Present only in the queue representations.
    queue: Option<DeviceQueue<'a>>,
}

impl ActiveView<'_> {
    /// `true` iff `v` is being processed in the current round — the paper's
    /// `iA(µ(u)) = i` guard against displacing a concurrently active column.
    #[inline]
    pub fn in_current_round(&self, v: usize) -> bool {
        self.stamp.get(v) == self.epoch
    }

    /// Queue-mode append for the next round, deduplicated by stamp.
    #[inline]
    fn queue_push(&self, ctx: &ThreadCtx, v: usize) {
        let next = self.epoch + 1;
        if self.stamp.get(v) != next {
            self.stamp.set(v, next);
            self.queue.as_ref().expect("queue present in queue modes").push(ctx, v as u64);
        }
    }
}

/// In-kernel view handed to frontier-protocol threads.
pub struct FrontierView<'a> {
    mode: WorklistMode,
    stamp: &'a DeviceBuffer<u64>,
    epoch: u64,
    nonempty: &'a DeviceBuffer<u64>,
    /// Present only in the queue representations.
    queue: Option<DeviceQueue<'a>>,
}

impl FrontierView<'_> {
    /// Schedules `v` for the next round (the next BFS level).  Racy
    /// duplicate pushes of the same vertex are benign in every mode.
    #[inline]
    pub fn push(&self, ctx: &ThreadCtx, v: usize) {
        let next = self.epoch + 1;
        match self.mode {
            WorklistMode::DenseStamp | WorklistMode::Compacted => {
                self.stamp.set(v, next);
                self.nonempty.set(0, 1);
            }
            WorklistMode::AtomicQueue | WorklistMode::BlockedQueue => {
                if self.stamp.get(v) != next {
                    self.stamp.set(v, next);
                    self.queue.as_ref().expect("queue present in queue modes").push(ctx, v as u64);
                }
            }
        }
    }
}

/// In-kernel view handed to [`Worklist::scan_domain`] threads.
pub struct DomainMarker<'a> {
    nonempty: &'a DeviceBuffer<u64>,
}

impl DomainMarker<'_> {
    /// Records that at least one domain element was active this scan.
    #[inline]
    pub fn mark_active(&self) {
        self.nonempty.set(0, 1);
    }
}

/// A device worklist over the vertex domain `0..domain`, in one of three
/// [`WorklistMode`] representations.  All device storage (slot arrays,
/// stamps, queue tail, flags) is drawn from the owning device's
/// [`ScratchArena`](crate::scratch::ScratchArena), so a warm solver session
/// that builds one worklist per solve stops allocating after the first.
/// The domain-sized buffers are acquired lazily, on first use by the
/// protocol actually driven: a pure [`Worklist::scan_domain`] user pays for
/// nothing but the one-word flag, and a dense frontier never materializes
/// the pending array.
pub struct Worklist<'gpu> {
    gpu: &'gpu VirtualGpu,
    mode: WorklistMode,
    names: WorklistKernels,
    domain: usize,
    epoch: u64,
    len: usize,
    current: OnceCell<ScratchBuffer<'gpu>>,
    pending: OnceCell<ScratchBuffer<'gpu>>,
    stamp: OnceCell<ScratchBuffer<'gpu>>,
    tail: ScratchBuffer<'gpu>,
    nonempty: ScratchBuffer<'gpu>,
    overflow: ScratchBuffer<'gpu>,
    compacted: bool,
    refilled: bool,
    fresh_seed: bool,
    /// Set when a drained-queue predicate refill already ran **fused** into
    /// the tail of the round's processing kernel
    /// ([`Worklist::for_each_active_refill`]): the next
    /// [`Worklist::begin_round`] must not launch a second refill — either
    /// the fused sweep appended survivors (the queue is non-empty) or it
    /// proved the set empty.
    fused_refill_done: bool,
    /// `true` between a [`Worklist::begin_round`] and its
    /// [`Worklist::end_round`]; lets [`Worklist::round_transition`] close
    /// the previous round exactly when one is open.
    round_open: bool,
}

impl<'gpu> Worklist<'gpu> {
    /// Creates a worklist for items in `0..domain`, drawing every device
    /// buffer from `gpu`'s scratch arena.
    pub fn new(
        gpu: &'gpu VirtualGpu,
        mode: WorklistMode,
        domain: usize,
        names: WorklistKernels,
    ) -> Self {
        Self {
            current: OnceCell::new(),
            pending: OnceCell::new(),
            stamp: OnceCell::new(),
            tail: gpu.scratch().acquire(1, 0),
            nonempty: gpu.scratch().acquire(1, 0),
            overflow: gpu.scratch().acquire(1, 0),
            gpu,
            mode,
            names,
            domain,
            epoch: 0,
            len: 0,
            compacted: false,
            refilled: false,
            fresh_seed: false,
            fused_refill_done: false,
            round_open: false,
        }
    }

    /// A fresh queue view over the pending/tail/overflow buffers, blocked or
    /// per-item per the mode.  Built per launch: the view's identity is what
    /// keys (and invalidates) the blocked representation's thread-local
    /// block cursors.
    fn queue_view(&self) -> DeviceQueue<'_> {
        let pending = self.pending_buf();
        if self.mode == WorklistMode::BlockedQueue {
            DeviceQueue::new_blocked(pending, &self.tail, &self.overflow)
        } else {
            DeviceQueue::new(pending, &self.tail, &self.overflow)
        }
    }

    /// The current item list, acquired (EMPTY-filled) on first use.
    fn current_buf(&self) -> &DeviceBuffer<u64> {
        self.current.get_or_init(|| self.gpu.scratch().acquire(self.domain, WL_EMPTY))
    }

    /// The partner slot array / queue target, acquired on first use.
    fn pending_buf(&self) -> &DeviceBuffer<u64> {
        self.pending.get_or_init(|| self.gpu.scratch().acquire(self.domain, WL_EMPTY))
    }

    /// The per-domain stamp (`iA`) array, acquired (zero-filled) on first
    /// use; epochs start at 1, so a zeroed stamp never matches.
    fn stamp_buf(&self) -> &DeviceBuffer<u64> {
        self.stamp.get_or_init(|| self.gpu.scratch().acquire(self.domain, 0))
    }

    /// The representation this worklist runs with.
    pub fn mode(&self) -> WorklistMode {
        self.mode
    }

    /// Size of the item domain (`0..domain`).
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Length of the current slot/queue list.  For [`WorklistMode::DenseStamp`]
    /// frontiers this is the seeded length (dense rounds scan the domain).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the current list holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current round stamp.  Monotonically increasing; stamps written in
    /// earlier rounds or before a re-seed never collide with it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `true` iff the last [`Worklist::begin_round`] ran a compaction
    /// (feeds the engine's shrink counters).
    pub fn compacted_last_round(&self) -> bool {
        self.compacted
    }

    /// `true` iff the last [`Worklist::begin_round`] had to rebuild a
    /// drained or overflowed queue from scratch.
    pub fn refilled_last_round(&self) -> bool {
        self.refilled
    }

    /// (Re-)seeds the worklist from host-side items, host staging included —
    /// the analogue of uploading the initial active list to the device.
    /// Moves to a fresh epoch, so stale stamps from earlier use are inert.
    pub fn seed(&mut self, items: impl IntoIterator<Item = usize>) {
        // +2, not +1: a round's pushes stamp `epoch + 1`, and a caller may
        // re-seed after a round whose pushes were never consumed (e.g. a BFS
        // that broke out early).  Jumping two epochs guarantees no stamp
        // ever written so far can masquerade as a freshly seeded item.
        self.epoch += 2;
        let epoch = self.epoch;
        let mut k = 0usize;
        {
            let current = self.current_buf();
            let stamp = self.stamp_buf();
            // The partner array only needs refreshing if it already exists;
            // an untouched pending array is EMPTY-filled on first use, and a
            // round-one resolve of an EMPTY slot memory is a no-op —
            // identical behavior, one less domain-sized fill for protocols
            // that never read it.
            let pending =
                if self.mode.is_queue() { None } else { self.pending.get().map(|buf| &**buf) };
            for v in items {
                debug_assert!(v < self.domain, "worklist item {v} outside domain {}", self.domain);
                current.set(k, v as u64);
                stamp.set(v, epoch);
                if let Some(pending) = pending {
                    pending.set(k, v as u64);
                }
                k += 1;
            }
        }
        self.len = k;
        self.tail.set(0, 0);
        self.nonempty.set(0, 0);
        self.overflow.set(0, 0);
        self.fresh_seed = true;
        self.compacted = false;
        self.refilled = false;
        self.fused_refill_done = false;
        self.round_open = false;
    }

    /// Device-side seeding: stamps (and, for list-materializing modes,
    /// gathers) every domain element satisfying `predicate`, without any
    /// host-side scan.  Launches are charged to the worklist's `refill`
    /// kernel name, so the seeding cost shows up in the device model like
    /// any other kernel.  Same epoch semantics as [`Worklist::seed`].
    pub fn seed_by_predicate(&mut self, predicate: impl Fn(usize) -> bool + Sync) {
        self.epoch += 2;
        self.tail.set(0, 0);
        self.nonempty.set(0, 0);
        self.overflow.set(0, 0);
        match self.mode {
            WorklistMode::DenseStamp => {
                // Membership is the stamps alone; one domain pass suffices
                // and no list is materialized.
                let epoch = self.epoch;
                let stamp = self.stamp_buf();
                self.gpu.launch(self.names.refill, self.domain, |ctx| {
                    let v = ctx.global_id;
                    ctx.add_work(1);
                    if predicate(v) {
                        stamp.set(v, epoch);
                    }
                });
                self.len = 0;
            }
            WorklistMode::Compacted | WorklistMode::AtomicQueue | WorklistMode::BlockedQueue => {
                self.len = self.gather_into_current(&predicate, true);
            }
        }
        self.fresh_seed = true;
        self.compacted = false;
        self.refilled = false;
        self.fused_refill_done = false;
        self.round_open = false;
    }

    /// Device-side seeding for slot-protocol drivers: like
    /// [`Worklist::seed_by_predicate`], but the slot list is materialized in
    /// **every** mode — [`WorklistMode::DenseStamp`] included — because
    /// [`Worklist::begin_round`] / [`Worklist::for_each_active`] iterate the
    /// slot list rather than scanning the domain.  The gather is charged to
    /// the worklist's `refill` kernel, so a warm-started caller whose
    /// predicate selects only a handful of disturbed items (e.g. an
    /// incremental re-solve seeding the columns a graph delta touched) pays
    /// the domain scan once and then works on a list proportional to the
    /// seed, not to the domain.
    pub fn seed_slots_by_predicate(&mut self, predicate: impl Fn(usize) -> bool + Sync) {
        self.epoch += 2;
        self.tail.set(0, 0);
        self.nonempty.set(0, 0);
        self.overflow.set(0, 0);
        self.len = self.gather_into_current(&predicate, true);
        self.fresh_seed = true;
        self.compacted = false;
        self.refilled = false;
        self.fused_refill_done = false;
        self.round_open = false;
    }

    // ------------------------------------------------------------------
    // Slot protocol (push-relabel shape)
    // ------------------------------------------------------------------

    /// Starts a slot-protocol round: advances the epoch, re-establishes the
    /// active list, and returns `true` iff any item is active.
    ///
    /// * list modes run the resolve/stamp pass (the paper's `G-PR-INITKRNL`),
    ///   or — in [`WorklistMode::Compacted`] with `compact` requested — the
    ///   `G-PR-SHRKRNL` count / prefix-sum / scatter rebuild instead;
    /// * [`WorklistMode::AtomicQueue`] swaps in the queue appended by the
    ///   previous round (no kernel launch at all), rebuilding it from
    ///   `predicate` only when it drained or overflowed.
    ///
    /// `predicate(v)` must report whether item `v` is still live; it is the
    /// activity test of `G-PR-INITKRNL` and the safety net that keeps the
    /// queue representation exact under rolled-back racy pushes.
    pub fn begin_round(&mut self, predicate: impl Fn(usize) -> bool + Sync, compact: bool) -> bool {
        self.compacted = false;
        self.refilled = false;
        self.round_open = true;
        match self.mode {
            WorklistMode::DenseStamp | WorklistMode::Compacted => {
                self.fresh_seed = false;
                self.epoch += 1;
                self.nonempty.set(0, 0);
                if self.mode == WorklistMode::Compacted && compact {
                    self.compact_slots(&predicate);
                    self.compacted = true;
                } else {
                    self.init_slots(&predicate);
                }
                self.nonempty.get(0) != 0
            }
            WorklistMode::AtomicQueue | WorklistMode::BlockedQueue => {
                if self.fresh_seed {
                    // The seed already stamped and listed this round's items.
                    self.fresh_seed = false;
                } else {
                    self.epoch += 1;
                    self.take_appended_queue();
                }
                if self.len == 0 && !self.fused_refill_done {
                    // Drained queue: re-scan by predicate before concluding
                    // the set is empty, so items lost to rolled-back racy
                    // pushes are recovered instead of silently dropped.
                    // (When the previous round already swept the predicate
                    // fused into its kernel tail — `fused_refill_done` — an
                    // empty queue IS the verdict, launch-free.)
                    self.refill_from_predicate(&predicate);
                    self.refilled = true;
                }
                self.fused_refill_done = false;
                self.len > 0
            }
        }
    }

    /// Launches `f` over the active slots of the current round.  The
    /// wrapper skips empty slots (charging them one work unit, like the
    /// paper's kernels) and applies the returned [`SlotAction`] in the
    /// representation's terms; `f` may consult
    /// [`ActiveView::in_current_round`] for the duplicate-processing guard.
    pub fn for_each_active(
        &self,
        name: &'static str,
        f: impl Fn(&ThreadCtx, usize, &ActiveView<'_>) -> SlotAction + Sync,
    ) {
        let current = self.current_buf();
        let pending = self.pending_buf();
        let view = ActiveView {
            stamp: self.stamp_buf(),
            epoch: self.epoch,
            queue: self.mode.is_queue().then(|| self.queue_view()),
        };
        match self.mode {
            WorklistMode::DenseStamp | WorklistMode::Compacted => {
                self.gpu.launch(name, self.len, |ctx| {
                    let i = ctx.global_id;
                    ctx.add_work(1);
                    let v = current.get(i);
                    if v == WL_EMPTY {
                        pending.set(i, WL_EMPTY);
                        return;
                    }
                    match f(ctx, v as usize, &view) {
                        SlotAction::Push(w) => pending.set(i, w as u64),
                        SlotAction::Defer | SlotAction::Finish => pending.set(i, WL_EMPTY),
                        SlotAction::Retire => {
                            current.set(i, WL_EMPTY);
                            pending.set(i, WL_EMPTY);
                        }
                    }
                });
            }
            WorklistMode::AtomicQueue | WorklistMode::BlockedQueue => {
                self.gpu.launch(name, self.len, |ctx| {
                    let i = ctx.global_id;
                    ctx.add_work(1);
                    let v = current.get(i);
                    if v == WL_EMPTY {
                        return;
                    }
                    match f(ctx, v as usize, &view) {
                        SlotAction::Push(w) => view.queue_push(ctx, w),
                        SlotAction::Defer => view.queue_push(ctx, v as usize),
                        SlotAction::Finish | SlotAction::Retire => {}
                    }
                });
            }
        }
    }

    /// [`Worklist::for_each_active`] with the drained-queue refill **fused
    /// into the kernel tail**: when the round's launch ends with an empty
    /// append queue, the predicate sweep that [`Worklist::begin_round`]
    /// would otherwise run as separate launches executes as a fused tail of
    /// this round instead (the CUDA last-block-done idiom —
    /// [`VirtualGpu::launch_fused`]), so the drained round pays no extra
    /// launch overhead and non-drained rounds pay nothing at all.
    ///
    /// `predicate` must be the same liveness test the caller passes to
    /// [`Worklist::begin_round`].  A round whose queue is non-empty never
    /// evaluates it.  Non-queue modes ignore it and behave exactly like
    /// [`Worklist::for_each_active`].
    pub fn for_each_active_refill(
        &mut self,
        name: &'static str,
        f: impl Fn(&ThreadCtx, usize, &ActiveView<'_>) -> SlotAction + Sync,
        predicate: impl Fn(usize) -> bool + Sync,
    ) {
        self.for_each_active(name, f);
        if self.mode.is_queue() && self.tail.get(0) == 0 {
            self.fused_refill(&predicate);
        }
    }

    /// The fused drained-queue sweep: stamps and appends every live item for
    /// the next round, charged to the `refill` kernel name as a fused tail
    /// (no launch count, no launch overhead).  Racing pushes are harmless —
    /// the stamp dedupe makes a double append idempotent — so running the
    /// sweep when a push lands concurrently is merely redundant, never
    /// wrong.
    fn fused_refill(&mut self, predicate: &(impl Fn(usize) -> bool + Sync)) {
        let next = self.epoch + 1;
        let stamp = self.stamp_buf();
        let queue = self.queue_view();
        self.gpu.launch_fused(self.names.refill, self.domain, |ctx| {
            let v = ctx.global_id;
            ctx.add_work(1);
            if predicate(v) && stamp.get(v) != next {
                stamp.set(v, next);
                queue.push(ctx, v as u64);
            }
        });
        self.fused_refill_done = true;
    }

    /// Ends a slot-protocol round.  List modes swap the slot arrays (the
    /// paper's `A_c`/`A_p` exchange); the queue representation has nothing
    /// to do — the next round's queue was built during processing.
    pub fn end_round(&mut self) {
        self.round_open = false;
        if !self.mode.is_queue() {
            std::mem::swap(&mut self.current, &mut self.pending);
        }
    }

    /// The **in-loop round transition**: closes the previous round (when one
    /// is open) and opens the next in a single call — the `A_c`/`A_p` swap,
    /// the epoch bump, the resolve/stamp or compaction pass, the
    /// appended-queue takeover, and the drained/overflowed-queue rebuild
    /// fallback, per the representation.  Returns [`Worklist::begin_round`]'s
    /// verdict: `true` iff any item is active.
    ///
    /// This is the form a persistent round loop needs: under
    /// [`ExecMode::Persistent`](crate::ExecMode) the leader executes the
    /// whole transition between two barrier crossings (inside the
    /// [`VirtualGpu::resident`] scope), so its kernels are charged as
    /// resident rounds; the host-mediated paths — the queue-overflow rebuild
    /// and the host-staged parts of compaction — still run on the leader
    /// exactly as they would between launches.  Launch-per-round loops may
    /// use it too; it is equivalent to `end_round()` + `begin_round(..)`.
    pub fn round_transition(
        &mut self,
        predicate: impl Fn(usize) -> bool + Sync,
        compact: bool,
    ) -> bool {
        if self.round_open {
            self.end_round();
        }
        self.begin_round(predicate, compact)
    }

    // ------------------------------------------------------------------
    // Frontier protocol (level-synchronous BFS shape)
    // ------------------------------------------------------------------

    /// Launches `f` over the current frontier.  In
    /// [`WorklistMode::DenseStamp`] the launch covers the whole domain and
    /// the stamp array decides membership (the paper's dense BFS kernels);
    /// the other modes launch over the materialized frontier list.  `f`
    /// pushes next-level vertices through the [`FrontierView`].
    pub fn for_each_frontier(
        &self,
        name: &'static str,
        f: impl Fn(&ThreadCtx, usize, &FrontierView<'_>) + Sync,
    ) {
        let stamp = self.stamp_buf();
        let epoch = self.epoch;
        let view = FrontierView {
            mode: self.mode,
            stamp,
            epoch,
            nonempty: &self.nonempty,
            queue: self.mode.is_queue().then(|| self.queue_view()),
        };
        match self.mode {
            WorklistMode::DenseStamp => {
                self.gpu.launch(name, self.domain, |ctx| {
                    let v = ctx.global_id;
                    ctx.add_work(1);
                    if stamp.get(v) == epoch {
                        f(ctx, v, &view);
                    }
                });
            }
            WorklistMode::Compacted | WorklistMode::AtomicQueue | WorklistMode::BlockedQueue => {
                let current = self.current_buf();
                self.gpu.launch(name, self.len, |ctx| {
                    let i = ctx.global_id;
                    ctx.add_work(1);
                    let v = current.get(i);
                    // Narrow blocked rounds adopt their claimed blocks
                    // without stitching, so the frontier may carry holes.
                    if v == WL_EMPTY {
                        return;
                    }
                    f(ctx, v as usize, &view);
                });
            }
        }
    }

    /// Moves the frontier to the next level, returning `true` iff it is
    /// non-empty.  [`WorklistMode::Compacted`] materializes the new frontier
    /// from the stamps here; [`WorklistMode::AtomicQueue`] swaps in the
    /// appended queue (rebuilding from stamps after an overflow).
    pub fn advance_frontier(&mut self) -> bool {
        self.fresh_seed = false;
        self.fused_refill_done = false;
        self.epoch += 1;
        match self.mode {
            WorklistMode::DenseStamp => {
                let any = self.nonempty.get(0) != 0;
                self.nonempty.set(0, 0);
                any
            }
            WorklistMode::Compacted => {
                let any = self.nonempty.get(0) != 0;
                self.nonempty.set(0, 0);
                if any {
                    self.compact_from_stamps();
                } else {
                    self.len = 0;
                }
                self.len > 0
            }
            WorklistMode::AtomicQueue | WorklistMode::BlockedQueue => {
                self.take_appended_queue();
                self.len > 0
            }
        }
    }

    /// Swaps in the queue appended by the previous round (shared by both
    /// protocols): reads and resets the tail, and rebuilds the list from the
    /// current epoch's stamps when appends were dropped on overflow.  The
    /// caller has already advanced the epoch.
    fn take_appended_queue(&mut self) {
        if self.mode == WorklistMode::BlockedQueue {
            self.take_blocked_queue();
            return;
        }
        std::mem::swap(&mut self.current, &mut self.pending);
        let appended = self.tail.get(0) as usize;
        self.tail.set(0, 0);
        if self.overflow.get(0) != 0 {
            self.overflow.set(0, 0);
            // Dropped appends: the stamps still hold the full membership —
            // rebuild the list from them.
            self.compact_from_stamps();
            self.refilled = true;
        } else {
            self.len = appended.min(self.domain);
        }
    }

    /// Blocked-queue round handoff: the claimed blocks in `pending` hold the
    /// appended items interleaved with [`WL_EMPTY`] holes (partial blocks,
    /// abandoned cursors).  The *stitch* compacts them into a dense prefix
    /// of `current` with two fused tail passes over the claimed blocks only
    /// — never the domain — so its cost scales with the append volume:
    ///
    /// 1. each block compacts itself in place and reports its live count
    ///    (one cache-line read + write per block: 2 work units);
    /// 2. the host stages the per-block prefix offsets (like every D2D copy
    ///    in this simulator) and each block copies its dense front to its
    ///    offset in `current`.
    ///
    /// Unlike the per-item path, the buffers do **not** swap: `pending`
    /// stays the append target, which is safe precisely because blocked
    /// claims pre-fill with holes — stale slots from this round can never
    /// masquerade as next round's items.
    ///
    /// Rounds narrower than [`STITCH_THRESHOLD`] skip the stitch entirely
    /// and *adopt* the claimed blocks as-is (swapping the buffers like the
    /// per-item path): iteration already skips [`WL_EMPTY`] holes, and
    /// below one warp-issue quantum the two fused passes would cost more
    /// model time than the holes waste.  Only wide rounds — where the
    /// hole overhead compounds across issue rounds — pay for density.
    fn take_blocked_queue(&mut self) {
        let claimed = self.tail.get(0) as usize;
        self.tail.set(0, 0);
        if self.overflow.get(0) != 0 {
            self.overflow.set(0, 0);
            self.compact_from_stamps();
            self.refilled = true;
            return;
        }
        if claimed == 0 {
            self.len = 0;
            return;
        }
        let covered = claimed.min(self.domain);
        if covered <= STITCH_THRESHOLD {
            // Narrow round: adopt the blocks, holes and all.  The swap makes
            // the old `current` the next append target; blocked claims
            // pre-fill every claimed slot with `WL_EMPTY` before exposing
            // it, so whatever this round left there is never read as data.
            std::mem::swap(&mut self.current, &mut self.pending);
            self.len = covered;
            return;
        }
        let blocks = covered.div_ceil(QUEUE_BLOCK);
        let counts = self.gpu.scratch().acquire(blocks, 0);
        let pending = self.pending_buf();
        self.gpu.launch_fused(self.names.stitch, blocks, |ctx| {
            let b = ctx.global_id;
            let start = b * QUEUE_BLOCK;
            let end = (start + QUEUE_BLOCK).min(covered);
            ctx.add_work(2);
            let mut k = start;
            for i in start..end {
                let v = pending.get(i);
                if v != WL_EMPTY {
                    pending.set(k, v);
                    k += 1;
                }
            }
            counts.set(b, (k - start) as u64);
        });
        // Host-staged exclusive prefix over ≤ one word per block — the same
        // staging every D2D copy in this simulator goes through.  A device
        // prefix-sum ladder would cost more launches than it saves for the
        // handful of partially filled blocks a round produces.
        let host_counts = counts.to_vec();
        let offsets = self.gpu.scratch().acquire(blocks, 0);
        let mut total = 0u64;
        for (b, &c) in host_counts.iter().enumerate() {
            offsets.set(b, total);
            total += c;
        }
        let current = self.current_buf();
        self.gpu.launch_fused(self.names.stitch, blocks, |ctx| {
            let b = ctx.global_id;
            let start = b * QUEUE_BLOCK;
            let n = counts.get(b) as usize;
            let at = offsets.get(b) as usize;
            ctx.add_work(2);
            for i in 0..n {
                current.set(at + i, pending.get(start + i));
            }
        });
        self.len = total as usize;
    }

    // ------------------------------------------------------------------
    // Domain scan (the stampless G-PR-First shape)
    // ------------------------------------------------------------------

    /// One full-domain scan: every element gets a thread, `f` decides
    /// activity itself and calls [`DomainMarker::mark_active`] when it found
    /// work.  Returns `true` iff anything was marked.  This is the
    /// representation-independent shape of `G-PR-KRNL` (Algorithm 6), kept
    /// on the worklist so no engine owns a raw activity flag.
    pub fn scan_domain(
        &mut self,
        name: &'static str,
        f: impl Fn(&ThreadCtx, usize, &DomainMarker<'_>) + Sync,
    ) -> bool {
        self.nonempty.set(0, 0);
        let marker = DomainMarker { nonempty: &self.nonempty };
        self.gpu.launch(name, self.domain, |ctx| {
            ctx.add_work(1);
            f(ctx, ctx.global_id, &marker);
        });
        self.nonempty.get(0) != 0
    }

    // ------------------------------------------------------------------
    // Internal passes
    // ------------------------------------------------------------------

    /// `G-PR-INITKRNL` (Algorithm 8): resolve each slot's retry memory,
    /// stamp the live items with the current epoch, raise the activity flag.
    fn init_slots(&self, predicate: &(impl Fn(usize) -> bool + Sync)) {
        let current = self.current_buf();
        let pending = self.pending_buf();
        let stamp = self.stamp_buf();
        let nonempty = &*self.nonempty;
        let epoch = self.epoch;
        self.gpu.launch(self.names.init, self.len, |ctx| {
            let i = ctx.global_id;
            ctx.add_work(1);
            let prev = pending.get(i);
            if prev != WL_EMPTY && predicate(prev as usize) {
                // The processing recorded in this slot was rolled back by a
                // benign race (or never happened): retry it.
                current.set(i, prev);
            }
            let v = current.get(i);
            if v != WL_EMPTY {
                stamp.set(v as usize, epoch);
                nonempty.set(0, 1);
            }
        });
    }

    /// `G-PR-SHRKRNL`: resolve (count) pass, device prefix sum, scatter into
    /// private regions.  Rebuilds the slot list to its live entries.
    fn compact_slots(&mut self, predicate: &(impl Fn(usize) -> bool + Sync)) {
        let len = self.len;
        let resolved = self.gpu.scratch().acquire(len, WL_EMPTY);
        let counts = self.gpu.scratch().acquire(len, 0);
        {
            let current = self.current_buf();
            let pending = self.pending_buf();
            self.gpu.launch(self.names.compact_count, len, |ctx| {
                let i = ctx.global_id;
                ctx.add_work(1);
                let prev = pending.get(i);
                let mut v = current.get(i);
                if prev != WL_EMPTY && predicate(prev as usize) {
                    v = prev;
                }
                // Only genuinely live items survive the compaction.
                if v != WL_EMPTY && predicate(v as usize) {
                    resolved.set(i, v);
                    counts.set(i, 1);
                }
            });
        }
        let (offsets, total) = primitives::exclusive_prefix_sum(self.gpu, &counts);
        let total = total as usize;
        if total > 0 {
            let current = self.current_buf();
            let stamp = self.stamp_buf();
            let nonempty = &*self.nonempty;
            let epoch = self.epoch;
            self.gpu.launch(self.names.compact_scatter, len, |ctx| {
                let i = ctx.global_id;
                ctx.add_work(1);
                let v = resolved.get(i);
                if v != WL_EMPTY {
                    // offsets[i] < i for every surviving slot, so the
                    // scatter never overwrites a slot it still has to read —
                    // `resolved` is the only input.
                    current.set(offsets.get(i) as usize, v);
                    stamp.set(v as usize, epoch);
                    nonempty.set(0, 1);
                }
            });
        }
        // Both arrays hold the compacted list, exactly as after a seed
        // (device-to-device copy, staged through the host like any D2D in
        // this simulator).
        for i in 0..total {
            self.pending_buf().set(i, self.current_buf().get(i));
        }
        self.len = total;
    }

    /// Rebuilds the current list from the stamp array (`stamp == epoch`),
    /// used by the compacted frontier and by queue-overflow recovery.
    fn compact_from_stamps(&mut self) {
        let epoch = self.epoch;
        let stamp = self.stamp_buf();
        self.len = self.gather_into_current(move |v| stamp.get(v) == epoch, false);
    }

    /// Rebuilds the current list from the engine predicate, re-stamping the
    /// survivors (queue-drain recovery / termination check).
    fn refill_from_predicate(&mut self, predicate: &(impl Fn(usize) -> bool + Sync)) {
        self.len = self.gather_into_current(predicate, true);
    }

    /// Count / prefix-sum / scatter over the whole domain into `current`;
    /// returns the number of gathered items.
    fn gather_into_current(&self, select: impl Fn(usize) -> bool + Sync, restamp: bool) -> usize {
        let counts = self.gpu.scratch().acquire(self.domain, 0);
        self.gpu.launch(self.names.refill, self.domain, |ctx| {
            let v = ctx.global_id;
            ctx.add_work(1);
            if select(v) {
                counts.set(v, 1);
            }
        });
        let (offsets, total) = primitives::exclusive_prefix_sum(self.gpu, &counts);
        let total = total as usize;
        if total > 0 {
            let current = self.current_buf();
            let stamp = self.stamp_buf();
            let epoch = self.epoch;
            self.gpu.launch(self.names.refill, self.domain, |ctx| {
                let v = ctx.global_id;
                ctx.add_work(1);
                if counts.get(v) == 1 {
                    current.set(offsets.get(v) as usize, v as u64);
                    if restamp {
                        stamp.set(v, epoch);
                    }
                }
            });
        }
        total
    }
}

impl fmt::Debug for Worklist<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worklist")
            .field("mode", &self.mode)
            .field("domain", &self.domain)
            .field("len", &self.len)
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VirtualGpu;

    const NAMES: WorklistKernels = WorklistKernels {
        init: "wl_init",
        compact_count: "wl_count",
        compact_scatter: "wl_scatter",
        refill: "wl_refill",
        stitch: "wl_stitch",
    };

    const QUEUE_MODES: [WorklistMode; 2] = [WorklistMode::AtomicQueue, WorklistMode::BlockedQueue];

    fn gpus() -> Vec<VirtualGpu> {
        vec![VirtualGpu::sequential(), VirtualGpu::parallel()]
    }

    /// Reference model: items 0..n start live; processing item v kills it
    /// and, if v is even, schedules v/2 + n/2 … here we use a simple chain:
    /// processing v schedules v-1 while v > 0 (push), so the worklist must
    /// walk every chain down to 0 regardless of representation.
    fn run_chain(mode: WorklistMode, gpu: &VirtualGpu, n: usize) -> u64 {
        let live = DeviceBuffer::<u64>::new(n, 1);
        let processed = DeviceBuffer::<u64>::new(1, 0);
        let mut wl = Worklist::new(gpu, mode, n, NAMES);
        wl.seed([n - 1]);
        let mut rounds = 0;
        while wl.begin_round(|v| live.get(v) != 0, rounds % 3 == 0) {
            wl.for_each_active("wl_process", |_ctx, v, _view| {
                live.set(v, 0);
                processed.fetch_add(0, 1);
                if v > 0 {
                    SlotAction::Push(v - 1)
                } else {
                    SlotAction::Retire
                }
            });
            wl.end_round();
            rounds += 1;
            assert!(rounds < 10 * n as u64 + 16, "worklist failed to converge");
        }
        processed.get(0)
    }

    #[test]
    fn slot_protocol_drains_chains_in_every_mode() {
        for gpu in gpus() {
            for mode in WorklistMode::all() {
                assert_eq!(run_chain(mode, &gpu, 64), 64, "{mode}");
            }
        }
    }

    /// `run_chain` restructured on the in-loop transition: one
    /// `round_transition` at the top of the loop instead of split
    /// `begin_round`/`end_round` calls.
    fn run_chain_transition(mode: WorklistMode, gpu: &VirtualGpu, n: usize) -> (u64, u64) {
        let live = DeviceBuffer::<u64>::new(n, 1);
        let processed = DeviceBuffer::<u64>::new(1, 0);
        let mut wl = Worklist::new(gpu, mode, n, NAMES);
        wl.seed([n - 1]);
        let mut rounds = 0;
        while wl.round_transition(|v| live.get(v) != 0, rounds % 3 == 0) {
            wl.for_each_active("wl_process", |_ctx, v, _view| {
                live.set(v, 0);
                processed.fetch_add(0, 1);
                if v > 0 {
                    SlotAction::Push(v - 1)
                } else {
                    SlotAction::Retire
                }
            });
            rounds += 1;
            assert!(rounds < 10 * n as u64 + 16, "worklist failed to converge");
        }
        (processed.get(0), rounds)
    }

    #[test]
    fn round_transition_is_equivalent_to_split_begin_end() {
        for mode in WorklistMode::all() {
            let gpu = VirtualGpu::sequential();
            let (processed, rounds) = run_chain_transition(mode, &gpu, 64);
            assert_eq!(processed, 64, "{mode}");
            // Same rounds as the split protocol walking the same chain.
            let split_gpu = VirtualGpu::sequential();
            assert_eq!(run_chain(mode, &split_gpu, 64), 64, "{mode}");
            let split_rounds = split_gpu.stats().launches_of("wl_process");
            assert_eq!(rounds, split_rounds, "{mode}");
        }
    }

    #[test]
    fn deferred_items_are_retried() {
        for mode in WorklistMode::all() {
            let gpu = VirtualGpu::sequential();
            let tries = DeviceBuffer::<u64>::new(4, 0);
            let mut wl = Worklist::new(&gpu, mode, 4, NAMES);
            wl.seed([0, 1, 2, 3]);
            let mut rounds = 0u64;
            while wl.begin_round(|v| tries.get(v) < 3, false) {
                wl.for_each_active("wl_defer", |_ctx, v, _view| {
                    tries.set(v, tries.get(v) + 1);
                    if tries.get(v) < 3 {
                        SlotAction::Defer
                    } else {
                        SlotAction::Retire
                    }
                });
                wl.end_round();
                rounds += 1;
                assert!(rounds < 64);
            }
            assert_eq!(tries.to_vec(), vec![3; 4], "{mode}");
        }
    }

    #[test]
    fn finish_respects_the_predicate_retry_memory() {
        // An item that Finishes but stays live by the predicate must be
        // retried (the rolled-back-push case of G-PR-INITKRNL).
        for mode in WorklistMode::all() {
            let gpu = VirtualGpu::sequential();
            let hits = DeviceBuffer::<u64>::new(1, 0);
            let mut wl = Worklist::new(&gpu, mode, 2, NAMES);
            wl.seed([1]);
            let mut rounds = 0;
            while wl.begin_round(|v| v == 1 && hits.get(0) < 4, false) {
                wl.for_each_active("wl_finish", |_ctx, _v, _view| {
                    hits.fetch_add(0, 1);
                    SlotAction::Finish
                });
                wl.end_round();
                rounds += 1;
                assert!(rounds < 32);
            }
            assert_eq!(hits.get(0), 4, "{mode}");
        }
    }

    #[test]
    fn compaction_shrinks_the_list_and_counts() {
        let gpu = VirtualGpu::sequential();
        let n = 1024;
        let live = DeviceBuffer::<u64>::new(n, 1);
        // Kill three quarters of the items up front.
        for v in 0..n {
            if v % 4 != 0 {
                live.set(v, 0);
            }
        }
        let mut wl = Worklist::new(&gpu, WorklistMode::Compacted, n, NAMES);
        wl.seed(0..n);
        assert_eq!(wl.len(), n);
        assert!(wl.begin_round(|v| live.get(v) != 0, true));
        assert!(wl.compacted_last_round());
        assert_eq!(wl.len(), n / 4);
        assert!(gpu.stats().launches_of("wl_count") >= 1);
        assert!(gpu.stats().launches_of("wl_scatter") >= 1);
        // The surviving items are exactly the live ones.
        let seen = DeviceBuffer::<u64>::new(n, 0);
        wl.for_each_active("wl_collect", |_ctx, v, _view| {
            assert_eq!(v % 4, 0);
            seen.set(v, 1);
            SlotAction::Retire
        });
        wl.end_round();
        let expected: Vec<u64> = (0..n).map(|v| u64::from(v % 4 == 0)).collect();
        assert_eq!(seen.to_vec(), expected);
    }

    #[test]
    fn dense_mode_never_compacts() {
        let gpu = VirtualGpu::sequential();
        let mut wl = Worklist::new(&gpu, WorklistMode::DenseStamp, 64, NAMES);
        wl.seed(0..64);
        assert!(wl.begin_round(|_| true, true));
        assert!(!wl.compacted_last_round());
        assert_eq!(wl.len(), 64);
        assert_eq!(gpu.stats().launches_of("wl_count"), 0);
    }

    #[test]
    fn queue_modes_launch_no_init_kernel() {
        for mode in QUEUE_MODES {
            let gpu = VirtualGpu::sequential();
            assert_eq!(run_chain(mode, &gpu, 128), 128, "{mode}");
            let stats = gpu.stats();
            assert_eq!(stats.launches_of("wl_init"), 0, "{mode}");
            assert_eq!(stats.launches_of("wl_count"), 0, "{mode}");
            // The termination check ran at least once.
            assert!(stats.launches_of("wl_refill") >= 1, "{mode}");
        }
    }

    #[test]
    fn blocked_stitch_runs_fused_and_appends_fewer_tail_rmws() {
        // Same fan-out workload (binary-tree BFS, wide rounds pushing many
        // items per launch) in both queue representations: the blocked one
        // must report strictly fewer hot-word RMWs on the push kernel while
        // the stitch never counts as a launch.  The tree is deep enough
        // that its widest levels exceed STITCH_THRESHOLD, so the dense
        // stitch genuinely runs (narrower levels adopt their blocks
        // without it).
        let n = 4096usize;
        let hot_rmws: Vec<u64> = QUEUE_MODES
            .iter()
            .map(|&mode| {
                let gpu = VirtualGpu::sequential();
                let reached = DeviceBuffer::<u64>::new(n, 0);
                reached.set(0, 1);
                let mut wl = Worklist::new(&gpu, mode, n, NAMES);
                wl.seed([0]);
                loop {
                    wl.for_each_frontier("wl_fanout", |ctx, v, frontier| {
                        ctx.add_work(1);
                        for w in [2 * v + 1, 2 * v + 2] {
                            if w < n && reached.get(w) == 0 {
                                reached.set(w, 1);
                                frontier.push(ctx, w);
                            }
                        }
                    });
                    if !wl.advance_frontier() {
                        break;
                    }
                }
                assert_eq!(reached.to_vec().iter().sum::<u64>(), n as u64, "{mode}");
                let stats = gpu.stats();
                if mode == WorklistMode::BlockedQueue {
                    assert_eq!(stats.launches_of("wl_stitch"), 0);
                    assert!(stats.fused_tails_of("wl_stitch") >= 1);
                } else {
                    assert_eq!(stats.fused_tails_of("wl_stitch"), 0);
                }
                stats.kernels["wl_fanout"].hot_word_atomics
            })
            .collect();
        assert!(
            hot_rmws[1] < hot_rmws[0],
            "blocked hot-word RMWs {} should undercut per-item {}",
            hot_rmws[1],
            hot_rmws[0]
        );
    }

    #[test]
    fn blocked_narrow_rounds_adopt_blocks_without_stitching() {
        // A chain drain pushes one item per round — far under
        // STITCH_THRESHOLD — so the blocked queue must never stitch
        // (neither as a launch nor as a fused tail) and still drain the
        // whole chain through its hole-skipping frontier.
        let gpu = VirtualGpu::sequential();
        let n = 64;
        assert_eq!(run_chain(WorklistMode::BlockedQueue, &gpu, n), n as u64);
        let stats = gpu.stats();
        assert_eq!(stats.launches_of("wl_stitch"), 0);
        assert_eq!(stats.fused_tails_of("wl_stitch"), 0);
    }

    /// Chain drain driven through the fused-refill entry point.
    fn run_chain_fused(mode: WorklistMode, gpu: &VirtualGpu, n: usize) -> u64 {
        let live = DeviceBuffer::<u64>::new(n, 1);
        let processed = DeviceBuffer::<u64>::new(1, 0);
        let mut wl = Worklist::new(gpu, mode, n, NAMES);
        wl.seed([n - 1]);
        let mut rounds = 0;
        while wl.begin_round(|v| live.get(v) != 0, false) {
            wl.for_each_active_refill(
                "wl_process",
                |_ctx, v, _view| {
                    live.set(v, 0);
                    processed.fetch_add(0, 1);
                    if v > 0 {
                        SlotAction::Push(v - 1)
                    } else {
                        SlotAction::Retire
                    }
                },
                |v| live.get(v) != 0,
            );
            wl.end_round();
            rounds += 1;
            assert!(rounds < 10 * n as u64 + 16, "worklist failed to converge");
        }
        processed.get(0)
    }

    #[test]
    fn fused_refill_removes_the_drained_round_launch() {
        for mode in QUEUE_MODES {
            for gpu in gpus() {
                assert_eq!(run_chain_fused(mode, &gpu, 128), 128, "{mode}");
                let stats = gpu.stats();
                // The drained-queue predicate sweep ran fused into the final
                // round's kernel tail: zero refill launches, at least one
                // fused tail.
                assert_eq!(stats.launches_of("wl_refill"), 0, "{mode}");
                assert!(stats.fused_tails_of("wl_refill") >= 1, "{mode}");
            }
        }
    }

    #[test]
    fn fused_refill_recovers_items_like_the_launched_refill() {
        // The rescue scenario of `queue_refill_recovers_items_the_queue_lost`
        // driven through the fused path: a drained queue with a live
        // predicate item must still find it, without a refill launch.
        for mode in QUEUE_MODES {
            let gpu = VirtualGpu::sequential();
            let found = DeviceBuffer::<u64>::new(1, 0);
            let mut wl = Worklist::new(&gpu, mode, 16, NAMES);
            wl.seed([3]);
            let mut rounds = 0;
            while wl.begin_round(|v| v == 7 && found.get(0) == 0, false) {
                wl.for_each_active_refill(
                    "wl_rescue",
                    |_ctx, v, _view| {
                        if v == 7 {
                            found.set(0, 1);
                        }
                        SlotAction::Finish
                    },
                    |v| v == 7 && found.get(0) == 0,
                );
                rounds += 1;
                assert!(rounds < 16, "{mode}");
            }
            assert_eq!(found.get(0), 1, "{mode}");
            assert_eq!(gpu.stats().launches_of("wl_refill"), 0, "{mode}");
        }
    }

    #[test]
    fn blocked_claims_past_capacity_stitch_back_dense() {
        // Block rounding claims past the capacity on a tiny domain
        // (ceil(12/8)*8 = 16 > 12); as long as no push *lands* past it, the
        // stitch alone recovers the dense list.
        let gpu = VirtualGpu::sequential();
        let n = 12;
        let mut wl = Worklist::new(&gpu, WorklistMode::BlockedQueue, n, NAMES);
        wl.seed(0..n);
        assert!(wl.begin_round(|_| true, false));
        wl.for_each_active("wl_push", |_ctx, v, _view| SlotAction::Push((v + 1) % n));
        assert!(wl.begin_round(|_| true, false));
        assert_eq!(wl.len(), n);
        let seen = DeviceBuffer::<u64>::new(n, 0);
        wl.for_each_active("wl_collect", |_ctx, v, _view| {
            seen.set(v, 1);
            SlotAction::Retire
        });
        assert_eq!(seen.to_vec(), vec![1; n]);
    }

    #[test]
    fn blocked_overflow_rebuilds_from_stamps() {
        // Mirror of `queue_overflow_rebuilds_from_stamps` for the blocked
        // representation: with the overflow flag raised, the stamps must
        // reconstruct the full membership no matter what the blocks hold.
        let gpu = VirtualGpu::sequential();
        let mut wl = Worklist::new(&gpu, WorklistMode::BlockedQueue, 16, NAMES);
        wl.seed([0]);
        assert!(wl.begin_round(|_| true, false));
        wl.for_each_active("wl_push", |ctx, _v, view| {
            for w in 1..5usize {
                view.queue_push(ctx, w);
            }
            SlotAction::Push(5)
        });
        wl.overflow.set(0, 1);
        assert!(wl.begin_round(|_| false, false));
        assert!(wl.refilled_last_round());
        assert_eq!(wl.len(), 5);
        let got = DeviceBuffer::<u64>::new(16, 0);
        wl.for_each_active("wl_collect", |_ctx, v, _view| {
            got.set(v, 1);
            SlotAction::Retire
        });
        let mut expected = vec![0u64; 16];
        expected[1..6].fill(1);
        assert_eq!(got.to_vec(), expected);
    }

    #[test]
    fn queue_refill_recovers_items_the_queue_lost() {
        // Simulate a lost racy push: the queue drains while the predicate
        // still reports an item live — begin_round must refill and find it.
        let gpu = VirtualGpu::sequential();
        let rescue_rounds = DeviceBuffer::<u64>::new(1, 0);
        let mut wl = Worklist::new(&gpu, WorklistMode::AtomicQueue, 16, NAMES);
        wl.seed([3]);
        let mut processed = Vec::new();
        while wl.begin_round(|v| v == 7 && rescue_rounds.get(0) == 0, false) {
            if wl.refilled_last_round() {
                rescue_rounds.set(0, 1);
            }
            wl.for_each_active("wl_rescue", |_ctx, v, _view| {
                let _ = v;
                SlotAction::Finish
            });
            processed.push(wl.len());
        }
        // Item 3 (seeded) ran once; item 7 was only reachable through the
        // predicate refill.
        assert_eq!(rescue_rounds.get(0), 1);
        assert_eq!(processed, vec![1, 1]);
    }

    #[test]
    fn queue_overflow_rebuilds_from_stamps() {
        let gpu = VirtualGpu::sequential();
        let mut wl = Worklist::new(&gpu, WorklistMode::AtomicQueue, 8, NAMES);
        wl.seed([0]);
        assert!(wl.begin_round(|_| true, false));
        // Push the full next frontier through the slot action, then corrupt
        // the tail to look overflowed: the stamps must reconstruct it.
        wl.for_each_active("wl_push", |ctx, _v, view| {
            for w in 1..5usize {
                view.queue_push(ctx, w);
            }
            SlotAction::Push(5)
        });
        wl.overflow.set(0, 1);
        assert!(wl.begin_round(|_| false, false));
        assert!(wl.refilled_last_round());
        assert_eq!(wl.len(), 5);
        let got = DeviceBuffer::<u64>::new(8, 0);
        wl.for_each_active("wl_collect", |_ctx, v, _view| {
            got.set(v, 1);
            SlotAction::Retire
        });
        assert_eq!(got.to_vec(), vec![0, 1, 1, 1, 1, 1, 0, 0]);
    }

    /// BFS over a path graph 0-1-2-…-(n-1): every mode must visit each
    /// vertex exactly once, level by level.
    fn run_bfs(mode: WorklistMode, gpu: &VirtualGpu, n: usize) -> Vec<u64> {
        let dist = DeviceBuffer::<u64>::new(n, u64::MAX);
        dist.set(0, 0);
        let mut wl = Worklist::new(gpu, mode, n, NAMES);
        wl.seed([0]);
        let mut level = 0u64;
        loop {
            wl.for_each_frontier("wl_bfs", |ctx, v, frontier| {
                ctx.add_work(1);
                for w in [v.wrapping_sub(1), v + 1] {
                    if w < n && dist.get(w) == u64::MAX {
                        dist.set(w, level + 1);
                        frontier.push(ctx, w);
                    }
                }
            });
            if !wl.advance_frontier() {
                break;
            }
            level += 1;
        }
        dist.to_vec()
    }

    #[test]
    fn frontier_protocol_levels_agree_across_modes() {
        let expected: Vec<u64> = (0..200u64).collect();
        for gpu in gpus() {
            for mode in WorklistMode::all() {
                assert_eq!(run_bfs(mode, &gpu, 200), expected, "{mode}");
            }
        }
    }

    #[test]
    fn dense_frontier_scans_domain_but_compacted_and_queue_do_not() {
        let n = 512;
        let per_mode: Vec<u64> = WorklistMode::all()
            .into_iter()
            .map(|mode| {
                let gpu = VirtualGpu::sequential();
                run_bfs(mode, &gpu, n);
                gpu.stats().kernels["wl_bfs"].total_threads
            })
            .collect();
        // Dense launches n threads per level; the materialized frontiers
        // launch exactly one thread per frontier vertex.  The blocked
        // variant's narrow rounds adopt whole claimed blocks (holes
        // included), so its launches are block-rounded — at most one
        // cache-line block per visit, still nowhere near a domain scan.
        assert!(per_mode[0] > per_mode[1], "dense {} vs compacted {}", per_mode[0], per_mode[1]);
        assert!(per_mode[0] > per_mode[2], "dense {} vs queue {}", per_mode[0], per_mode[2]);
        assert!(per_mode[0] > per_mode[3], "dense {} vs blocked {}", per_mode[0], per_mode[3]);
        assert_eq!(per_mode[2], n as u64, "queue launches one thread per visit");
        assert!(
            per_mode[3] >= n as u64 && per_mode[3] <= (n * QUEUE_BLOCK) as u64,
            "blocked launches between one thread and one block per visit, got {}",
            per_mode[3]
        );
    }

    #[test]
    fn reseeding_never_collides_with_stale_stamps() {
        for mode in WorklistMode::all() {
            let gpu = VirtualGpu::sequential();
            let mut wl = Worklist::new(&gpu, mode, 32, NAMES);
            for _round in 0..3 {
                let visited = DeviceBuffer::<u64>::new(32, 0);
                wl.seed([4]);
                loop {
                    wl.for_each_frontier("wl_bfs", |ctx, v, frontier| {
                        visited.set(v, visited.get(v) + 1);
                        if v + 1 < 8 {
                            frontier.push(ctx, v + 1);
                        }
                    });
                    if !wl.advance_frontier() {
                        break;
                    }
                }
                let host = visited.to_vec();
                for (v, &count) in host.iter().enumerate() {
                    let expected = u64::from((4..8).contains(&v));
                    assert_eq!(count, expected, "{mode}: vertex {v} visited {count}x");
                }
            }
        }
    }

    #[test]
    fn reseed_ignores_pushes_that_were_never_consumed() {
        // A BFS that breaks out early (e.g. G-HK finding a free row) leaves
        // `epoch + 1` stamps behind without ever advancing; the next seed
        // must not mistake them for freshly seeded items.
        for mode in WorklistMode::all() {
            let gpu = VirtualGpu::sequential();
            let mut wl = Worklist::new(&gpu, mode, 16, NAMES);
            wl.seed([0]);
            wl.for_each_frontier("wl_bfs", |ctx, _v, frontier| frontier.push(ctx, 5));
            // No advance_frontier: the push to 5 is abandoned by the re-seed.
            wl.seed([1]);
            let visited = DeviceBuffer::<u64>::new(16, 0);
            wl.for_each_frontier("wl_bfs", |_ctx, v, _frontier| visited.set(v, 1));
            let host = visited.to_vec();
            for (v, &count) in host.iter().enumerate() {
                assert_eq!(count, u64::from(v == 1), "{mode}: vertex {v} visited {count}x");
            }
        }
    }

    #[test]
    fn seed_by_predicate_selects_the_same_frontier_as_host_seeding() {
        for mode in WorklistMode::all() {
            let gpu = VirtualGpu::sequential();
            let n = 300;
            let live = DeviceBuffer::<u64>::new(n, 0);
            for v in (0..n).step_by(7) {
                live.set(v, 1);
            }
            let mut wl = Worklist::new(&gpu, mode, n, NAMES);
            wl.seed_by_predicate(|v| live.get(v) != 0);
            let visited = DeviceBuffer::<u64>::new(n, 0);
            wl.for_each_frontier("wl_bfs", |_ctx, v, _frontier| visited.set(v, 1));
            let host = visited.to_vec();
            for (v, &count) in host.iter().enumerate() {
                assert_eq!(count, u64::from(v % 7 == 0), "{mode}: vertex {v}");
            }
            // The gather was charged to the device model, not done host-side.
            assert!(gpu.stats().launches_of("wl_refill") >= 1, "{mode}");
        }
    }

    #[test]
    fn seed_slots_by_predicate_materializes_the_list_in_every_mode() {
        for mode in WorklistMode::all() {
            let gpu = VirtualGpu::sequential();
            let n = 200;
            let live = DeviceBuffer::<u64>::new(n, 0);
            for v in (0..n).step_by(5) {
                live.set(v, 1);
            }
            let mut wl = Worklist::new(&gpu, mode, n, NAMES);
            wl.seed_slots_by_predicate(|v| live.get(v) != 0);
            // Unlike the frontier-style seeding, the slot list has a real
            // host-visible length in every mode (DenseStamp included), so
            // slot-protocol drivers can size their launches and detect
            // emptiness.
            assert_eq!(wl.len(), n.div_ceil(5), "{mode}");
            let visited = DeviceBuffer::<u64>::new(n, 0);
            let any = wl.begin_round(|v| live.get(v) != 0, false);
            assert!(any, "{mode}");
            wl.for_each_active("wl_push", |_ctx, v, _view| {
                visited.set(v, visited.get(v) + 1);
                SlotAction::Finish
            });
            let host = visited.to_vec();
            for (v, &count) in host.iter().enumerate() {
                assert_eq!(count, u64::from(v % 5 == 0), "{mode}: vertex {v} visited {count}x");
            }
            assert!(gpu.stats().launches_of("wl_refill") >= 1, "{mode}");
        }
    }

    #[test]
    fn scan_domain_only_touches_the_flag_word() {
        // The First-variant shape: no stamps, no lists — a worklist used
        // purely for domain scans must not materialize the domain buffers.
        let gpu = VirtualGpu::sequential();
        let before = gpu.scratch().stats();
        let mut wl = Worklist::new(&gpu, WorklistMode::DenseStamp, 1 << 20, NAMES);
        for _ in 0..3 {
            wl.scan_domain("wl_scan", |_ctx, _v, _marker| {});
        }
        drop(wl);
        let after = gpu.scratch().stats();
        // Only the three one-word buffers (tail, nonempty, overflow) were
        // acquired; the megaword domain arrays never were.
        assert_eq!(after.retained_words - before.retained_words, 3);
    }

    #[test]
    fn scan_domain_reports_activity() {
        let gpu = VirtualGpu::sequential();
        let mut wl = Worklist::new(&gpu, WorklistMode::DenseStamp, 100, NAMES);
        let hits = DeviceBuffer::<u64>::new(100, 0);
        let any = wl.scan_domain("wl_scan", |_ctx, v, marker| {
            hits.set(v, 1);
            if v == 42 {
                marker.mark_active();
            }
        });
        assert!(any);
        assert_eq!(hits.to_vec(), vec![1; 100]);
        let none = wl.scan_domain("wl_scan", |_ctx, _v, _marker| {});
        assert!(!none);
    }

    #[test]
    fn worklists_draw_storage_from_the_scratch_arena() {
        let gpu = VirtualGpu::sequential();
        run_chain(WorklistMode::Compacted, &gpu, 256);
        let primed = gpu.scratch().stats();
        run_chain(WorklistMode::Compacted, &gpu, 256);
        let after = gpu.scratch().stats();
        // A warm repeat allocates nothing new.
        assert_eq!(after.allocations, primed.allocations);
        assert!(after.reuses > primed.reuses);
    }

    #[test]
    fn empty_domain_and_empty_seed_are_fine() {
        for mode in WorklistMode::all() {
            let gpu = VirtualGpu::sequential();
            let mut wl = Worklist::new(&gpu, mode, 0, NAMES);
            wl.seed(std::iter::empty());
            assert!(!wl.begin_round(|_| true, true), "{mode}");
            let mut wl = Worklist::new(&gpu, mode, 8, NAMES);
            wl.seed(std::iter::empty());
            assert!(!wl.begin_round(|_| false, false), "{mode}");
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in WorklistMode::all() {
            assert_eq!(mode.label().parse::<WorklistMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.label());
        }
        let err = "stack".parse::<WorklistMode>().unwrap_err();
        assert!(err.to_string().contains("stack"));
        assert!(err.to_string().contains("queue"));
    }
}
