//! Cooperative stop checks for round-structured device loops.
//!
//! Every frontier-driven engine built on the [`crate::worklist::Worklist`]
//! advances in bulk-synchronous *rounds*: `begin_round` / `for_each_active`
//! / `end_round`, or `for_each_frontier` / `advance_frontier`.  The host
//! regains control between rounds, which makes the round boundary the
//! natural preemption point for cancellation and deadlines — a kernel never
//! has to be interrupted mid-flight, exactly like a real GPU where a launch
//! is uninterruptible but the host decides whether to launch the next one.
//!
//! [`StopCheck`] packages that decision: a cheap, cloneable predicate the
//! engine polls once per round.  The default ([`StopCheck::never`]) costs a
//! single `Option` discriminant test, so uncancellable solves pay nothing.

use std::fmt;
use std::sync::Arc;

/// A cooperative stop predicate polled by engines at worklist-round
/// granularity.
///
/// `StopCheck` is deliberately one-directional: once the predicate returns
/// `true` the engine is expected to wind down (finish the current round,
/// repair state, report partial progress) — the check carries no reason;
/// whoever installed it knows why it fired.
#[derive(Clone, Default)]
pub struct StopCheck {
    predicate: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
}

impl StopCheck {
    /// A check that never requests a stop (the default).  Polling it is a
    /// single `Option` discriminant test.
    pub const fn never() -> Self {
        Self { predicate: None }
    }

    /// Wraps an arbitrary predicate.  The predicate is polled once per
    /// worklist round, so it may do real work (clock reads, atomic loads),
    /// but it must be cheap relative to a kernel launch.
    pub fn from_fn(predicate: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        Self { predicate: Some(Arc::new(predicate)) }
    }

    /// `true` when this is [`StopCheck::never`] — engines may use this to
    /// skip per-round bookkeeping entirely.
    pub fn is_never(&self) -> bool {
        self.predicate.is_none()
    }

    /// Polls the predicate.  A `true` result is a request to stop at the
    /// next round boundary; `false` means keep going.
    pub fn should_stop(&self) -> bool {
        match &self.predicate {
            Some(p) => p(),
            None => false,
        }
    }
}

impl fmt::Debug for StopCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StopCheck").field("never", &self.is_never()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn never_never_stops() {
        let check = StopCheck::never();
        assert!(check.is_never());
        assert!(!check.should_stop());
        assert!(StopCheck::default().is_never());
    }

    #[test]
    fn predicate_is_polled_each_time() {
        let polls = Arc::new(AtomicU64::new(0));
        let p = Arc::clone(&polls);
        let check = StopCheck::from_fn(move || p.fetch_add(1, Ordering::Relaxed) >= 2);
        assert!(!check.is_never());
        assert!(!check.should_stop());
        assert!(!check.should_stop());
        assert!(check.should_stop());
        assert_eq!(polls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn clones_share_the_predicate() {
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let check = StopCheck::from_fn(move || f.load(Ordering::Relaxed));
        let clone = check.clone();
        assert!(!clone.should_stop());
        flag.store(true, Ordering::Relaxed);
        assert!(check.should_stop());
        assert!(clone.should_stop());
    }
}
