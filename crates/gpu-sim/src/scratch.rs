//! A device-resident scratch-buffer arena.
//!
//! The multi-pass device primitives ([`crate::primitives`]) need short-lived
//! `u64` working buffers — block partials for the reductions, block totals
//! and offsets for the scan.  Allocating fresh [`DeviceBuffer`]s on every
//! call put a host allocation (and, before the fix, a full input copy) on a
//! path the paper's shrink kernel hits after every global relabeling.
//!
//! The arena keeps returned buffers on a free list and hands them back out
//! through the same [`DeviceBuffer::recycle`] machinery warm solver
//! workspaces use: an [`acquire`](ScratchArena::acquire) with a length that
//! matches a free buffer re-initializes that allocation in place; otherwise
//! a fresh buffer is allocated.  Buffers return to the arena when their
//! [`ScratchBuffer`] guard drops, up to a retained-size cap.

use crate::buffer::DeviceBuffer;
use parking_lot::Mutex;
use std::ops::Deref;

/// Upper bound on the words kept alive on the free list (4 Mi words ≈ 32 MB
/// of `u64` cells); buffers released beyond the cap are simply dropped.
const MAX_RETAINED_WORDS: usize = 1 << 22;

/// Counters describing arena behaviour; see [`ScratchArena::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Total `acquire` calls.
    pub acquires: u64,
    /// Acquires served by re-initializing a free-listed allocation.
    pub reuses: u64,
    /// Acquires that had to allocate a fresh buffer.
    pub allocations: u64,
    /// Buffers currently parked on the free list.
    pub retained_buffers: usize,
    /// Total words currently parked on the free list.
    pub retained_words: usize,
}

#[derive(Default)]
struct ArenaInner {
    free: Vec<DeviceBuffer<u64>>,
    retained_words: usize,
    acquires: u64,
    reuses: u64,
    allocations: u64,
}

/// The per-device scratch arena; obtained via `VirtualGpu::scratch`.
pub struct ScratchArena {
    inner: Mutex<ArenaInner>,
}

impl ScratchArena {
    pub(crate) fn new() -> Self {
        Self { inner: Mutex::new(ArenaInner::default()) }
    }

    /// Returns a buffer of exactly `len` words, each set to `init`, reusing
    /// a free-listed allocation of the same length when one exists.  The
    /// buffer returns to the arena when the guard drops.
    pub fn acquire(&self, len: usize, init: u64) -> ScratchBuffer<'_> {
        let mut slot = {
            let mut inner = self.inner.lock();
            inner.acquires += 1;
            match inner.free.iter().position(|buf| buf.len() == len) {
                Some(i) => {
                    inner.reuses += 1;
                    inner.retained_words -= len;
                    Some(inner.free.swap_remove(i))
                }
                None => {
                    inner.allocations += 1;
                    None
                }
            }
        };
        // Outside the lock: `recycle` either re-fills the reused allocation
        // or allocates fresh, both O(len).
        DeviceBuffer::recycle(&mut slot, len, init);
        ScratchBuffer { buf: slot, arena: self }
    }

    /// A point-in-time snapshot of the arena counters.
    pub fn stats(&self) -> ScratchStats {
        let inner = self.inner.lock();
        ScratchStats {
            acquires: inner.acquires,
            reuses: inner.reuses,
            allocations: inner.allocations,
            retained_buffers: inner.free.len(),
            retained_words: inner.retained_words,
        }
    }

    /// Drops every free-listed buffer (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.free.clear();
        inner.retained_words = 0;
    }

    fn release(&self, buf: DeviceBuffer<u64>) {
        let mut inner = self.inner.lock();
        if inner.retained_words + buf.len() <= MAX_RETAINED_WORDS {
            inner.retained_words += buf.len();
            inner.free.push(buf);
        }
    }
}

impl std::fmt::Debug for ScratchArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ScratchArena")
            .field("retained_buffers", &stats.retained_buffers)
            .field("retained_words", &stats.retained_words)
            .finish()
    }
}

/// An arena-owned `u64` device buffer; dereferences to [`DeviceBuffer`] and
/// returns its allocation to the arena on drop.
pub struct ScratchBuffer<'a> {
    buf: Option<DeviceBuffer<u64>>,
    arena: &'a ScratchArena,
}

impl Deref for ScratchBuffer<'_> {
    type Target = DeviceBuffer<u64>;

    fn deref(&self) -> &DeviceBuffer<u64> {
        self.buf.as_ref().expect("scratch buffer present until drop")
    }
}

impl Drop for ScratchBuffer<'_> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.arena.release(buf);
        }
    }
}

impl std::fmt::Debug for ScratchBuffer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchBuffer").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_initializes_and_reuses_matching_lengths() {
        let arena = ScratchArena::new();
        {
            let buf = arena.acquire(64, 7);
            assert_eq!(buf.to_vec(), vec![7u64; 64]);
            buf.set(3, 99);
        }
        // Same length: the allocation comes back re-initialized.
        let buf = arena.acquire(64, 0);
        assert_eq!(buf.to_vec(), vec![0u64; 64]);
        let stats = arena.stats();
        assert_eq!(stats.acquires, 2);
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.allocations, 1);
    }

    #[test]
    fn different_lengths_allocate_fresh() {
        let arena = ScratchArena::new();
        drop(arena.acquire(100, 0));
        drop(arena.acquire(50, 0));
        let stats = arena.stats();
        assert_eq!(stats.allocations, 2);
        assert_eq!(stats.reuses, 0);
        assert_eq!(stats.retained_buffers, 2);
        assert_eq!(stats.retained_words, 150);
    }

    #[test]
    fn concurrent_guards_get_distinct_buffers() {
        let arena = ScratchArena::new();
        let a = arena.acquire(32, 1);
        let b = arena.acquire(32, 2);
        a.set(0, 10);
        assert_eq!(b.get(0), 2);
        drop(a);
        drop(b);
        assert_eq!(arena.stats().retained_buffers, 2);
        // Only one of them is reused per acquire.
        let c = arena.acquire(32, 0);
        assert_eq!(arena.stats().retained_buffers, 1);
        drop(c);
    }

    #[test]
    fn clear_empties_the_free_list() {
        let arena = ScratchArena::new();
        drop(arena.acquire(16, 0));
        arena.clear();
        let stats = arena.stats();
        assert_eq!(stats.retained_buffers, 0);
        assert_eq!(stats.retained_words, 0);
        drop(arena.acquire(16, 0));
        assert_eq!(arena.stats().allocations, 2);
    }

    #[test]
    fn zero_length_buffers_are_fine() {
        let arena = ScratchArena::new();
        let buf = arena.acquire(0, 0);
        assert!(buf.is_empty());
        drop(buf);
        let buf = arena.acquire(0, 0);
        assert_eq!(arena.stats().reuses, 1);
        drop(buf);
    }

    #[test]
    fn oversized_releases_are_dropped_not_retained() {
        let arena = ScratchArena::new();
        drop(arena.acquire(MAX_RETAINED_WORDS + 1, 0));
        assert_eq!(arena.stats().retained_buffers, 0);
    }
}
