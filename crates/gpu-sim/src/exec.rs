//! The persistent kernel executor: a worker pool spawned at most once per
//! device.
//!
//! The original engine spawned and joined fresh OS threads via
//! `std::thread::scope` on **every** kernel launch.  The paper's algorithms
//! are launch-heavy — a single solve issues hundreds to thousands of
//! launches, one per BFS level or push-relabel sweep — so in the launch-bound
//! regime the cost model is calibrated for, host thread churn dominated the
//! kernel work itself.  This module replaces that with:
//!
//! * **A long-lived pool.** Worker threads are spawned once (lazily, on the
//!   first launch large enough to go parallel) and parked on a [`Condvar`]
//!   between launches.  Dropping the pool signals shutdown and joins every
//!   worker.
//! * **Dynamic chunk scheduling.** Instead of statically splitting the grid
//!   into one equal range per worker, workers claim fixed-size chunks of grid
//!   indices from a shared atomic cursor.  Divergent kernels — the very
//!   reason `G-PR-SHRKRNL` exists — no longer leave most workers idle behind
//!   the one that drew the expensive range.
//! * **Lock-free work accounting.** Each worker accumulates its work counters
//!   locally and folds them into the launch's atomics once at the end; the
//!   launch barrier is the only synchronization on the hot path.
//! * **Panic containment.** A panicking kernel thread poisons the launch (the
//!   other workers stop claiming chunks), and the payload is re-raised on the
//!   launcher thread after the barrier.  The pool itself survives: the next
//!   launch on the same device runs normally.
//!
//! ## Why there is `unsafe` here (and why it is sound)
//!
//! Kernels borrow their captures (`&DeviceBuffer`, `&BipartiteCsr`, …) from
//! the launcher's stack, so the closure is not `'static` — but persistent
//! workers are `'static` threads.  `std::thread::scope` solves exactly this
//! problem with `unsafe` internally; a persistent pool has no safe standard
//! building block, so this module erases the kernel's lifetime behind a raw
//! trait-object pointer ([`KernelPtr`]).  Soundness rests on the launch
//! barrier: [`WorkerPool::run`] does not return until every worker has
//! finished the epoch and the dispatch slot holding the pointer has been
//! cleared, so no worker can observe the pointer after the borrow it was
//! created from ends.  This is the only `unsafe` in the crate; everything
//! else remains `#![deny(unsafe_code)]`-clean.

#![allow(unsafe_code)]

use crate::barrier::GlobalBarrier;
use crate::engine::{LaunchTotals, ThreadCtx};
use crate::primitives::QUEUE_BLOCK;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// The per-launch chunk size the pool actually schedules with.
///
/// Two constraints on top of the configured [`chunk_size`]:
///
/// * every worker participating in the launch barrier should get a share of
///   mid-sized grids, so the chunk is capped at `grid / workers` (rounded
///   up);
/// * chunks are aligned up to a multiple of [`QUEUE_BLOCK`] (one modelled
///   cache line) so a worker's chunk of grid indices and the queue-slot
///   blocks it claims tile the same granularity — in the cost model, an
///   executor chunk boundary never splits a blocked queue segment across
///   two workers' cache lines (no modelled false sharing between the chunk
///   cursor's claims and blocked appends).
///
/// Shared by [`WorkerPool::run`] and the engine's deterministic
/// chunk-cursor cost accounting, which must agree on the claim count.
///
/// [`chunk_size`]: crate::ExecutorConfig::chunk_size
pub(crate) fn effective_chunk(chunk: usize, grid: usize, workers: usize) -> usize {
    let chunk = chunk.max(1).min(grid.div_ceil(workers.max(1)).max(1));
    chunk.div_ceil(QUEUE_BLOCK) * QUEUE_BLOCK
}

/// Locks a `std::sync` mutex, ignoring poison: a kernel panic is contained
/// by `catch_unwind` and re-raised on the launcher, so a poisoned lock only
/// ever means "a previous launch failed", never "this data is torn".
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A kernel reference with its lifetime erased so the long-lived workers can
/// hold it for the duration of one launch.  See the module docs for the
/// soundness argument.
#[derive(Clone, Copy)]
struct KernelPtr(*const (dyn Fn(&ThreadCtx) + Sync));

impl KernelPtr {
    /// Erases the borrow's lifetime.  Callers must guarantee the pointer is
    /// never dereferenced after the borrow ends; `WorkerPool::run` does so
    /// with its end-of-launch barrier.
    fn erase(kernel: &(dyn Fn(&ThreadCtx) + Sync)) -> Self {
        // SAFETY: a reference-to-reference transmute that only widens the
        // lifetime; layout is identical, and the barrier argument above
        // bounds every actual use to the original lifetime.
        let kernel: &'static (dyn Fn(&ThreadCtx) + Sync) = unsafe { std::mem::transmute(kernel) };
        Self(kernel)
    }
}

// SAFETY: the pointee is `Sync` (shared calls from many threads are allowed),
// and the launch barrier in `WorkerPool::run` guarantees the pointer is never
// dereferenced outside the lifetime of the borrow it was created from.
unsafe impl Send for KernelPtr {}
// SAFETY: as above; `&KernelPtr` only ever exposes the `Sync` pointee.
unsafe impl Sync for KernelPtr {}

/// Shared per-launch state: the chunk cursor and the lock-free aggregation
/// targets the workers fold their local counters into.
struct LaunchBody {
    /// Total logical threads in the launch.
    grid: usize,
    /// Grid indices claimed per cursor increment.
    chunk: usize,
    /// Next unclaimed grid index.
    cursor: AtomicUsize,
    /// Work and atomic counters, folded in once per worker at launch end.
    totals: Mutex<LaunchTotals>,
    /// Set by the first panicking worker; stops further chunk claims.
    poisoned: AtomicBool,
    /// The first panic payload, re-raised on the launcher after the barrier.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// One dispatched launch: the erased kernel plus its shared state.
#[derive(Clone)]
struct Job {
    kernel: KernelPtr,
    body: Arc<LaunchBody>,
}

/// What one dispatch epoch asks the workers to do.
#[derive(Clone)]
enum Work {
    /// One ordinary launch: claim chunks, aggregate, hit the end barrier.
    Launch(Job),
    /// Enter a resident (persistent) loop: stay in
    /// [`resident_worker_loop`] executing barrier-separated rounds until
    /// the session signals exit.  One dispatch epoch covers the whole
    /// persistent launch, however many rounds it runs.
    Resident(Arc<ResidentBody>),
}

/// Dispatch slot the workers wait on.
struct Dispatch {
    /// Bumped once per launch; workers run each epoch exactly once.
    epoch: u64,
    /// The current launch, present while `remaining > 0`.
    job: Option<Work>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// Set by `Drop`; workers exit instead of waiting for the next epoch.
    shutdown: bool,
}

struct PoolShared {
    dispatch: Mutex<Dispatch>,
    /// Signalled when a new epoch is posted (or shutdown begins).
    go: Condvar,
    /// Signalled by the last worker to finish an epoch.
    done: Condvar,
}

/// The persistent worker pool owned by a `VirtualGpu` with a parallel
/// backend.  Spawned at most once per device; dropped with the device.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Serializes launches on one device, like CUDA's default stream.
    gate: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` host threads, parked until the first launch.
    ///
    /// `tag` is baked into the host thread names so pools belonging to
    /// different owners (e.g. service shards) are distinguishable in thread
    /// dumps.  Tag 0 keeps the historical `gpm-gpu-worker-<i>` names.
    pub(crate) fn spawn_tagged(workers: usize, tag: usize) -> Self {
        debug_assert!(workers >= 1, "a pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            dispatch: Mutex::new(Dispatch { epoch: 0, job: None, remaining: 0, shutdown: false }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let name = if tag == 0 {
                    format!("gpm-gpu-worker-{index}")
                } else {
                    format!("gpm-gpu-t{tag}-worker-{index}")
                };
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn virtual GPU worker")
            })
            .collect();
        Self { shared, gate: Mutex::new(()), handles, workers }
    }

    /// Number of host threads this pool owns.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one launch over the pool and blocks until every worker reached
    /// the end-of-launch barrier (the implicit device-wide barrier of a CUDA
    /// launch).  Returns the launch's aggregated [`LaunchTotals`].
    ///
    /// Re-raises the payload of the first panicking kernel thread, after the
    /// barrier, leaving the pool intact for the next launch.
    pub(crate) fn run(
        &self,
        grid: usize,
        chunk: usize,
        kernel: &(dyn Fn(&ThreadCtx) + Sync),
    ) -> LaunchTotals {
        let _gate = lock(&self.gate);
        // Every worker participates in the barrier (that is what makes the
        // erased kernel pointer sound); `effective_chunk` hands each woken
        // worker a share of mid-sized grids and keeps chunks aligned to the
        // modelled cache line.
        let chunk = effective_chunk(chunk, grid, self.workers);
        let body = Arc::new(LaunchBody {
            grid,
            chunk,
            cursor: AtomicUsize::new(0),
            totals: Mutex::new(LaunchTotals::default()),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        self.dispatch_epoch(Work::Launch(Job {
            kernel: KernelPtr::erase(kernel),
            body: Arc::clone(&body),
        }));
        self.await_epoch();
        body.reap()
    }

    /// Starts a **resident launch**: every worker enters a persistent loop
    /// executing barrier-separated rounds ([`ResidentBody::round`]) instead
    /// of returning to the dispatch slot after one kernel.  The launch gate
    /// is held for the whole session — the resident grid monopolizes the
    /// device, exactly like a real megakernel occupying every SM — and is
    /// released when the returned session drops, which also exits the
    /// workers' loops and completes the dispatch epoch.
    pub(crate) fn begin_resident(&self) -> ResidentSession<'_> {
        let gate = lock(&self.gate);
        let body = Arc::new(ResidentBody {
            barrier: GlobalBarrier::new(self.workers),
            exit: AtomicBool::new(false),
            round: Mutex::new(None),
        });
        self.dispatch_epoch(Work::Resident(Arc::clone(&body)));
        ResidentSession { pool: self, body, _gate: gate }
    }

    /// Posts one dispatch epoch and wakes the workers.
    fn dispatch_epoch(&self, work: Work) {
        let mut dispatch = lock(&self.shared.dispatch);
        dispatch.job = Some(work);
        dispatch.epoch += 1;
        dispatch.remaining = self.workers;
        drop(dispatch);
        self.shared.go.notify_all();
    }

    /// Blocks until every worker has finished the current epoch, then clears
    /// the dispatch slot (for [`Work::Launch`], this is what lets the erased
    /// kernel borrow end safely).
    fn await_epoch(&self) {
        let mut dispatch = lock(&self.shared.dispatch);
        while dispatch.remaining > 0 {
            dispatch = self.shared.done.wait(dispatch).unwrap_or_else(PoisonError::into_inner);
        }
        // Clear the erased pointer before returning: after this, no
        // worker can reach it, so the kernel borrow may safely end.
        dispatch.job = None;
    }
}

impl LaunchBody {
    /// Consumes the launch outcome: re-raises the first panic, or returns
    /// the aggregated totals.
    fn reap(&self) -> LaunchTotals {
        if self.poisoned.load(Ordering::Relaxed) {
            let payload =
                lock(&self.panic).take().unwrap_or_else(|| Box::new("virtual GPU kernel panicked"));
            resume_unwind(payload);
        }
        std::mem::take(&mut *lock(&self.totals))
    }
}

/// Shared state of one resident (persistent) launch: the software global
/// barrier the rounds synchronize through and the per-round job slot the
/// leader re-arms between crossings.
///
/// The leader is the *launcher* thread (it never claims chunks itself —
/// it plays the role CUDA's host code would play if it could talk to a
/// running grid): per round it arms the job slot, crosses the barrier
/// twice ([`GlobalBarrier::release`] to open the round,
/// [`GlobalBarrier::await_full`] to close it), and harvests the totals.
/// Workers only ever [`GlobalBarrier::wait_past`], execute, and
/// [`GlobalBarrier::arrive`].
pub(crate) struct ResidentBody {
    barrier: GlobalBarrier,
    /// Set by the session's `Drop`; workers exit the loop at the next
    /// release instead of running another round.
    exit: AtomicBool,
    /// The current round's launch, present between `release` and the
    /// post-`await_full` clear.
    round: Mutex<Option<Job>>,
}

impl ResidentBody {
    /// Runs one device-resident round over the persistent workers and
    /// blocks until every worker has crossed the end-of-round barrier.
    /// Returns the round's aggregated totals; re-raises the payload of the
    /// first panicking worker (after the crossing, so the loop stays
    /// deadlock-free and the pool survives).
    pub(crate) fn round(
        &self,
        grid: usize,
        chunk: usize,
        kernel: &(dyn Fn(&ThreadCtx) + Sync),
    ) -> LaunchTotals {
        let chunk = effective_chunk(chunk, grid, self.barrier.participants());
        let body = Arc::new(LaunchBody {
            grid,
            chunk,
            cursor: AtomicUsize::new(0),
            totals: Mutex::new(LaunchTotals::default()),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        *lock(&self.round) =
            Some(Job { kernel: KernelPtr::erase(kernel), body: Arc::clone(&body) });
        self.barrier.release();
        let full = self.barrier.await_full();
        assert!(full, "resident barrier poisoned mid-round");
        self.barrier.depart_all();
        // Every worker has arrived, i.e. finished executing; clearing the
        // slot ends the erased pointer's reachable life, so the kernel
        // borrow may safely end when this returns (same argument as
        // `WorkerPool::run`).
        *lock(&self.round) = None;
        body.reap()
    }
}

/// RAII handle of one resident launch on a [`WorkerPool`].  Rounds run via
/// [`ResidentBody::round`]; dropping the session exits the workers' loops
/// (even during unwind, so a panicking round cannot wedge the pool) and
/// releases the device's launch gate.
pub(crate) struct ResidentSession<'pool> {
    pool: &'pool WorkerPool,
    body: Arc<ResidentBody>,
    _gate: MutexGuard<'pool, ()>,
}

impl ResidentSession<'_> {
    /// The shared round-loop state, for the engine's ambient resident scope.
    pub(crate) fn body(&self) -> Arc<ResidentBody> {
        Arc::clone(&self.body)
    }

    /// Number of pool workers participating in each round.
    pub(crate) fn workers(&self) -> usize {
        self.body.barrier.participants()
    }
}

impl Drop for ResidentSession<'_> {
    fn drop(&mut self) {
        self.body.exit.store(true, Ordering::Release);
        // Wake the workers parked at the round barrier; they observe `exit`
        // and leave the resident loop, finishing the dispatch epoch.
        self.body.barrier.release();
        self.pool.await_epoch();
    }
}

/// The worker half of the resident protocol: wait for the leader to open
/// round `epoch`, run it, arrive, repeat — until the session exits.  Panics
/// inside a round are contained by [`run_chunks`] (the worker still
/// arrives), so a failing kernel surfaces on the launcher without ever
/// leaving the barrier short of participants.
fn resident_worker_loop(body: &ResidentBody) {
    let mut epoch = 0u64;
    loop {
        if !body.barrier.wait_past(epoch) {
            return; // poisoned: bail rather than spin forever
        }
        epoch += 1;
        if body.exit.load(Ordering::Acquire) {
            return;
        }
        let job = lock(&body.round).clone().expect("a released round carries a job");
        run_chunks(&job);
        body.barrier.arrive();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut dispatch = lock(&self.shared.dispatch);
            dispatch.shutdown = true;
        }
        self.shared.go.notify_all();
        for handle in self.handles.drain(..) {
            // Workers never panic outside `catch_unwind`, but a failed join
            // must not abort the program from Drop.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let work = {
            let mut dispatch = lock(&shared.dispatch);
            loop {
                if dispatch.shutdown {
                    return;
                }
                if dispatch.epoch != seen_epoch {
                    seen_epoch = dispatch.epoch;
                    break dispatch.job.clone().expect("a dispatched epoch carries a job");
                }
                dispatch = shared.go.wait(dispatch).unwrap_or_else(PoisonError::into_inner);
            }
        };
        match work {
            Work::Launch(job) => run_chunks(&job),
            Work::Resident(body) => resident_worker_loop(&body),
        }
        let mut dispatch = lock(&shared.dispatch);
        dispatch.remaining -= 1;
        if dispatch.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Claims chunks from the shared cursor until the grid is exhausted (or the
/// launch was poisoned by a panic elsewhere), accumulating work counters
/// locally and folding them into the launch atomics once.
fn run_chunks(job: &Job) {
    // SAFETY: `WorkerPool::run` blocks until this worker has decremented
    // `remaining`, which happens only after this function returns, so the
    // kernel borrow behind the erased pointer is live for the whole call.
    let kernel = unsafe { &*job.kernel.0 };
    let body = &*job.body;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut totals = LaunchTotals::default();
        while !body.poisoned.load(Ordering::Relaxed) {
            let start = body.cursor.fetch_add(body.chunk, Ordering::Relaxed);
            if start >= body.grid {
                break;
            }
            let end = (start + body.chunk).min(body.grid);
            for id in start..end {
                let ctx = ThreadCtx::new(id, body.grid);
                kernel(&ctx);
                totals.absorb_thread(&ctx);
            }
        }
        totals
    }));
    match outcome {
        Ok(totals) => {
            lock(&body.totals).merge(&totals);
        }
        Err(payload) => {
            body.poisoned.store(true, Ordering::Relaxed);
            let mut slot = lock(&body.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;

    #[test]
    fn pool_covers_the_grid_with_dynamic_chunks() {
        let pool = WorkerPool::spawn_tagged(3, 0);
        let grid = 10_007; // not a multiple of any chunk size
        let out = DeviceBuffer::<u32>::new(grid, 0);
        for chunk in [1usize, 7, 64, 1024, 20_000] {
            out.fill(0);
            let kernel = |ctx: &ThreadCtx| out.set(ctx.global_id, out.get(ctx.global_id) + 1);
            pool.run(grid, chunk, &kernel);
            assert!(out.to_vec().iter().all(|&v| v == 1), "chunk = {chunk}");
        }
    }

    #[test]
    fn work_counters_aggregate_across_workers() {
        let pool = WorkerPool::spawn_tagged(4, 0);
        let kernel = |ctx: &ThreadCtx| ctx.add_work(ctx.global_id as u64);
        let totals = pool.run(1000, 16, &kernel);
        assert_eq!(totals.work, (0..1000u64).sum());
        assert_eq!(totals.max_thread_work, 999);
    }

    #[test]
    fn atomic_counters_aggregate_per_word_across_workers() {
        let pool = WorkerPool::spawn_tagged(3, 0);
        let hot = DeviceBuffer::<u64>::new(1, 0);
        let spread = DeviceBuffer::<u64>::new(1000, 0);
        let kernel = |ctx: &ThreadCtx| {
            // Every thread hits the shared word; even threads also hit a
            // private word, so the totals must separate "all RMWs" from
            // "RMWs on the hottest word".
            hot.fetch_add(0, 1);
            ctx.add_atomic(hot.word_id(0));
            if ctx.global_id.is_multiple_of(2) {
                spread.fetch_add(ctx.global_id, 1);
                ctx.add_atomic(spread.word_id(ctx.global_id));
            }
        };
        let totals = pool.run(1000, 16, &kernel);
        assert_eq!(totals.atomics, 1500);
        assert_eq!(totals.hot_word_atomics(), 1000);
    }

    #[test]
    fn effective_chunk_is_cache_line_aligned_and_capped() {
        // Alignment: every effective chunk is a whole number of modelled
        // cache lines, so executor chunks and blocked queue segments never
        // share a line.
        for (chunk, grid, workers) in [(1, 10_007, 3), (7, 64, 2), (1024, 100_000, 4)] {
            let eff = effective_chunk(chunk, grid, workers);
            assert_eq!(eff % QUEUE_BLOCK, 0, "chunk {chunk} grid {grid} workers {workers}");
            assert!(eff >= 1);
        }
        // The per-worker cap still engages before alignment.
        assert_eq!(effective_chunk(1024, 64, 4), QUEUE_BLOCK * 2);
        // Degenerate inputs stay sane.
        assert_eq!(effective_chunk(0, 0, 0), QUEUE_BLOCK);
    }

    #[test]
    fn panic_poisons_the_launch_but_not_the_pool() {
        let pool = WorkerPool::spawn_tagged(2, 0);
        let boom = |ctx: &ThreadCtx| {
            if ctx.global_id == 123 {
                panic!("injected");
            }
        };
        let err = catch_unwind(AssertUnwindSafe(|| pool.run(1000, 8, &boom))).unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"injected"));
        // The same pool still runs the next launch to completion.
        let out = DeviceBuffer::<u32>::new(500, 0);
        let kernel = |ctx: &ThreadCtx| out.set(ctx.global_id, 1);
        pool.run(500, 8, &kernel);
        assert_eq!(out.to_vec().iter().map(|&v| u64::from(v)).sum::<u64>(), 500);
    }

    #[test]
    fn tagged_pool_names_threads_after_the_tag() {
        let pool = WorkerPool::spawn_tagged(2, 7);
        let seen = Mutex::new(Vec::new());
        let kernel = |_ctx: &ThreadCtx| {
            let name = std::thread::current().name().unwrap_or("").to_string();
            lock(&seen).push(name);
        };
        pool.run(2, 1, &kernel);
        for name in lock(&seen).iter() {
            assert!(name.starts_with("gpm-gpu-t7-worker-"), "unexpected thread name {name}");
        }
    }

    #[test]
    fn zero_grid_run_returns_immediately() {
        let pool = WorkerPool::spawn_tagged(2, 0);
        let kernel = |_ctx: &ThreadCtx| panic!("no threads should run");
        let totals = pool.run(0, 8, &kernel);
        assert_eq!(totals.work, 0);
        assert_eq!(totals.atomics, 0);
    }

    #[test]
    fn resident_rounds_cover_the_grid_and_aggregate_totals() {
        let pool = WorkerPool::spawn_tagged(3, 0);
        let grid = 10_007;
        let out = DeviceBuffer::<u32>::new(grid, 0);
        {
            let session = pool.begin_resident();
            for round in 1..=5u32 {
                let kernel =
                    |ctx: &ThreadCtx| out.set(ctx.global_id, out.get(ctx.global_id) + round);
                let totals = session.body().round(grid, 64, &kernel);
                assert_eq!(totals.atomics, 0);
            }
            let counting = |ctx: &ThreadCtx| ctx.add_work(ctx.global_id as u64);
            let totals = session.body().round(1000, 16, &counting);
            assert_eq!(totals.work, (0..1000u64).sum());
            assert_eq!(totals.max_thread_work, 999);
        }
        assert!(out.to_vec().iter().all(|&v| v == 1 + 2 + 3 + 4 + 5));
        // The session released the gate and completed the epoch: ordinary
        // launches work again afterwards.
        out.fill(0);
        pool.run(grid, 64, &|ctx: &ThreadCtx| out.set(ctx.global_id, 1));
        assert!(out.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn one_resident_session_is_one_dispatch_epoch() {
        // However many rounds run, the pool dispatches exactly once — the
        // point of persistent execution.
        let pool = WorkerPool::spawn_tagged(2, 0);
        let epoch_before = lock(&pool.shared.dispatch).epoch;
        {
            let session = pool.begin_resident();
            for _ in 0..100 {
                session.body().round(64, 8, &|_ctx: &ThreadCtx| {});
            }
        }
        let epoch_after = lock(&pool.shared.dispatch).epoch;
        assert_eq!(epoch_after, epoch_before + 1);
    }

    #[test]
    fn panic_in_a_resident_round_does_not_deadlock_the_pool() {
        let pool = WorkerPool::spawn_tagged(3, 0);
        {
            let session = pool.begin_resident();
            session.body().round(500, 8, &|_ctx: &ThreadCtx| {});
            let boom = |ctx: &ThreadCtx| {
                if ctx.global_id == 123 {
                    panic!("resident boom");
                }
            };
            let err = catch_unwind(AssertUnwindSafe(|| session.body().round(1000, 8, &boom)))
                .unwrap_err();
            assert_eq!(err.downcast_ref::<&str>(), Some(&"resident boom"));
            // The same session still runs later rounds: the barrier crossed
            // despite the panic, and only the round body was poisoned.
            let out = DeviceBuffer::<u32>::new(256, 0);
            session.body().round(256, 8, &|ctx: &ThreadCtx| out.set(ctx.global_id, 1));
            assert_eq!(out.to_vec().iter().map(|&v| u64::from(v)).sum::<u64>(), 256);
        }
        // And the pool itself survives the session.
        let out = DeviceBuffer::<u32>::new(500, 0);
        pool.run(500, 8, &|ctx: &ThreadCtx| out.set(ctx.global_id, 1));
        assert_eq!(out.to_vec().iter().map(|&v| u64::from(v)).sum::<u64>(), 500);
    }

    #[test]
    fn dropping_a_session_mid_unwind_cleans_up() {
        // Simulates an engine panicking on host code between rounds: the
        // session drops during unwind and the workers exit cleanly.
        let pool = WorkerPool::spawn_tagged(2, 0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let session = pool.begin_resident();
            session.body().round(64, 8, &|_ctx: &ThreadCtx| {});
            panic!("host-side failure");
        }))
        .unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"host-side failure"));
        let out = DeviceBuffer::<u32>::new(100, 0);
        pool.run(100, 8, &|ctx: &ThreadCtx| out.set(ctx.global_id, 1));
        assert_eq!(out.to_vec().iter().map(|&v| u64::from(v)).sum::<u64>(), 100);
    }
}
