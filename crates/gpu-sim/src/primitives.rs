//! Device-wide primitives implemented as kernels.
//!
//! The dynamic compression of active-column lists (`G-PR-SHRKRNL`,
//! Section III-C2 of the paper) performs a per-thread count, a prefix sum
//! over the counts, and a scatter into private regions.  These primitives
//! reproduce the prefix-sum and reduction steps as multi-pass kernel
//! launches on the virtual GPU, so the kernel-launch statistics of the
//! shrink path match the structure of the CUDA implementation.

use crate::buffer::DeviceBuffer;
use crate::engine::VirtualGpu;

/// Number of logical threads per block used by the block-wise passes.
const BLOCK: usize = 256;

/// Device-wide sum reduction of a `u64` buffer.
///
/// Implemented as repeated block-reduction kernels until a single value
/// remains, mimicking the standard CUDA reduction pattern.
pub fn reduce_sum(gpu: &VirtualGpu, input: &DeviceBuffer<u64>) -> u64 {
    if input.is_empty() {
        return 0;
    }
    let mut current: DeviceBuffer<u64> = DeviceBuffer::from_slice(&input.to_vec());
    while current.len() > 1 {
        let blocks = current.len().div_ceil(BLOCK);
        let next = DeviceBuffer::<u64>::new(blocks, 0);
        gpu.launch("reduce_sum", blocks, |ctx| {
            let b = ctx.global_id;
            let start = b * BLOCK;
            let end = ((b + 1) * BLOCK).min(current.len());
            let mut acc = 0u64;
            for i in start..end {
                acc += current.get(i);
                ctx.add_work(1);
            }
            next.set(b, acc);
        });
        current = next;
    }
    current.get(0)
}

/// Device-wide maximum reduction of a `u64` buffer (0 for an empty buffer).
pub fn reduce_max(gpu: &VirtualGpu, input: &DeviceBuffer<u64>) -> u64 {
    if input.is_empty() {
        return 0;
    }
    let mut current: DeviceBuffer<u64> = DeviceBuffer::from_slice(&input.to_vec());
    while current.len() > 1 {
        let blocks = current.len().div_ceil(BLOCK);
        let next = DeviceBuffer::<u64>::new(blocks, 0);
        gpu.launch("reduce_max", blocks, |ctx| {
            let b = ctx.global_id;
            let start = b * BLOCK;
            let end = ((b + 1) * BLOCK).min(current.len());
            let mut acc = 0u64;
            for i in start..end {
                acc = acc.max(current.get(i));
                ctx.add_work(1);
            }
            next.set(b, acc);
        });
        current = next;
    }
    current.get(0)
}

/// Exclusive prefix sum (scan) of a `u64` buffer, returning a new device
/// buffer of the same length plus the total sum.
///
/// `output[i] = input[0] + … + input[i-1]`, `output[0] = 0`.
///
/// Implemented as the classic three-phase GPU scan: block-local scan,
/// scan of block totals (recursively), then a uniform add pass.
pub fn exclusive_prefix_sum(
    gpu: &VirtualGpu,
    input: &DeviceBuffer<u64>,
) -> (DeviceBuffer<u64>, u64) {
    let n = input.len();
    let output = DeviceBuffer::<u64>::new(n, 0);
    if n == 0 {
        return (output, 0);
    }
    let blocks = n.div_ceil(BLOCK);
    let block_totals = DeviceBuffer::<u64>::new(blocks, 0);

    // Phase 1: per-block exclusive scan.
    gpu.launch("scan_block", blocks, |ctx| {
        let b = ctx.global_id;
        let start = b * BLOCK;
        let end = ((b + 1) * BLOCK).min(n);
        let mut acc = 0u64;
        for i in start..end {
            output.set(i, acc);
            acc += input.get(i);
            ctx.add_work(2);
        }
        block_totals.set(b, acc);
    });

    // Phase 2: scan of block totals (host-side recursion over device passes).
    let (block_offsets, total) = if blocks > 1 {
        exclusive_prefix_sum(gpu, &block_totals)
    } else {
        (DeviceBuffer::<u64>::new(1, 0), block_totals.get(0))
    };

    // Phase 3: uniform add of each block's offset.
    if blocks > 1 {
        gpu.launch("scan_uniform_add", blocks, |ctx| {
            let b = ctx.global_id;
            let offset = block_offsets.get(b);
            if offset != 0 {
                let start = b * BLOCK;
                let end = ((b + 1) * BLOCK).min(n);
                for i in start..end {
                    output.set(i, output.get(i) + offset);
                    ctx.add_work(2);
                }
            }
        });
    }
    (output, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VirtualGpu;

    fn gpus() -> Vec<VirtualGpu> {
        vec![VirtualGpu::sequential(), VirtualGpu::parallel()]
    }

    #[test]
    fn reduce_sum_matches_host() {
        for gpu in gpus() {
            for n in [0usize, 1, 7, 256, 257, 10_000] {
                let host: Vec<u64> = (0..n as u64).map(|i| i % 13).collect();
                let buf = DeviceBuffer::from_slice(&host);
                assert_eq!(reduce_sum(&gpu, &buf), host.iter().sum::<u64>(), "n = {n}");
            }
        }
    }

    #[test]
    fn reduce_max_matches_host() {
        for gpu in gpus() {
            for n in [0usize, 1, 255, 256, 1000, 5000] {
                let host: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 101).collect();
                let buf = DeviceBuffer::from_slice(&host);
                assert_eq!(
                    reduce_max(&gpu, &buf),
                    host.iter().copied().max().unwrap_or(0),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn prefix_sum_matches_host() {
        for gpu in gpus() {
            for n in [0usize, 1, 2, 255, 256, 257, 4096, 70_001] {
                let host: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % 5).collect();
                let buf = DeviceBuffer::from_slice(&host);
                let (scan, total) = exclusive_prefix_sum(&gpu, &buf);
                let mut expected = Vec::with_capacity(n);
                let mut acc = 0u64;
                for &v in &host {
                    expected.push(acc);
                    acc += v;
                }
                assert_eq!(scan.to_vec(), expected, "n = {n}");
                assert_eq!(total, acc, "n = {n}");
            }
        }
    }

    #[test]
    fn primitives_record_kernel_launches() {
        let gpu = VirtualGpu::sequential();
        let buf = DeviceBuffer::from_slice(&vec![1u64; 1000]);
        let _ = reduce_sum(&gpu, &buf);
        let _ = exclusive_prefix_sum(&gpu, &buf);
        let stats = gpu.stats();
        assert!(stats.launches_of("reduce_sum") >= 1);
        assert!(stats.launches_of("scan_block") >= 1);
    }
}
