//! Device-wide primitives implemented as kernels.
//!
//! The dynamic compression of active-column lists (`G-PR-SHRKRNL`,
//! Section III-C2 of the paper) performs a per-thread count, a prefix sum
//! over the counts, and a scatter into private regions.  These primitives
//! reproduce the prefix-sum and reduction steps as multi-pass kernel
//! launches on the virtual GPU, so the kernel-launch statistics of the
//! shrink path match the structure of the CUDA implementation.
//!
//! All working buffers come from the device's [`ScratchArena`]: the first
//! pass reads the caller's input buffer in place (no staging copy), and the
//! block-partial buffers of the reduction ladder / scan recursion are
//! recycled allocations, so a solve loop that reduces or scans every
//! iteration stops paying an allocation per call after the first.
//!
//! [`ScratchArena`]: crate::scratch::ScratchArena

use crate::buffer::DeviceBuffer;
use crate::engine::{ThreadCtx, VirtualGpu};
use crate::scratch::ScratchBuffer;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of logical threads per block used by the block-wise passes.
const BLOCK: usize = 256;

/// Number of `u64` queue slots claimed per blocked-append block: 8 words =
/// one 64-byte cache line, so distinct workers' blocks never false-share.
pub const QUEUE_BLOCK: usize = 8;

/// Hole marker used by blocked-append queues: slots claimed but not (yet)
/// filled hold this value.  Blocked queues therefore cannot store
/// `u64::MAX` as a payload; worklists store vertex/column ids, which are
/// always well below it.
pub const QUEUE_EMPTY: u64 = u64::MAX;

/// Source of unique ids for blocked queue views.  Ids start at 1 so the
/// thread-local cursor's zero-initialized id never matches a live queue.
static NEXT_QUEUE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-worker blocked-append cursor: `(queue id, next slot, block end)`.
    /// One slot suffices because each launch drives at most one blocked
    /// queue; a new queue id simply evicts the previous cursor.
    static BLOCK_CURSOR: Cell<(u64, usize, usize)> = const { Cell::new((0, 0, 0)) };
}

/// One block-reduction pass: thread `b` combines the `BLOCK` entries of its
/// block in `src` into `dst[b]`.
fn reduce_pass(
    gpu: &VirtualGpu,
    name: &'static str,
    src: &DeviceBuffer<u64>,
    dst: &DeviceBuffer<u64>,
    combine: impl Fn(u64, u64) -> u64 + Sync,
) {
    let n = src.len();
    gpu.launch(name, dst.len(), |ctx| {
        let b = ctx.global_id;
        let start = b * BLOCK;
        let end = ((b + 1) * BLOCK).min(n);
        let mut acc = src.get(start);
        ctx.add_work(1);
        for i in start + 1..end {
            acc = combine(acc, src.get(i));
            ctx.add_work(1);
        }
        dst.set(b, acc);
    });
}

/// Shared ladder of block-reduction launches until one value remains.
fn reduce(
    gpu: &VirtualGpu,
    input: &DeviceBuffer<u64>,
    name: &'static str,
    identity: u64,
    combine: impl Fn(u64, u64) -> u64 + Sync + Copy,
) -> u64 {
    if input.is_empty() {
        return identity;
    }
    if input.len() == 1 {
        return input.get(0);
    }
    // Pass 1 reads the input buffer directly; only the (much smaller) block
    // partials live in scratch.
    let mut current = gpu.scratch().acquire(input.len().div_ceil(BLOCK), identity);
    reduce_pass(gpu, name, input, &current, combine);
    while current.len() > 1 {
        let next = gpu.scratch().acquire(current.len().div_ceil(BLOCK), identity);
        reduce_pass(gpu, name, &current, &next, combine);
        current = next;
    }
    current.get(0)
}

/// Device-wide sum reduction of a `u64` buffer.
///
/// Implemented as repeated block-reduction kernels until a single value
/// remains, mimicking the standard CUDA reduction pattern.
pub fn reduce_sum(gpu: &VirtualGpu, input: &DeviceBuffer<u64>) -> u64 {
    reduce(gpu, input, "reduce_sum", 0, |a, b| a + b)
}

/// Device-wide maximum reduction of a `u64` buffer (0 for an empty buffer).
pub fn reduce_max(gpu: &VirtualGpu, input: &DeviceBuffer<u64>) -> u64 {
    reduce(gpu, input, "reduce_max", 0, u64::max)
}

/// Exclusive prefix sum (scan) of a `u64` buffer, returning an arena-backed
/// device buffer of the same length plus the total sum.
///
/// `output[i] = input[0] + … + input[i-1]`, `output[0] = 0`.
///
/// Implemented as the classic three-phase GPU scan: block-local scan,
/// scan of block totals (recursively), then a uniform add pass.  The
/// returned buffer goes back to the device's scratch arena when dropped.
pub fn exclusive_prefix_sum<'gpu>(
    gpu: &'gpu VirtualGpu,
    input: &DeviceBuffer<u64>,
) -> (ScratchBuffer<'gpu>, u64) {
    let n = input.len();
    let output = gpu.scratch().acquire(n, 0);
    if n == 0 {
        return (output, 0);
    }
    let blocks = n.div_ceil(BLOCK);
    let block_totals = gpu.scratch().acquire(blocks, 0);

    // Phase 1: per-block exclusive scan.
    gpu.launch("scan_block", blocks, |ctx| {
        let b = ctx.global_id;
        let start = b * BLOCK;
        let end = ((b + 1) * BLOCK).min(n);
        let mut acc = 0u64;
        for i in start..end {
            output.set(i, acc);
            acc += input.get(i);
            ctx.add_work(2);
        }
        block_totals.set(b, acc);
    });

    if blocks == 1 {
        let total = block_totals.get(0);
        return (output, total);
    }

    // Phase 2: scan of block totals (host-side recursion over device passes).
    let (block_offsets, total) = exclusive_prefix_sum(gpu, &block_totals);

    // Phase 3: uniform add of each block's offset.
    gpu.launch("scan_uniform_add", blocks, |ctx| {
        let b = ctx.global_id;
        let offset = block_offsets.get(b);
        if offset != 0 {
            let start = b * BLOCK;
            let end = ((b + 1) * BLOCK).min(n);
            for i in start..end {
                output.set(i, output.get(i) + offset);
                ctx.add_work(2);
            }
        }
    });
    (output, total)
}

/// A device-side append-only queue over caller-provided buffers: `items`
/// (the payload array, whose length is the queue's capacity), a one-word
/// `tail` counter, and a one-word `overflow` flag.
///
/// [`DeviceQueue::push`] claims a slot with an atomic fetch-add on `tail`
/// (the CUDA `atomicAdd` idiom of worklist-based BFS kernels) and stores the
/// value with a plain relaxed write.  There is **no ordering** between the
/// claim and the store becoming visible to other threads of the same launch
/// — exactly like on a real GPU.  The contract is therefore that queue
/// contents are only *read* after the launch that filled them has completed:
/// the end-of-launch barrier (the executor's join, or the implicit barrier
/// of CUDA's default stream) is what publishes every store.
///
/// A push beyond capacity raises `overflow` (word 0 set to 1) and drops the
/// value; the caller is expected to rebuild the queue from its stamp array
/// (see [`crate::worklist`]) when that happens.
///
/// # Blocked append
///
/// [`DeviceQueue::new_blocked`] builds a view whose pushes claim
/// [`QUEUE_BLOCK`]-slot blocks instead of single slots: each executor worker
/// keeps a thread-local cursor into its current block, so `QUEUE_BLOCK`
/// consecutive pushes from one worker cost a single `fetch_add` on the
/// shared tail — an 8× cut of both the atomic throughput term and, far more
/// importantly, the same-address serialization on the tail word.  The price
/// is density: a worker that stops pushing mid-block leaves *holes*
/// (pre-filled with [`QUEUE_EMPTY`] at claim time, while the block is still
/// exclusively owned, so the fill is race-free), and the tail counts claimed
/// slots rather than stored items.  Callers compact the holes out after the
/// launch — see the worklist's stitch pass.
///
/// Blocked claims round the tail up past capacity when the last block only
/// partially fits; pushes that land on slots beyond capacity drop the value
/// and raise `overflow` exactly like the per-item path, and the caller's
/// rebuild-from-stamps recovery applies unchanged.
pub struct DeviceQueue<'a> {
    items: &'a DeviceBuffer<u64>,
    tail: &'a DeviceBuffer<u64>,
    overflow: &'a DeviceBuffer<u64>,
    /// `Some(id)` for blocked-append views; the id is unique per view so a
    /// stale thread-local cursor from an earlier view can never leak claimed
    /// slots across launches.
    blocked: Option<u64>,
}

impl<'a> DeviceQueue<'a> {
    /// Wraps the three device buffers as a per-item-append queue view.
    /// `tail` and `overflow` must hold at least one word each.
    pub fn new(
        items: &'a DeviceBuffer<u64>,
        tail: &'a DeviceBuffer<u64>,
        overflow: &'a DeviceBuffer<u64>,
    ) -> Self {
        Self { items, tail, overflow, blocked: None }
    }

    /// Wraps the three device buffers as a blocked-append queue view (see
    /// the type docs).  Build a fresh view per launch: the view's identity
    /// is what invalidates workers' thread-local block cursors.
    pub fn new_blocked(
        items: &'a DeviceBuffer<u64>,
        tail: &'a DeviceBuffer<u64>,
        overflow: &'a DeviceBuffer<u64>,
    ) -> Self {
        Self { items, tail, overflow, blocked: Some(NEXT_QUEUE_ID.fetch_add(1, Ordering::Relaxed)) }
    }

    /// Appends `value`, returning `true` on success and `false` (with the
    /// overflow flag raised) when the queue is full.  Callable from any
    /// kernel thread; `ctx` receives the modelled atomic traffic (one RMW on
    /// the tail word per item, or per [`QUEUE_BLOCK`]-slot claim in blocked
    /// mode).
    #[inline]
    pub fn push(&self, ctx: &ThreadCtx, value: u64) -> bool {
        match self.blocked {
            None => {
                ctx.add_atomic(self.tail.word_id(0));
                let pos = self.tail.fetch_add(0, 1) as usize;
                if pos < self.items.len() {
                    self.items.set(pos, value);
                    true
                } else {
                    self.overflow.set(0, 1);
                    false
                }
            }
            Some(id) => BLOCK_CURSOR.with(|cursor| {
                let (cur_id, mut next, end) = cursor.get();
                if cur_id != id || next == end {
                    ctx.add_atomic(self.tail.word_id(0));
                    let start = self.tail.fetch_add(0, QUEUE_BLOCK as u64) as usize;
                    // The freshly claimed block is exclusively this worker's
                    // until the end-of-launch barrier publishes it, so the
                    // hole pre-fill below is race-free.
                    for i in start..(start + QUEUE_BLOCK).min(self.items.len()) {
                        self.items.set(i, QUEUE_EMPTY);
                    }
                    cursor.set((id, start, start + QUEUE_BLOCK));
                    next = start;
                }
                let (_, _, end) = cursor.get();
                cursor.set((id, next + 1, end));
                if next < self.items.len() {
                    self.items.set(next, value);
                    true
                } else {
                    self.overflow.set(0, 1);
                    false
                }
            }),
        }
    }

    /// Number of occupied slots, tail clamped to capacity.  For per-item
    /// views this is the exact item count; for blocked views it counts
    /// *claimed* slots and therefore includes any [`QUEUE_EMPTY`] holes left
    /// by partial blocks.  Only meaningful after the filling launch has
    /// completed.
    pub fn len(&self) -> usize {
        (self.tail.get(0) as usize).min(self.items.len())
    }

    /// `true` when this view appends in [`QUEUE_BLOCK`]-slot blocks.
    pub fn is_blocked(&self) -> bool {
        self.blocked.is_some()
    }

    /// `true` when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.tail.get(0) == 0
    }

    /// Maximum number of items the queue can hold.
    pub fn capacity(&self) -> usize {
        self.items.len()
    }

    /// `true` when at least one push was dropped for lack of capacity.
    pub fn overflowed(&self) -> bool {
        self.overflow.get(0) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VirtualGpu;

    fn gpus() -> Vec<VirtualGpu> {
        vec![VirtualGpu::sequential(), VirtualGpu::parallel()]
    }

    #[test]
    fn reduce_sum_matches_host() {
        for gpu in gpus() {
            for n in [0usize, 1, 7, 256, 257, 10_000] {
                let host: Vec<u64> = (0..n as u64).map(|i| i % 13).collect();
                let buf = DeviceBuffer::from_slice(&host);
                assert_eq!(reduce_sum(&gpu, &buf), host.iter().sum::<u64>(), "n = {n}");
            }
        }
    }

    #[test]
    fn reduce_max_matches_host() {
        for gpu in gpus() {
            for n in [0usize, 1, 255, 256, 1000, 5000] {
                let host: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 101).collect();
                let buf = DeviceBuffer::from_slice(&host);
                assert_eq!(
                    reduce_max(&gpu, &buf),
                    host.iter().copied().max().unwrap_or(0),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn prefix_sum_matches_host() {
        for gpu in gpus() {
            for n in [0usize, 1, 2, 255, 256, 257, 4096, 70_001] {
                let host: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % 5).collect();
                let buf = DeviceBuffer::from_slice(&host);
                let (scan, total) = exclusive_prefix_sum(&gpu, &buf);
                let mut expected = Vec::with_capacity(n);
                let mut acc = 0u64;
                for &v in &host {
                    expected.push(acc);
                    acc += v;
                }
                assert_eq!(scan.to_vec(), expected, "n = {n}");
                assert_eq!(total, acc, "n = {n}");
            }
        }
    }

    #[test]
    fn primitives_record_kernel_launches() {
        let gpu = VirtualGpu::sequential();
        let buf = DeviceBuffer::from_slice(&vec![1u64; 1000]);
        let _ = reduce_sum(&gpu, &buf);
        let _ = exclusive_prefix_sum(&gpu, &buf);
        let stats = gpu.stats();
        assert!(stats.launches_of("reduce_sum") >= 1);
        assert!(stats.launches_of("scan_block") >= 1);
    }

    #[test]
    fn device_queue_appends_every_pushed_value_exactly_once() {
        for gpu in gpus() {
            let items = DeviceBuffer::<u64>::new(10_000, u64::MAX);
            let tail = DeviceBuffer::<u64>::new(1, 0);
            let overflow = DeviceBuffer::<u64>::new(1, 0);
            let queue = DeviceQueue::new(&items, &tail, &overflow);
            let rec = gpu.launch("queue_fill", 10_000, |ctx| {
                ctx.add_work(1);
                assert!(queue.push(ctx, ctx.global_id as u64));
            });
            assert_eq!(queue.len(), 10_000);
            assert!(!queue.overflowed());
            // Per-item append: every push is one RMW on the shared tail
            // word (the pooled executor may add chunk-cursor claims on top,
            // but the tail stays the hottest word by far).
            assert!(rec.atomics >= 10_000);
            assert_eq!(rec.hot_word_atomics, 10_000);
            // Every id landed exactly once (order is unspecified).
            let mut got = items.to_vec();
            got.sort_unstable();
            let expected: Vec<u64> = (0..10_000).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn device_queue_overflow_drops_and_flags() {
        let gpu = VirtualGpu::parallel();
        let items = DeviceBuffer::<u64>::new(16, u64::MAX);
        let tail = DeviceBuffer::<u64>::new(1, 0);
        let overflow = DeviceBuffer::<u64>::new(1, 0);
        let queue = DeviceQueue::new(&items, &tail, &overflow);
        let accepted = DeviceBuffer::<u64>::new(1, 0);
        gpu.launch("queue_overflow", 100, |ctx| {
            if queue.push(ctx, ctx.global_id as u64) {
                accepted.fetch_add(0, 1);
            }
        });
        assert_eq!(accepted.get(0), 16);
        assert_eq!(queue.len(), 16);
        assert!(queue.overflowed());
        // The 16 retained values are all valid pushes.
        for v in items.to_vec() {
            assert!(v < 100);
        }
    }

    #[test]
    fn blocked_queue_appends_every_value_with_fewer_tail_rmws() {
        for gpu in gpus() {
            let items = DeviceBuffer::<u64>::new(16_384, 0);
            let tail = DeviceBuffer::<u64>::new(1, 0);
            let overflow = DeviceBuffer::<u64>::new(1, 0);
            let queue = DeviceQueue::new_blocked(&items, &tail, &overflow);
            let rec = gpu.launch("blocked_fill", 10_000, |ctx| {
                assert!(queue.push(ctx, ctx.global_id as u64));
            });
            assert!(!queue.overflowed());
            // Claimed slots cover every push, rounded up to whole blocks per
            // worker; the slack is bounded by one partial block per worker.
            assert!(queue.len() >= 10_000);
            assert_eq!(queue.len() % QUEUE_BLOCK, 0);
            // One tail RMW per block claim, not per item.  `rec.atomics`
            // also carries the pooled executor's chunk-cursor claims; the
            // kernel's own share is exactly the block count, so the hottest
            // word is whichever of the two counters is larger.
            let blocks = (queue.len() / QUEUE_BLOCK) as u64;
            assert!(blocks <= 10_000_u64.div_ceil(QUEUE_BLOCK as u64) + 64);
            assert!(rec.atomics >= blocks);
            let cursor_claims = rec.atomics - blocks;
            assert_eq!(rec.hot_word_atomics, blocks.max(cursor_claims));
            // Every id landed exactly once; the rest of the claimed slots
            // are holes.
            let mut got: Vec<u64> = items.to_vec()[..queue.len()]
                .iter()
                .copied()
                .filter(|&v| v != QUEUE_EMPTY)
                .collect();
            got.sort_unstable();
            let expected: Vec<u64> = (0..10_000).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn blocked_queue_overflow_drops_and_flags() {
        for gpu in gpus() {
            let items = DeviceBuffer::<u64>::new(20, 0);
            let tail = DeviceBuffer::<u64>::new(1, 0);
            let overflow = DeviceBuffer::<u64>::new(1, 0);
            let queue = DeviceQueue::new_blocked(&items, &tail, &overflow);
            let accepted = DeviceBuffer::<u64>::new(1, 0);
            gpu.launch("blocked_overflow", 100, |ctx| {
                if queue.push(ctx, ctx.global_id as u64) {
                    accepted.fetch_add(0, 1);
                }
            });
            // At most capacity items were stored; at least one push dropped.
            let stored =
                items.to_vec()[..queue.len()].iter().filter(|&&v| v != QUEUE_EMPTY).count() as u64;
            assert_eq!(stored, accepted.get(0));
            assert!(stored <= 20);
            assert!(queue.overflowed());
            for v in items.to_vec() {
                assert!(v < 100 || v == QUEUE_EMPTY);
            }
        }
    }

    #[test]
    fn blocked_queue_cursor_does_not_leak_across_views() {
        // A worker's thread-local cursor belongs to one view; a fresh view
        // over the same buffers (new launch, reset tail) must re-claim
        // rather than write into slots the tail no longer covers.
        let gpu = VirtualGpu::parallel();
        let items = DeviceBuffer::<u64>::new(1024, 0);
        let tail = DeviceBuffer::<u64>::new(1, 0);
        let overflow = DeviceBuffer::<u64>::new(1, 0);
        for round in 0..3u64 {
            tail.set(0, 0);
            let queue = DeviceQueue::new_blocked(&items, &tail, &overflow);
            gpu.launch("blocked_round", 100, |ctx| {
                assert!(queue.push(ctx, round * 1000 + ctx.global_id as u64));
            });
            assert!(!queue.overflowed());
            let got: Vec<u64> = items.to_vec()[..queue.len()]
                .iter()
                .copied()
                .filter(|&v| v != QUEUE_EMPTY)
                .collect();
            assert_eq!(got.len(), 100, "round {round}");
            for v in got {
                assert!((round * 1000..round * 1000 + 100).contains(&v), "round {round}");
            }
        }
    }

    #[test]
    fn primitives_never_copy_the_input_and_recycle_scratch() {
        let gpu = VirtualGpu::sequential();
        let buf = DeviceBuffer::from_slice(&(0..20_000u64).collect::<Vec<_>>());
        let _ = reduce_sum(&gpu, &buf);
        let after_first = gpu.scratch().stats();
        // The reduction ladder never allocates a full-input-sized buffer.
        assert!(
            after_first.retained_words < buf.len(),
            "scratch holds {} words for a {}-word input",
            after_first.retained_words,
            buf.len()
        );
        // A second identical call reuses every ladder buffer: zero fresh
        // allocations.
        let _ = reduce_sum(&gpu, &buf);
        let after_second = gpu.scratch().stats();
        assert_eq!(after_second.allocations, after_first.allocations);
        assert!(after_second.reuses > after_first.reuses);

        // Same for the scan, once its first call has primed the arena.
        let (scan, _) = exclusive_prefix_sum(&gpu, &buf);
        drop(scan);
        let primed = gpu.scratch().stats();
        let (scan, _) = exclusive_prefix_sum(&gpu, &buf);
        drop(scan);
        assert_eq!(gpu.scratch().stats().allocations, primed.allocations);
    }
}
