//! Device performance model.
//!
//! The reproduction cannot measure CUDA kernel times, so the virtual GPU
//! charges each launch an analytical cost and the harness reports the
//! accumulated *modelled device time* next to host wall-clock time.  The
//! model is deliberately simple — the paper's comparisons hinge on operation
//! counts (number of kernel launches, threads per launch, edges scanned), not
//! on microarchitectural subtleties:
//!
//! ```text
//! launch_cost = kernel_launch_overhead
//!             + ceil(threads / (num_sms × warp_size)) × warp_round_cost
//!             + work_items × memory_cost × divergence_penalty
//!             + atomics × atomic_cost
//!             + hot_word_atomics × hot_word_serialization_cost
//! ```
//!
//! * `threads` is the grid size of the launch;
//! * `work_items` is whatever the kernel reports through
//!   [`crate::ThreadCtx::add_work`] — the matching kernels report one unit
//!   per adjacency-list entry they touch, i.e. per memory transaction;
//! * `divergence_penalty` grows with the imbalance between the average and
//!   maximum per-thread work of the launch, modelling SIMT divergence;
//! * `atomics` is the total number of read-modify-write operations the
//!   launch reported through [`crate::ThreadCtx::add_atomic`] — a
//!   throughput term: every atomic occupies an L2 slot whether or not it
//!   contends;
//! * `hot_word_atomics` is the largest number of those RMWs that landed on
//!   a *single* word.  Fermi's L2 serializes same-address atomics, so a
//!   kernel that funnels every append through one queue-tail word pays this
//!   term linearly in the append count no matter how many SMs it fills —
//!   the single-tail bottleneck the blocked-append worklist exists to
//!   break.
//!
//! Constants default to values derived from the Tesla C2050's published
//! characteristics and are identical for every algorithm, so ratios between
//! algorithms are meaningful even though absolute values are approximate:
//!
//! * kernel launch overhead ≈ 7 µs (typical measured CUDA launch latency on
//!   Fermi-era hardware and drivers);
//! * warp round cost: issuing one full round of 14 SMs × 32 lanes costs a few
//!   hundred ns once pipelining is accounted for — 300 ns per 448-thread
//!   round (≈ 0.7 ns/thread of issue overhead);
//! * memory cost per touched adjacency word: the C2050 sustains ≈ 144 GB/s;
//!   un-coalesced 4–8-byte accesses occupy a 32-byte transaction each, so the
//!   effective random-access throughput is ≈ 18–36 GB/s, i.e. ≈ 1–2 ns per
//!   useful word when the device is saturated.  The default uses 2 ns — the
//!   pessimistic end of that range — because the matching kernels rarely
//!   saturate all SMs;
//! * atomic cost: an uncontended Fermi `atomicAdd` costs about one L2
//!   round-trip amortized across the in-flight window — ≈ 1 ns of device
//!   throughput per operation;
//! * hot-word serialization: same-address atomics serialize in the L2
//!   atomic unit at a handful of ns each (Fermi sustains on the order of
//!   one same-word RMW per few clocks), charged on top of the throughput
//!   term for every RMW on the launch's most contended word.  The default
//!   of 4 ns keeps the model conservative while still making a
//!   single-tail queue visibly slower than a blocked-append one.

use serde::{Deserialize, Serialize};

/// Analytical per-launch cost model (all times in nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Fixed host-side cost of launching a kernel.
    pub kernel_launch_overhead_ns: f64,
    /// Cost of issuing one full round of warps across all SMs.
    pub warp_round_cost_ns: f64,
    /// Cost of one global-memory transaction (one adjacency entry touched).
    pub memory_cost_ns: f64,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// SIMT width (threads per warp).
    pub warp_size: usize,
    /// Weight of the divergence penalty: 0.0 disables it, 1.0 applies the
    /// full max/avg imbalance factor.
    pub divergence_weight: f64,
    /// Throughput cost of one atomic read-modify-write operation.
    pub atomic_cost_ns: f64,
    /// Extra serialization cost per RMW on the launch's hottest word
    /// (same-address atomics serialize in the L2 atomic unit).
    pub hot_word_serialization_ns: f64,
}

impl PerfModel {
    /// Model of the NVIDIA Tesla C2050 used in the paper's experiments.
    pub fn tesla_c2050() -> Self {
        Self {
            kernel_launch_overhead_ns: 7_000.0,
            warp_round_cost_ns: 300.0,
            memory_cost_ns: 2.0,
            num_sms: 14,
            warp_size: 32,
            divergence_weight: 0.25,
            atomic_cost_ns: 1.0,
            hot_word_serialization_ns: 4.0,
        }
    }

    /// A cost model with zero overheads; useful in unit tests that only care
    /// about operation counts.
    pub fn zero() -> Self {
        Self {
            kernel_launch_overhead_ns: 0.0,
            warp_round_cost_ns: 0.0,
            memory_cost_ns: 0.0,
            num_sms: 14,
            warp_size: 32,
            divergence_weight: 0.0,
            atomic_cost_ns: 0.0,
            hot_word_serialization_ns: 0.0,
        }
    }

    /// Number of resident threads processed per "round" of the device.
    pub fn threads_per_round(&self) -> usize {
        (self.num_sms * self.warp_size).max(1)
    }

    /// Largest grid a persistent (megakernel) launch keeps resident on the
    /// device: Fermi sustains up to 48 warps per SM, and a persistent grid
    /// must not exceed what can be co-resident, because blocks beyond that
    /// would never be scheduled and the software barrier would deadlock on a
    /// real GPU.  `VirtualGpu::resident` clamps its participant count here.
    pub fn resident_capacity(&self) -> usize {
        (self.num_sms * self.warp_size * 48).max(1)
    }

    /// Modelled cost (ns) of one software global-barrier crossing by
    /// `threads` resident threads ([`crate::GlobalBarrier`]).
    ///
    /// Per crossing, each warp's leader lane performs one RMW on the shared
    /// arrival word — all on the *same* word, so every one of them pays both
    /// the atomic throughput and the L2 same-address serialization rate —
    /// and the release broadcast costs one warp round of issue latency while
    /// the spinning warps re-read the generation word.  This is the quantity
    /// a persistent round pays *instead of*
    /// [`PerfModel::kernel_launch_overhead_ns`]: a barrier crossing is an
    /// on-device L2 round-trip affair (hundreds of ns), not a host driver
    /// round-trip (microseconds), which is the entire payoff of
    /// persistent execution on launch-bound solves.
    pub fn global_barrier_cost_ns(&self, threads: usize) -> f64 {
        let warps = threads.div_ceil(self.warp_size.max(1)).max(1);
        warps as f64 * (self.atomic_cost_ns + self.hot_word_serialization_ns)
            + self.warp_round_cost_ns
    }

    /// Modelled cost (ns) of one kernel launch with no reported atomic
    /// traffic.
    ///
    /// * `threads`: grid size;
    /// * `work_items`: total work units reported by the kernel's threads;
    /// * `max_thread_work`: largest per-thread work observed (0 if unknown).
    pub fn launch_cost_ns(&self, threads: usize, work_items: u64, max_thread_work: u64) -> f64 {
        self.launch_cost_with_atomics_ns(threads, work_items, max_thread_work, 0, 0)
    }

    /// Modelled cost (ns) of one kernel launch including its atomic traffic.
    ///
    /// On top of [`PerfModel::launch_cost_ns`]'s terms:
    ///
    /// * `atomics`: total RMW operations reported by the launch's threads
    ///   (each charged [`PerfModel::atomic_cost_ns`] of device throughput);
    /// * `hot_word_atomics`: RMWs landing on the single most contended word
    ///   (each additionally charged
    ///   [`PerfModel::hot_word_serialization_ns`], modelling the L2's
    ///   same-address serialization).
    pub fn launch_cost_with_atomics_ns(
        &self,
        threads: usize,
        work_items: u64,
        max_thread_work: u64,
        atomics: u64,
        hot_word_atomics: u64,
    ) -> f64 {
        let atomic_cost = atomics as f64 * self.atomic_cost_ns
            + hot_word_atomics as f64 * self.hot_word_serialization_ns;
        if threads == 0 {
            return self.kernel_launch_overhead_ns + atomic_cost;
        }
        let rounds = threads.div_ceil(self.threads_per_round());
        let avg_work = work_items as f64 / threads as f64;
        let divergence = if avg_work > 0.0 && max_thread_work > 0 {
            1.0 + self.divergence_weight * ((max_thread_work as f64 / avg_work) - 1.0).max(0.0)
        } else {
            1.0
        };
        self.kernel_launch_overhead_ns
            + rounds as f64 * self.warp_round_cost_ns
            + work_items as f64 * self.memory_cost_ns * divergence
            + atomic_cost
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::tesla_c2050()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_charges_nothing() {
        let m = PerfModel::zero();
        assert_eq!(m.launch_cost_ns(1000, 5000, 50), 0.0);
    }

    #[test]
    fn empty_launch_still_pays_overhead() {
        let m = PerfModel::tesla_c2050();
        assert_eq!(m.launch_cost_ns(0, 0, 0), m.kernel_launch_overhead_ns);
    }

    #[test]
    fn cost_grows_with_threads_and_work() {
        let m = PerfModel::tesla_c2050();
        let small = m.launch_cost_ns(448, 448, 1);
        let more_threads = m.launch_cost_ns(44_800, 44_800, 1);
        let more_work = m.launch_cost_ns(448, 44_800, 100);
        assert!(more_threads > small);
        assert!(more_work > small);
    }

    #[test]
    fn divergence_penalty_increases_cost() {
        let m = PerfModel::tesla_c2050();
        let balanced = m.launch_cost_ns(1000, 10_000, 10);
        let skewed = m.launch_cost_ns(1000, 10_000, 5_000);
        assert!(skewed > balanced);
    }

    #[test]
    fn atomics_add_throughput_and_hot_word_serialization() {
        let m = PerfModel::tesla_c2050();
        let base = m.launch_cost_ns(1000, 10_000, 10);
        let spread = m.launch_cost_with_atomics_ns(1000, 10_000, 10, 1000, 0);
        let funneled = m.launch_cost_with_atomics_ns(1000, 10_000, 10, 1000, 1000);
        assert_eq!(spread, base + 1000.0 * m.atomic_cost_ns);
        assert_eq!(funneled, spread + 1000.0 * m.hot_word_serialization_ns);
        // Blocked append: same payload, one claim per 8-slot block, and the
        // hot word only sees the block claims — an 8x cut of both terms.
        let blocked = m.launch_cost_with_atomics_ns(1000, 10_000, 10, 125, 125);
        assert!(blocked < funneled);
    }

    #[test]
    fn zero_model_charges_no_atomics() {
        let m = PerfModel::zero();
        assert_eq!(m.launch_cost_with_atomics_ns(1000, 5000, 50, 777, 777), 0.0);
    }

    #[test]
    fn empty_launch_still_charges_atomics() {
        // A zero-grid launch can still carry modelled atomic traffic (the
        // executor's chunk cursor never does, but the formula must not lose
        // the term).
        let m = PerfModel::tesla_c2050();
        assert_eq!(
            m.launch_cost_with_atomics_ns(0, 0, 0, 10, 10),
            m.kernel_launch_overhead_ns + 10.0 * (m.atomic_cost_ns + m.hot_word_serialization_ns)
        );
    }

    #[test]
    fn threads_per_round_matches_c2050() {
        let m = PerfModel::tesla_c2050();
        assert_eq!(m.threads_per_round(), 14 * 32);
    }

    #[test]
    fn resident_capacity_matches_fermi_occupancy() {
        let m = PerfModel::tesla_c2050();
        assert_eq!(m.resident_capacity(), 14 * 32 * 48);
    }

    #[test]
    fn barrier_crossing_is_far_cheaper_than_a_launch() {
        let m = PerfModel::tesla_c2050();
        // Even a full-occupancy resident grid crosses the software barrier
        // for less than the driver latency of one kernel launch — the
        // premise of persistent mode.
        let full = m.global_barrier_cost_ns(m.resident_capacity());
        assert!(full < m.kernel_launch_overhead_ns, "{full}");
        // The cost scales with the number of arriving warps.
        let small = m.global_barrier_cost_ns(448);
        assert!(small < full);
        assert_eq!(
            small,
            14.0 * (m.atomic_cost_ns + m.hot_word_serialization_ns) + m.warp_round_cost_ns
        );
        // Degenerate grids still pay for one warp's crossing.
        assert_eq!(m.global_barrier_cost_ns(0), m.global_barrier_cost_ns(1));
    }

    #[test]
    fn zero_model_charges_no_barrier() {
        assert_eq!(PerfModel::zero().global_barrier_cost_ns(21_504), 0.0);
    }

    #[test]
    fn default_is_c2050() {
        assert_eq!(PerfModel::default(), PerfModel::tesla_c2050());
    }
}
