//! Execution statistics collected by the virtual GPU.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-kernel aggregate statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of launches of this kernel.
    pub launches: u64,
    /// Total threads across all launches.
    pub total_threads: u64,
    /// Total work items (memory transactions) reported by kernel threads.
    pub total_work: u64,
    /// Total modelled device time in nanoseconds.
    pub modelled_time_ns: f64,
    /// Total host wall-clock time spent executing the launches, nanoseconds.
    pub wall_time_ns: f64,
    /// Largest single-launch grid size seen.
    pub max_grid: u64,
}

/// Device-wide statistics: per-kernel breakdown plus totals.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Statistics keyed by kernel name.
    pub kernels: BTreeMap<String, KernelStats>,
}

impl DeviceStats {
    /// Records one launch.
    pub fn record(
        &mut self,
        kernel: &str,
        threads: usize,
        work: u64,
        modelled_time_ns: f64,
        wall_time_ns: f64,
    ) {
        let entry = self.kernels.entry(kernel.to_string()).or_default();
        entry.launches += 1;
        entry.total_threads += threads as u64;
        entry.total_work += work;
        entry.modelled_time_ns += modelled_time_ns;
        entry.wall_time_ns += wall_time_ns;
        entry.max_grid = entry.max_grid.max(threads as u64);
    }

    /// Total number of kernel launches.
    pub fn total_launches(&self) -> u64 {
        self.kernels.values().map(|k| k.launches).sum()
    }

    /// Total modelled device time across all kernels, in seconds.
    pub fn modelled_time_secs(&self) -> f64 {
        self.kernels.values().map(|k| k.modelled_time_ns).sum::<f64>() / 1e9
    }

    /// Total host wall-clock time spent inside kernel launches, in seconds.
    pub fn wall_time_secs(&self) -> f64 {
        self.kernels.values().map(|k| k.wall_time_ns).sum::<f64>() / 1e9
    }

    /// Total work items across all kernels.
    pub fn total_work(&self) -> u64 {
        self.kernels.values().map(|k| k.total_work).sum()
    }

    /// Launch count for a specific kernel (0 if it never ran).
    pub fn launches_of(&self, kernel: &str) -> u64 {
        self.kernels.get(kernel).map(|k| k.launches).unwrap_or(0)
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &DeviceStats) {
        for (name, k) in &other.kernels {
            let entry = self.kernels.entry(name.clone()).or_default();
            entry.launches += k.launches;
            entry.total_threads += k.total_threads;
            entry.total_work += k.total_work;
            entry.modelled_time_ns += k.modelled_time_ns;
            entry.wall_time_ns += k.wall_time_ns;
            entry.max_grid = entry.max_grid.max(k.max_grid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_kernel() {
        let mut s = DeviceStats::default();
        s.record("push", 100, 500, 1000.0, 2000.0);
        s.record("push", 50, 100, 500.0, 700.0);
        s.record("relabel", 10, 10, 10.0, 20.0);
        assert_eq!(s.total_launches(), 3);
        assert_eq!(s.launches_of("push"), 2);
        assert_eq!(s.launches_of("relabel"), 1);
        assert_eq!(s.launches_of("missing"), 0);
        let push = &s.kernels["push"];
        assert_eq!(push.total_threads, 150);
        assert_eq!(push.total_work, 600);
        assert_eq!(push.max_grid, 100);
        assert!((s.modelled_time_secs() - 1.51e-6).abs() < 1e-12);
        assert!((s.wall_time_secs() - 2.72e-6).abs() < 1e-12);
        assert_eq!(s.total_work(), 610);
    }

    #[test]
    fn merge_combines_blocks() {
        let mut a = DeviceStats::default();
        a.record("k", 10, 10, 1.0, 1.0);
        let mut b = DeviceStats::default();
        b.record("k", 20, 5, 2.0, 2.0);
        b.record("j", 1, 1, 1.0, 1.0);
        a.merge(&b);
        assert_eq!(a.total_launches(), 3);
        assert_eq!(a.kernels["k"].total_threads, 30);
        assert_eq!(a.kernels["k"].max_grid, 20);
        assert_eq!(a.launches_of("j"), 1);
    }

    #[test]
    fn default_is_empty() {
        let s = DeviceStats::default();
        assert_eq!(s.total_launches(), 0);
        assert_eq!(s.modelled_time_secs(), 0.0);
        assert_eq!(s.total_work(), 0);
    }
}
