//! Execution statistics collected by the virtual GPU.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-kernel aggregate statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of launches of this kernel.
    pub launches: u64,
    /// Number of fused tail passes charged to this kernel: device-side work
    /// that piggybacks on an already-running launch (the CUDA
    /// last-block-done idiom) and therefore pays no launch overhead and does
    /// not count as a launch.
    pub fused_tails: u64,
    /// Number of device-resident rounds charged to this kernel: round work
    /// executed inside a persistent launch (`VirtualGpu::resident`), which
    /// pays a software-barrier crossing instead of a launch and does not
    /// count as a launch.
    pub resident_rounds: u64,
    /// Number of software global-barrier crossings charged to this kernel
    /// (one per resident round).
    pub barriers: u64,
    /// Total threads across all launches.
    pub total_threads: u64,
    /// Total work items (memory transactions) reported by kernel threads.
    pub total_work: u64,
    /// Total atomic read-modify-write operations reported by kernel threads
    /// (plus the executor's modelled chunk-cursor claims).
    pub total_atomics: u64,
    /// Total RMWs charged at the hot-word serialization rate: for each
    /// launch, the RMW count of its single most contended word.
    pub hot_word_atomics: u64,
    /// Total modelled device time in nanoseconds.
    pub modelled_time_ns: f64,
    /// Total host wall-clock time spent executing the launches, nanoseconds.
    pub wall_time_ns: f64,
    /// Largest single-launch grid size seen.
    pub max_grid: u64,
}

/// Device-wide statistics: per-kernel breakdown plus totals.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Statistics keyed by kernel name.
    pub kernels: BTreeMap<String, KernelStats>,
}

impl DeviceStats {
    /// Records one launch.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kernel: &str,
        threads: usize,
        work: u64,
        atomics: u64,
        hot_word_atomics: u64,
        modelled_time_ns: f64,
        wall_time_ns: f64,
    ) {
        let entry = self.kernels.entry(kernel.to_string()).or_default();
        entry.launches += 1;
        entry.total_threads += threads as u64;
        entry.total_work += work;
        entry.total_atomics += atomics;
        entry.hot_word_atomics += hot_word_atomics;
        entry.modelled_time_ns += modelled_time_ns;
        entry.wall_time_ns += wall_time_ns;
        entry.max_grid = entry.max_grid.max(threads as u64);
    }

    /// Records one fused tail pass: accumulates threads/work/atomics/times
    /// like [`DeviceStats::record`] but bumps `fused_tails` instead of
    /// `launches` — the pass rode an existing launch, so it must not inflate
    /// launch counts.
    #[allow(clippy::too_many_arguments)]
    pub fn record_fused(
        &mut self,
        kernel: &str,
        threads: usize,
        work: u64,
        atomics: u64,
        hot_word_atomics: u64,
        modelled_time_ns: f64,
        wall_time_ns: f64,
    ) {
        let entry = self.kernels.entry(kernel.to_string()).or_default();
        entry.fused_tails += 1;
        entry.total_threads += threads as u64;
        entry.total_work += work;
        entry.total_atomics += atomics;
        entry.hot_word_atomics += hot_word_atomics;
        entry.modelled_time_ns += modelled_time_ns;
        entry.wall_time_ns += wall_time_ns;
        entry.max_grid = entry.max_grid.max(threads as u64);
    }

    /// Records one device-resident round: accumulates
    /// threads/work/atomics/times like [`DeviceStats::record`] but bumps
    /// `resident_rounds` and `barriers` instead of `launches` — the round
    /// ran inside a persistent launch and crossed the software global
    /// barrier instead of paying a driver round-trip.
    #[allow(clippy::too_many_arguments)]
    pub fn record_resident(
        &mut self,
        kernel: &str,
        threads: usize,
        work: u64,
        atomics: u64,
        hot_word_atomics: u64,
        modelled_time_ns: f64,
        wall_time_ns: f64,
    ) {
        let entry = self.kernels.entry(kernel.to_string()).or_default();
        entry.resident_rounds += 1;
        entry.barriers += 1;
        entry.total_threads += threads as u64;
        entry.total_work += work;
        entry.total_atomics += atomics;
        entry.hot_word_atomics += hot_word_atomics;
        entry.modelled_time_ns += modelled_time_ns;
        entry.wall_time_ns += wall_time_ns;
        entry.max_grid = entry.max_grid.max(threads as u64);
    }

    /// Total number of kernel launches.
    pub fn total_launches(&self) -> u64 {
        self.kernels.values().map(|k| k.launches).sum()
    }

    /// Total modelled device time across all kernels, in seconds.
    pub fn modelled_time_secs(&self) -> f64 {
        self.kernels.values().map(|k| k.modelled_time_ns).sum::<f64>() / 1e9
    }

    /// Total host wall-clock time spent inside kernel launches, in seconds.
    pub fn wall_time_secs(&self) -> f64 {
        self.kernels.values().map(|k| k.wall_time_ns).sum::<f64>() / 1e9
    }

    /// Total work items across all kernels.
    pub fn total_work(&self) -> u64 {
        self.kernels.values().map(|k| k.total_work).sum()
    }

    /// Total atomic RMW operations across all kernels.
    pub fn total_atomics(&self) -> u64 {
        self.kernels.values().map(|k| k.total_atomics).sum()
    }

    /// Launch count for a specific kernel (0 if it never ran).
    pub fn launches_of(&self, kernel: &str) -> u64 {
        self.kernels.get(kernel).map(|k| k.launches).unwrap_or(0)
    }

    /// Fused-tail count for a specific kernel (0 if it never ran fused).
    pub fn fused_tails_of(&self, kernel: &str) -> u64 {
        self.kernels.get(kernel).map(|k| k.fused_tails).unwrap_or(0)
    }

    /// Resident-round count for a specific kernel (0 if it never ran inside
    /// a persistent launch).
    pub fn resident_rounds_of(&self, kernel: &str) -> u64 {
        self.kernels.get(kernel).map(|k| k.resident_rounds).unwrap_or(0)
    }

    /// Total device-resident rounds across all kernels.
    pub fn total_resident_rounds(&self) -> u64 {
        self.kernels.values().map(|k| k.resident_rounds).sum()
    }

    /// Total software global-barrier crossings across all kernels.
    pub fn total_barriers(&self) -> u64 {
        self.kernels.values().map(|k| k.barriers).sum()
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &DeviceStats) {
        for (name, k) in &other.kernels {
            let entry = self.kernels.entry(name.clone()).or_default();
            entry.launches += k.launches;
            entry.fused_tails += k.fused_tails;
            entry.resident_rounds += k.resident_rounds;
            entry.barriers += k.barriers;
            entry.total_threads += k.total_threads;
            entry.total_work += k.total_work;
            entry.total_atomics += k.total_atomics;
            entry.hot_word_atomics += k.hot_word_atomics;
            entry.modelled_time_ns += k.modelled_time_ns;
            entry.wall_time_ns += k.wall_time_ns;
            entry.max_grid = entry.max_grid.max(k.max_grid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_kernel() {
        let mut s = DeviceStats::default();
        s.record("push", 100, 500, 40, 10, 1000.0, 2000.0);
        s.record("push", 50, 100, 10, 5, 500.0, 700.0);
        s.record("relabel", 10, 10, 0, 0, 10.0, 20.0);
        assert_eq!(s.total_launches(), 3);
        assert_eq!(s.launches_of("push"), 2);
        assert_eq!(s.launches_of("relabel"), 1);
        assert_eq!(s.launches_of("missing"), 0);
        let push = &s.kernels["push"];
        assert_eq!(push.total_threads, 150);
        assert_eq!(push.total_work, 600);
        assert_eq!(push.total_atomics, 50);
        assert_eq!(push.hot_word_atomics, 15);
        assert_eq!(push.max_grid, 100);
        assert_eq!(push.fused_tails, 0);
        assert!((s.modelled_time_secs() - 1.51e-6).abs() < 1e-12);
        assert!((s.wall_time_secs() - 2.72e-6).abs() < 1e-12);
        assert_eq!(s.total_work(), 610);
        assert_eq!(s.total_atomics(), 50);
    }

    #[test]
    fn fused_tails_accumulate_without_counting_as_launches() {
        let mut s = DeviceStats::default();
        s.record("push", 100, 500, 0, 0, 1000.0, 2000.0);
        s.record_fused("push", 200, 50, 8, 8, 100.0, 150.0);
        let push = &s.kernels["push"];
        assert_eq!(push.launches, 1);
        assert_eq!(push.fused_tails, 1);
        assert_eq!(s.fused_tails_of("push"), 1);
        assert_eq!(s.fused_tails_of("missing"), 0);
        assert_eq!(push.total_threads, 300);
        assert_eq!(push.total_work, 550);
        assert_eq!(push.total_atomics, 8);
        assert_eq!(push.max_grid, 200);
        assert_eq!(s.total_launches(), 1);
        // A fused pass on a never-launched kernel still creates the row.
        s.record_fused("stitch", 16, 4, 2, 2, 10.0, 10.0);
        assert_eq!(s.launches_of("stitch"), 0);
        assert_eq!(s.fused_tails_of("stitch"), 1);
    }

    #[test]
    fn merge_combines_blocks() {
        let mut a = DeviceStats::default();
        a.record("k", 10, 10, 3, 1, 1.0, 1.0);
        let mut b = DeviceStats::default();
        b.record("k", 20, 5, 2, 2, 2.0, 2.0);
        b.record("j", 1, 1, 0, 0, 1.0, 1.0);
        b.record_fused("k", 5, 5, 1, 1, 1.0, 1.0);
        b.record_resident("k", 7, 2, 1, 1, 3.0, 3.0);
        a.merge(&b);
        assert_eq!(a.total_launches(), 3);
        assert_eq!(a.kernels["k"].total_threads, 42);
        assert_eq!(a.kernels["k"].total_atomics, 7);
        assert_eq!(a.kernels["k"].hot_word_atomics, 5);
        assert_eq!(a.kernels["k"].fused_tails, 1);
        assert_eq!(a.kernels["k"].resident_rounds, 1);
        assert_eq!(a.kernels["k"].barriers, 1);
        assert_eq!(a.kernels["k"].max_grid, 20);
        assert_eq!(a.launches_of("j"), 1);
    }

    #[test]
    fn resident_rounds_accumulate_without_counting_as_launches() {
        let mut s = DeviceStats::default();
        s.record("loop", 100, 500, 0, 0, 7000.0, 100.0);
        s.record_resident("loop", 100, 400, 14, 14, 800.0, 90.0);
        s.record_resident("loop", 100, 300, 14, 14, 700.0, 80.0);
        let k = &s.kernels["loop"];
        assert_eq!(k.launches, 1);
        assert_eq!(k.resident_rounds, 2);
        assert_eq!(k.barriers, 2);
        assert_eq!(k.total_threads, 300);
        assert_eq!(k.total_work, 1200);
        assert_eq!(s.total_launches(), 1);
        assert_eq!(s.resident_rounds_of("loop"), 2);
        assert_eq!(s.resident_rounds_of("missing"), 0);
        assert_eq!(s.total_resident_rounds(), 2);
        assert_eq!(s.total_barriers(), 2);
    }

    #[test]
    fn default_is_empty() {
        let s = DeviceStats::default();
        assert_eq!(s.total_launches(), 0);
        assert_eq!(s.modelled_time_secs(), 0.0);
        assert_eq!(s.total_work(), 0);
        assert_eq!(s.total_atomics(), 0);
    }
}
