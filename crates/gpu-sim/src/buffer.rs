//! Device memory buffers with GPU word-access semantics.
//!
//! CUDA guarantees that naturally-aligned 32-/64-bit loads and stores are
//! indivisible, but gives no ordering and no mutual exclusion between threads
//! of a grid.  The paper's kernels rely on exactly that: several threads may
//! write the same `ψ(u)` or `µ(u)` entry in a launch, and the algorithm is
//! designed so any interleaving of *whole-word* values is acceptable.
//!
//! In Rust, a plain `&[Cell<T>]` shared across threads would be a data race
//! (undefined behaviour), so each word of a [`DeviceBuffer`] is stored in a
//! platform atomic accessed with `Ordering::Relaxed`.  Relaxed atomics
//! compile to plain loads/stores on every relevant ISA, carry no ordering —
//! and therefore model the device memory semantics faithfully without UB.
//! The matching kernels never use read-modify-write operations, preserving
//! the paper's "atomic-free" claim (relaxed loads/stores are not the CUDA
//! `atomicAdd`-style operations the paper avoids).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// A scalar type that can live in device memory.
///
/// Implementations map the scalar onto an atomic cell used with relaxed
/// ordering; see the module documentation for why.
pub trait DeviceScalar: Copy + Send + Sync + 'static {
    /// The backing cell type.
    type Cell: Send + Sync;

    /// Creates a cell holding `v`.
    fn new_cell(v: Self) -> Self::Cell;
    /// Reads the cell (relaxed).
    fn load(cell: &Self::Cell) -> Self;
    /// Writes the cell (relaxed).
    fn store(cell: &Self::Cell, v: Self);
}

macro_rules! impl_device_scalar {
    ($ty:ty, $atomic:ty) => {
        impl DeviceScalar for $ty {
            type Cell = $atomic;

            #[inline]
            fn new_cell(v: Self) -> Self::Cell {
                <$atomic>::new(v)
            }

            #[inline]
            fn load(cell: &Self::Cell) -> Self {
                cell.load(Ordering::Relaxed)
            }

            #[inline]
            fn store(cell: &Self::Cell, v: Self) {
                cell.store(v, Ordering::Relaxed)
            }
        }
    };
}

impl_device_scalar!(i64, AtomicI64);
impl_device_scalar!(u32, AtomicU32);
impl_device_scalar!(u64, AtomicU64);
impl_device_scalar!(usize, AtomicUsize);
impl_device_scalar!(bool, AtomicBool);

impl DeviceScalar for i32 {
    type Cell = std::sync::atomic::AtomicI32;

    #[inline]
    fn new_cell(v: Self) -> Self::Cell {
        std::sync::atomic::AtomicI32::new(v)
    }

    #[inline]
    fn load(cell: &Self::Cell) -> Self {
        cell.load(Ordering::Relaxed)
    }

    #[inline]
    fn store(cell: &Self::Cell, v: Self) {
        cell.store(v, Ordering::Relaxed)
    }
}

/// A device-resident array of `T` with word-granular, unordered access.
///
/// Cloning a handle is not supported; kernels receive `&DeviceBuffer<T>` and
/// may read and write concurrently from many threads.
pub struct DeviceBuffer<T: DeviceScalar> {
    cells: Vec<T::Cell>,
}

impl<T: DeviceScalar> DeviceBuffer<T> {
    /// Allocates a buffer of `len` words, each initialized to `init`.
    pub fn new(len: usize, init: T) -> Self {
        Self { cells: (0..len).map(|_| T::new_cell(init)).collect() }
    }

    /// Copies a host slice to a new device buffer (host → device transfer).
    pub fn from_slice(host: &[T]) -> Self {
        Self { cells: host.iter().map(|&v| T::new_cell(v)).collect() }
    }

    /// Number of words in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the buffer holds no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads word `i` (device load, relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::load(&self.cells[i])
    }

    /// Writes word `i` (device store, relaxed).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        T::store(&self.cells[i], v)
    }

    /// Copies the device buffer back to a host vector (device → host).
    pub fn to_vec(&self) -> Vec<T> {
        self.cells.iter().map(T::load).collect()
    }

    /// Overwrites every word with `v`.
    pub fn fill(&self, v: T) {
        for cell in &self.cells {
            T::store(cell, v);
        }
    }

    /// Copies the contents of a host slice into the buffer.
    ///
    /// # Panics
    /// Panics if the slice length differs from the buffer length.
    pub fn copy_from_slice(&self, host: &[T]) {
        assert_eq!(host.len(), self.len(), "host/device length mismatch");
        for (cell, &v) in self.cells.iter().zip(host) {
            T::store(cell, v);
        }
    }

    /// Workspace hook: returns a buffer of exactly `len` words, all set to
    /// `init`, reusing the allocation in `slot` when its length already
    /// matches.  Warm solver sessions keep their device buffers in `Option`
    /// slots and recycle them across solves on same-shaped graphs instead of
    /// re-allocating ("copying to the device") every call.
    pub fn recycle(slot: &mut Option<Self>, len: usize, init: T) -> &Self {
        match slot {
            Some(buf) if buf.len() == len => buf.fill(init),
            _ => *slot = Some(Self::new(len, init)),
        }
        slot.as_ref().expect("slot populated above")
    }
}

impl DeviceBuffer<u64> {
    /// Atomically adds `delta` to word `i` and returns the previous value —
    /// the analogue of CUDA's `atomicAdd` on a 64-bit word, with relaxed
    /// ordering (no fence, no cross-thread ordering guarantee beyond the
    /// indivisibility of the read-modify-write itself).
    ///
    /// This is the one read-modify-write operation the crate exposes.  The
    /// paper's matching kernels never use it (their races are benign by
    /// construction); it exists for the worklist subsystem's
    /// [`AtomicQueue`](crate::worklist::WorklistMode::AtomicQueue) and
    /// [`BlockedQueue`](crate::worklist::WorklistMode::BlockedQueue)
    /// representations, whose device-side appends mirror the atomic-append
    /// frontier queues of the GPU BFS literature.
    ///
    /// RMW traffic is what the device cost model charges contention for:
    /// kernels that call this should report it through
    /// [`crate::ThreadCtx::add_atomic`] with [`DeviceBuffer::word_id`] of
    /// the touched word, so same-word serialization shows up in the
    /// modelled launch time.
    #[inline]
    pub fn fetch_add(&self, i: usize, delta: u64) -> u64 {
        self.cells[i].fetch_add(delta, Ordering::Relaxed)
    }

    /// A stable identifier of word `i` for contention accounting
    /// ([`crate::ThreadCtx::add_atomic`]).  Distinct live words always get
    /// distinct ids; the value itself is meaningless beyond equality.
    #[inline]
    pub fn word_id(&self, i: usize) -> u64 {
        &self.cells[i] as *const _ as u64
    }
}

impl<T: DeviceScalar + std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_initializes_all_words() {
        let b = DeviceBuffer::<i64>::new(5, -1);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![-1; 5]);
    }

    #[test]
    fn from_slice_and_back_round_trips() {
        let host = vec![3u32, 1, 4, 1, 5, 9, 2, 6];
        let b = DeviceBuffer::from_slice(&host);
        assert_eq!(b.to_vec(), host);
    }

    #[test]
    fn get_set_single_words() {
        let b = DeviceBuffer::<i64>::new(3, 0);
        b.set(1, 42);
        assert_eq!(b.get(0), 0);
        assert_eq!(b.get(1), 42);
        b.set(1, -7);
        assert_eq!(b.get(1), -7);
    }

    #[test]
    fn fill_overwrites_everything() {
        let b = DeviceBuffer::<u32>::new(4, 1);
        b.fill(9);
        assert_eq!(b.to_vec(), vec![9; 4]);
    }

    #[test]
    fn copy_from_slice_replaces_contents() {
        let b = DeviceBuffer::<usize>::new(3, 0);
        b.copy_from_slice(&[7, 8, 9]);
        assert_eq!(b.to_vec(), vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_slice_length_mismatch_panics() {
        let b = DeviceBuffer::<usize>::new(3, 0);
        b.copy_from_slice(&[1, 2]);
    }

    #[test]
    fn bool_buffer_works_as_flag_array() {
        let b = DeviceBuffer::<bool>::new(2, false);
        b.set(1, true);
        assert!(!b.get(0));
        assert!(b.get(1));
    }

    #[test]
    fn empty_buffer() {
        let b = DeviceBuffer::<i32>::new(0, 0);
        assert!(b.is_empty());
        assert_eq!(b.to_vec(), Vec::<i32>::new());
    }

    #[test]
    fn recycle_reuses_matching_allocations() {
        let mut slot: Option<DeviceBuffer<i64>> = None;
        {
            let b = DeviceBuffer::recycle(&mut slot, 4, -1);
            assert_eq!(b.to_vec(), vec![-1; 4]);
            b.set(2, 9);
        }
        let ptr_before = slot.as_ref().unwrap() as *const _;
        // Same length: the allocation is reused and re-initialized.
        let b = DeviceBuffer::recycle(&mut slot, 4, 5);
        assert_eq!(b.to_vec(), vec![5; 4]);
        assert_eq!(slot.as_ref().unwrap() as *const _, ptr_before);
        // Different length: a fresh buffer replaces the old one.
        let b = DeviceBuffer::recycle(&mut slot, 2, 0);
        assert_eq!(b.to_vec(), vec![0; 2]);
    }

    #[test]
    fn fetch_add_returns_previous_value_and_accumulates() {
        let b = DeviceBuffer::<u64>::new(2, 10);
        assert_eq!(b.fetch_add(0, 5), 10);
        assert_eq!(b.fetch_add(0, 1), 15);
        assert_eq!(b.get(0), 16);
        assert_eq!(b.get(1), 10);
    }

    #[test]
    fn concurrent_fetch_add_claims_unique_slots() {
        // The queue-append pattern: every increment must observe a distinct
        // previous value, even under contention.
        let tail = std::sync::Arc::new(DeviceBuffer::<u64>::new(1, 0));
        let claimed = std::sync::Arc::new(DeviceBuffer::<bool>::new(8 * 500, false));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let tail = std::sync::Arc::clone(&tail);
            let claimed = std::sync::Arc::clone(&claimed);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let pos = tail.fetch_add(0, 1) as usize;
                    assert!(!claimed.get(pos), "slot {pos} claimed twice");
                    claimed.set(pos, true);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tail.get(0), 8 * 500);
    }

    #[test]
    fn concurrent_writes_land_as_whole_words() {
        // Many threads hammer the same cells; every observed value must be
        // one that some thread wrote (no torn words).
        let b = std::sync::Arc::new(DeviceBuffer::<i64>::new(4, 0));
        let mut handles = Vec::new();
        for t in 1..=8i64 {
            let b = std::sync::Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000usize {
                    b.set(i % 4, t * 1_000_000 + i as i64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for v in b.to_vec() {
            let t = v / 1_000_000;
            let i = v % 1_000_000;
            assert!((1..=8).contains(&t), "torn or invalid word: {v}");
            assert!(i < 1000);
        }
    }
}
