//! # gpm-gpu — a virtual SIMT GPU
//!
//! The paper's algorithms are CUDA kernels running on an NVIDIA Tesla C2050.
//! No GPU (and no mature Rust toolchain for custom kernels) is available in
//! this reproduction, so this crate provides a **virtual GPU**: a software
//! device that preserves the three properties the paper's results depend on,
//! while running on CPU threads.
//!
//! 1. **Bulk-synchronous kernels.** A launch executes one logical thread per
//!    grid index; *all* threads of the launch run concurrently (or in an
//!    arbitrary sequential interleaving, see [`Backend`]), and the launch
//!    returns only after every thread finished — the implicit device-wide
//!    barrier of CUDA's default stream.
//! 2. **Lock- and atomic-free kernel semantics.** Device memory is exposed as
//!    [`buffer::DeviceBuffer`]s of 32/64-bit words whose loads and stores are
//!    individually indivisible but carry **no ordering and no mutual
//!    exclusion** — exactly the guarantees naturally-aligned word accesses
//!    have on a real GPU.  (Under the hood each word is a Rust atomic used
//!    with `Ordering::Relaxed`; this is the only way to express the paper's
//!    *benign races* without undefined behaviour.  No read-modify-write
//!    operation is ever used by the matching kernels.)
//! 3. **A calibrated cost model.** Each launch is charged launch overhead,
//!    warp issue cost, and per-work-item memory cost
//!    ([`perfmodel::PerfModel`]), so that *modelled device time* can be
//!    compared across algorithms the same way the paper compares wall-clock
//!    seconds on the C2050.  Wall-clock host time is recorded as well.
//!
//! The crate also ships device-wide primitives ([`primitives`]) — reduction
//! and exclusive prefix sum — implemented as multi-pass kernels, because the
//! paper's shrink kernel (`G-PR-SHRKRNL`) needs a device prefix sum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod engine;
pub mod perfmodel;
pub mod primitives;
pub mod stats;

pub use buffer::{DeviceBuffer, DeviceScalar};
pub use engine::{Backend, GpuConfig, LaunchRecord, ThreadCtx, VirtualGpu};
pub use perfmodel::PerfModel;
pub use stats::{DeviceStats, KernelStats};
