//! # gpm-gpu — a virtual SIMT GPU
//!
//! The paper's algorithms are CUDA kernels running on an NVIDIA Tesla C2050.
//! No GPU (and no mature Rust toolchain for custom kernels) is available in
//! this reproduction, so this crate provides a **virtual GPU**: a software
//! device that preserves the three properties the paper's results depend on,
//! while running on CPU threads.
//!
//! 1. **Bulk-synchronous kernels on a persistent executor.** A launch
//!    executes one logical thread per grid index and returns only after
//!    every thread finished — the implicit device-wide barrier of CUDA's
//!    default stream.  With a parallel [`Backend`] the threads run on a
//!    **worker pool spawned at most once per device** (the internal `exec`
//!    module): workers
//!    park on a condition variable between launches and claim fixed-size
//!    grid chunks from a shared atomic cursor, so divergent kernels load-
//!    balance dynamically and the per-launch host cost is a pointer handoff,
//!    not a `thread::spawn`/`join` round trip.  (The sequential backend runs
//!    every thread inline in id order, for deterministic interleavings; the
//!    old spawn-per-launch strategy survives behind
//!    [`ExecutorConfig::per_launch_spawn`] as a benchmark baseline.)  A
//!    kernel panic fails its launch but leaves the pool intact; dropping the
//!    device joins every worker.
//! 2. **Lock- and atomic-free kernel semantics.** Device memory is exposed as
//!    [`buffer::DeviceBuffer`]s of 32/64-bit words whose loads and stores are
//!    individually indivisible but carry **no ordering and no mutual
//!    exclusion** — exactly the guarantees naturally-aligned word accesses
//!    have on a real GPU.  (Under the hood each word is a Rust atomic used
//!    with `Ordering::Relaxed`; this is the only way to express the paper's
//!    *benign races* without undefined behaviour.  No read-modify-write
//!    operation is ever used by the matching kernels.)
//! 3. **A calibrated cost model.** Each launch is charged launch overhead,
//!    warp issue cost, per-work-item memory cost, and — for the kernels
//!    that do use read-modify-writes, like the queue append — a per-atomic
//!    throughput cost plus a serialization surcharge on the launch's most
//!    contended word ([`perfmodel::PerfModel`]), so that *modelled device
//!    time* can be compared across algorithms the same way the paper
//!    compares wall-clock seconds on the C2050.  Wall-clock host time is recorded as well, and
//!    per-kernel statistics are queued off the launch hot path and merged
//!    only when [`VirtualGpu::stats`] snapshots them.
//!
//! The crate also ships device-wide primitives ([`primitives`]) — reduction,
//! exclusive prefix sum, and an atomic-append [`primitives::DeviceQueue`] —
//! implemented as multi-pass kernels (the paper's shrink kernel
//! `G-PR-SHRKRNL` needs a device prefix sum; the queue backs the worklist's
//! atomic-append representation).  Their working buffers come from a
//! per-device [`scratch::ScratchArena`], so the launch-heavy shrink path
//! stops allocating once warm.
//!
//! On top of the primitives sits the [`worklist`] module: a [`Worklist`]
//! type that owns the *active set* every frontier-driven engine iterates,
//! behind four interchangeable [`WorklistMode`] representations —
//! dense stamp scans, `G-PR-SHRKRNL`-style compaction, a device-side
//! atomic-append queue, and a blocked-claim variant of that queue that
//! amortizes the contended tail `fetch_add` over cache-line-sized slot
//! blocks.  See that module's docs for the round protocols and the queue
//! memory model under the pooled executor.
//!
//! Executor tuning (inline threshold, chunk size, the legacy spawn flag)
//! lives in [`ExecutorConfig`] and is plumbed upward through `gpm-core`'s
//! `Solver::builder()` and `gpm-service`'s `Service::builder()`.
//!
//! Finally, the device supports **persistent (megakernel) execution**:
//! [`VirtualGpu::resident`] keeps one launch alive for a whole solve and
//! turns the launches issued inside it into device-resident rounds
//! synchronized by a sense-reversing software global barrier
//! ([`barrier::GlobalBarrier`]), so launch-bound round loops pay
//! [`PerfModel::global_barrier_cost_ns`] per round instead of
//! [`PerfModel::kernel_launch_overhead_ns`].  Engines select this with
//! [`ExecMode`], threaded end-to-end like [`WorklistMode`].

#![deny(unsafe_code)]
// re-allowed only in `exec` for the lifetime erasure the
// persistent pool needs; see that module's soundness argument.
#![warn(missing_docs)]

pub mod barrier;
pub mod buffer;
pub mod engine;
pub(crate) mod exec;
pub mod perfmodel;
pub mod primitives;
pub mod scratch;
pub mod stats;
pub mod stop;
pub mod worklist;

pub use barrier::{BarrierRole, GlobalBarrier};
pub use buffer::{DeviceBuffer, DeviceScalar};
pub use engine::{
    Backend, ExecMode, ExecutorConfig, GpuConfig, LaunchRecord, ParseExecModeError, ThreadCtx,
    VirtualGpu,
};
pub use perfmodel::PerfModel;
pub use scratch::{ScratchArena, ScratchBuffer, ScratchStats};
pub use stats::{DeviceStats, KernelStats};
pub use stop::StopCheck;
pub use worklist::{
    ActiveView, DomainMarker, FrontierView, ParseWorklistModeError, SlotAction, Worklist,
    WorklistKernels, WorklistMode, WL_EMPTY,
};
