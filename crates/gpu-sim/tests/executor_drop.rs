//! Dropping a `VirtualGpu` joins every pool worker.
//!
//! The only observable a joined-versus-leaked worker leaves behind is the
//! process's thread table, so this test counts `gpm-gpu-worker-*` entries in
//! `/proc/self/task`.  It lives in its own test binary: cargo runs test
//! binaries one at a time, so no other test can create or drop pools while
//! this one is counting.

use gpm_gpu::{Backend, DeviceBuffer, ExecutorConfig, GpuConfig, VirtualGpu};

/// Counts live threads of this process whose name marks them as virtual-GPU
/// pool workers.  `comm` is truncated to 15 bytes by the kernel, so match on
/// the (exactly 15-byte) prefix.
fn live_pool_threads() -> Option<usize> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    Some(
        tasks
            .filter_map(|task| {
                let comm = std::fs::read_to_string(task.ok()?.path().join("comm")).ok()?;
                comm.starts_with("gpm-gpu-worker").then_some(())
            })
            .count(),
    )
}

#[test]
fn drop_joins_all_pool_workers() {
    let Some(before) = live_pool_threads() else {
        // No /proc (non-Linux): Drop's join is still exercised — a leak or
        // deadlock would hang the test — but the count can't be asserted.
        let gpu = VirtualGpu::tesla_c2050(Backend::Parallel { workers: 3 });
        gpu.launch("touch", 4_096, |_| {});
        drop(gpu);
        return;
    };
    assert_eq!(before, 0, "no pool may exist before the device");

    let gpu = VirtualGpu::new(
        GpuConfig::tesla_c2050(Backend::Parallel { workers: 3 })
            .with_executor(ExecutorConfig::default().with_parallel_threshold(8)),
    );
    assert_eq!(live_pool_threads(), Some(0), "pool is spawned lazily");

    let out = DeviceBuffer::<u32>::new(1_000, 0);
    gpu.launch("touch", out.len(), |ctx| out.set(ctx.global_id, 1));
    assert_eq!(live_pool_threads(), Some(3), "first pooled launch spawns the workers");
    gpu.launch("touch", out.len(), |ctx| out.set(ctx.global_id, 2));
    assert_eq!(live_pool_threads(), Some(3), "later launches reuse them");

    drop(gpu);
    // `join` has returned, but the kernel may remove the task-table entries
    // of exiting threads a beat later; poll briefly before declaring a leak.
    for _ in 0..100 {
        if live_pool_threads() == Some(0) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(live_pool_threads(), Some(0), "drop must join every worker");
}
