//! Persistent-executor lifecycle and equivalence tests: the pool is spawned
//! at most once per device, a kernel panic fails its launch without killing
//! the pool, and — property-tested over arbitrary data and chunk sizes —
//! the pooled parallel backend is indistinguishable from the deterministic
//! sequential backend for disjoint-write kernels and for all three device
//! primitives.  (`Drop` joining every worker is covered by the dedicated
//! `executor_drop` test binary, which needs the process thread count to
//! itself.)

use gpm_gpu::{primitives, Backend, DeviceBuffer, ExecutorConfig, GpuConfig, VirtualGpu};
use proptest::prelude::*;

/// A parallel device whose pool engages even for tiny test grids.
fn pooled(workers: usize, threshold: usize, chunk: usize) -> VirtualGpu {
    VirtualGpu::new(GpuConfig::tesla_c2050(Backend::Parallel { workers }).with_executor(
        ExecutorConfig { parallel_threshold: threshold, chunk_size: chunk, ..Default::default() },
    ))
}

#[test]
fn host_threads_are_spawned_at_most_once_per_device() {
    let gpu = pooled(3, 4, 8);
    // Lazy: a fresh device owns no threads.
    assert_eq!(gpu.worker_threads_spawned(), 0);
    for round in 0..200 {
        let out = DeviceBuffer::<u32>::new(997, 0);
        gpu.launch("spawn_once", out.len(), |ctx| out.set(ctx.global_id, 1));
        assert_eq!(out.to_vec().iter().map(|&v| u64::from(v)).sum::<u64>(), 997, "round {round}");
        // Every launch after the first reuses the same 3 workers.
        assert_eq!(gpu.worker_threads_spawned(), 3, "round {round}");
    }
}

#[test]
fn sub_threshold_grids_never_spawn_workers() {
    let gpu = pooled(3, 1_000_000, 8);
    for _ in 0..20 {
        gpu.launch("inline_only", 512, |ctx| ctx.add_work(1));
    }
    assert_eq!(gpu.worker_threads_spawned(), 0);
}

#[test]
fn kernel_panic_fails_the_launch_but_the_next_launch_succeeds() {
    let gpu = pooled(2, 2, 4);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        gpu.launch("boom", 1_000, |ctx| {
            if ctx.global_id == 517 {
                panic!("injected kernel fault");
            }
        });
    }))
    .expect_err("the launch must propagate the kernel panic");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"injected kernel fault"));

    // Same device, same pool: the next launch covers the whole grid.
    let out = DeviceBuffer::<u32>::new(1_000, 0);
    gpu.launch("after_boom", out.len(), |ctx| out.set(ctx.global_id, 1));
    assert_eq!(out.to_vec().iter().map(|&v| u64::from(v)).sum::<u64>(), 1_000);
    assert_eq!(gpu.worker_threads_spawned(), 2);

    // And it keeps surviving repeated faults.
    for _ in 0..3 {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpu.launch("boom_again", 64, |_| panic!("again"));
        }));
        assert!(err.is_err());
    }
    let rec = gpu.launch("final", 64, |ctx| ctx.add_work(1));
    assert_eq!(rec.work, 64);
}

#[test]
fn legacy_spawn_path_preserves_panic_payloads_too() {
    let gpu =
        VirtualGpu::new(GpuConfig::tesla_c2050(Backend::Parallel { workers: 2 }).with_executor(
            ExecutorConfig { parallel_threshold: 2, per_launch_spawn: true, ..Default::default() },
        ));
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        gpu.launch("legacy_boom", 1_000, |ctx| {
            if ctx.global_id == 99 {
                panic!("legacy fault");
            }
        });
    }))
    .expect_err("the launch must propagate the kernel panic");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"legacy fault"));
    // The device stays usable afterwards.
    let rec = gpu.launch("legacy_after", 64, |ctx| ctx.add_work(1));
    assert_eq!(rec.work, 64);
}

#[test]
fn launch_statistics_flow_through_the_pooled_path() {
    let gpu = pooled(2, 2, 16);
    gpu.launch("pooled_stats", 4_096, |ctx| ctx.add_work(2));
    let stats = gpu.stats();
    assert_eq!(stats.launches_of("pooled_stats"), 1);
    assert_eq!(stats.kernels["pooled_stats"].total_work, 2 * 4_096);
    assert_eq!(stats.kernels["pooled_stats"].total_threads, 4_096);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Disjoint-write kernels must leave the exact same memory image on the
    /// deterministic sequential backend and on the pooled parallel backend,
    /// whatever the chunk size does to the work distribution.
    #[test]
    fn backends_produce_identical_memory_images(
        data in proptest::collection::vec(any::<i64>(), 1..4_000),
        chunk in 1usize..600,
        workers in 2usize..5,
    ) {
        let sequential = VirtualGpu::sequential();
        let parallel = pooled(workers, 8, chunk);
        let mut images = Vec::new();
        for gpu in [&sequential, &parallel] {
            let src = DeviceBuffer::from_slice(&data);
            let dst = DeviceBuffer::<i64>::new(data.len(), 0);
            gpu.launch("prop_image", data.len(), |ctx| {
                let i = ctx.global_id;
                dst.set(i, src.get(i).wrapping_mul(3) ^ 0x5a);
                ctx.add_work(1);
            });
            images.push(dst.to_vec());
        }
        prop_assert_eq!(&images[0], &images[1]);
    }

    /// All three device primitives agree across backends (and with the
    /// host) for arbitrary inputs and chunk sizes.
    #[test]
    fn primitives_agree_across_backends(
        data in proptest::collection::vec(0u64..10_000, 0..3_000),
        chunk in 1usize..600,
    ) {
        let sequential = VirtualGpu::sequential();
        let parallel = pooled(3, 4, chunk);
        let a = DeviceBuffer::from_slice(&data);
        let b = DeviceBuffer::from_slice(&data);

        let host_sum: u64 = data.iter().sum();
        prop_assert_eq!(primitives::reduce_sum(&sequential, &a), host_sum);
        prop_assert_eq!(primitives::reduce_sum(&parallel, &b), host_sum);

        let host_max = data.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(primitives::reduce_max(&sequential, &a), host_max);
        prop_assert_eq!(primitives::reduce_max(&parallel, &b), host_max);

        let (scan_seq, total_seq) = primitives::exclusive_prefix_sum(&sequential, &a);
        let (scan_par, total_par) = primitives::exclusive_prefix_sum(&parallel, &b);
        prop_assert_eq!(total_seq, host_sum);
        prop_assert_eq!(total_par, host_sum);
        prop_assert_eq!(scan_seq.to_vec(), scan_par.to_vec());
    }

    /// Both append representations — per-item and blocked claims — collect
    /// the same multiset of items under the pooled executor as under the
    /// sequential backend, whatever the chunk size does to the claim
    /// pattern.  Order is unspecified, membership is not.
    #[test]
    fn queue_appends_agree_across_backends(
        data in proptest::collection::vec(0u64..50_000, 0..3_000),
        chunk in 1usize..600,
        workers in 2usize..5,
    ) {
        let mut expected: Vec<u64> = data.iter().copied().filter(|v| v % 2 == 0).collect();
        expected.sort_unstable();
        for blocked in [false, true] {
            let sequential = VirtualGpu::sequential();
            let parallel = pooled(workers, 4, chunk);
            for gpu in [&sequential, &parallel] {
                let src = DeviceBuffer::from_slice(&data);
                // Blocked claims round the tail up to whole blocks, so give
                // every potential claimant (workers + the inline path) one
                // spare block of slack past the exact item count.
                let cap = data.len() + (workers + 1) * primitives::QUEUE_BLOCK;
                let items = DeviceBuffer::<u64>::new(cap, u64::MAX);
                let tail = DeviceBuffer::<u64>::new(1, 0);
                let overflow = DeviceBuffer::<u64>::new(1, 0);
                let queue = if blocked {
                    primitives::DeviceQueue::new_blocked(&items, &tail, &overflow)
                } else {
                    primitives::DeviceQueue::new(&items, &tail, &overflow)
                };
                gpu.launch("prop_queue", data.len(), |ctx| {
                    // Only even values are appended, so the claim pattern is
                    // data-dependent and divergent across chunks.
                    let v = src.get(ctx.global_id);
                    if v % 2 == 0 {
                        assert!(queue.push(ctx, v), "queue with block slack cannot overflow");
                    }
                    ctx.add_work(1);
                });
                prop_assert!(!queue.overflowed());
                // Blocked claims leave hole markers in partial blocks; the
                // live items are everything under the tail that isn't one.
                let mut got: Vec<u64> = items.to_vec()[..queue.len().min(cap)]
                    .iter()
                    .copied()
                    .filter(|&v| v != primitives::QUEUE_EMPTY)
                    .collect();
                got.sort_unstable();
                prop_assert_eq!(&got, &expected, "blocked={}", blocked);
            }
        }
    }

    /// A full worklist BFS reaches the same vertices at the same depths
    /// under both backends and under three representations — the dense
    /// stamp scan, the per-item queue tail, and the blocked-claim tail.
    /// Small domains force the blocked variant through its overflow path
    /// (block claims round past capacity and rebuild from stamps), so
    /// membership survives that too.
    #[test]
    fn worklist_queue_bfs_agrees_across_backends(
        n in 2usize..400,
        stride in 1usize..5,
        chunk in 1usize..300,
    ) {
        use gpm_gpu::{Worklist, WorklistKernels, WorklistMode};
        const NAMES: WorklistKernels = WorklistKernels {
            init: "wl_init",
            compact_count: "wl_count",
            compact_scatter: "wl_scatter",
            refill: "wl_refill",
            stitch: "wl_stitch",
        };
        let mut depths = Vec::new();
        for mode in WorklistMode::all() {
            let sequential = VirtualGpu::sequential();
            let parallel = pooled(3, 4, chunk);
            for gpu in [&sequential, &parallel] {
                let dist = DeviceBuffer::<u64>::new(n, u64::MAX);
                dist.set(0, 0);
                let mut wl = Worklist::new(gpu, mode, n, NAMES);
                wl.seed([0]);
                let mut level = 0u64;
                loop {
                    wl.for_each_frontier("wl_bfs", |ctx, v, frontier| {
                        ctx.add_work(1);
                        for w in [v.wrapping_sub(stride), v + stride, v + 1] {
                            if w < n && dist.get(w) == u64::MAX {
                                dist.set(w, level + 1);
                                frontier.push(ctx, w);
                            }
                        }
                    });
                    if !wl.advance_frontier() {
                        break;
                    }
                    level += 1;
                }
                depths.push(dist.to_vec());
            }
        }
        for d in &depths[1..] {
            prop_assert_eq!(&depths[0], d);
        }
    }
}
