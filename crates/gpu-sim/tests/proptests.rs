//! Property-based tests for the virtual GPU: launch coverage, buffer
//! round-trips, and device primitives vs host references, on both backends.

use gpm_gpu::{primitives, Backend, DeviceBuffer, ExecutorConfig, GpuConfig, VirtualGpu};
use gpm_testutil::arb_bipartite;
use proptest::prelude::*;

fn gpus() -> Vec<VirtualGpu> {
    vec![
        VirtualGpu::sequential(),
        VirtualGpu::new(
            GpuConfig::tesla_c2050(Backend::Parallel { workers: 3 })
                .with_executor(ExecutorConfig::default().with_parallel_threshold(16)),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_thread_runs_exactly_once(grid in 0usize..5000) {
        for gpu in gpus() {
            let hits = DeviceBuffer::<u32>::new(grid, 0);
            gpu.launch("prop_cover", grid, |ctx| {
                hits.set(ctx.global_id, hits.get(ctx.global_id) + 1);
            });
            prop_assert!(hits.to_vec().iter().all(|&h| h == 1));
        }
    }

    #[test]
    fn buffer_round_trips_arbitrary_contents(data in proptest::collection::vec(any::<i64>(), 0..500)) {
        let buf = DeviceBuffer::from_slice(&data);
        prop_assert_eq!(buf.to_vec(), data);
    }

    #[test]
    fn prefix_sum_matches_host_reference(data in proptest::collection::vec(0u64..1000, 0..2000)) {
        for gpu in gpus() {
            let buf = DeviceBuffer::from_slice(&data);
            let (scan, total) = primitives::exclusive_prefix_sum(&gpu, &buf);
            let mut expected = Vec::with_capacity(data.len());
            let mut acc = 0u64;
            for &v in &data {
                expected.push(acc);
                acc += v;
            }
            prop_assert_eq!(scan.to_vec(), expected);
            prop_assert_eq!(total, acc);
        }
    }

    #[test]
    fn reductions_match_host_reference(data in proptest::collection::vec(0u64..10_000, 0..1500)) {
        for gpu in gpus() {
            let buf = DeviceBuffer::from_slice(&data);
            prop_assert_eq!(primitives::reduce_sum(&gpu, &buf), data.iter().sum::<u64>());
            prop_assert_eq!(
                primitives::reduce_max(&gpu, &buf),
                data.iter().copied().max().unwrap_or(0)
            );
        }
    }

    #[test]
    fn degree_scatter_and_scan_reconstruct_csr_offsets(g in arb_bipartite()) {
        // The shrink kernel's core pattern: scatter per-column work counts
        // into a device buffer, prefix-sum them on the device, and check the
        // offsets against the CSR the graph crate built on the host.
        for gpu in gpus() {
            let degrees = DeviceBuffer::<u64>::new(g.num_rows(), 0);
            gpu.launch("prop_degree_scatter", g.num_rows(), |ctx| {
                let r = ctx.global_id as gpm_graph::VertexId;
                degrees.set(ctx.global_id, g.row_degree(r) as u64);
            });
            let (offsets, total) = primitives::exclusive_prefix_sum(&gpu, &degrees);
            prop_assert_eq!(total as usize, g.num_edges());
            let mut acc = 0u64;
            for (r, &offset) in offsets.to_vec().iter().enumerate() {
                prop_assert_eq!(offset, acc);
                acc += g.row_degree(r as gpm_graph::VertexId) as u64;
            }
        }
    }

    #[test]
    fn modelled_cost_is_monotone_in_work(threads in 1usize..100_000, work in 0u64..1_000_000) {
        let model = gpm_gpu::PerfModel::tesla_c2050();
        let base = model.launch_cost_ns(threads, work, work / threads.max(1) as u64 + 1);
        let more = model.launch_cost_ns(threads, work * 2 + 1, work / threads.max(1) as u64 + 1);
        prop_assert!(more >= base);
    }

    /// The atomic terms of the cost model are monotone too: more RMWs cost
    /// more, and shifting RMWs onto a single hot word costs strictly more
    /// than spreading the same count (serialization beats throughput).
    #[test]
    fn modelled_cost_is_monotone_in_atomics(
        threads in 1usize..100_000,
        work in 0u64..1_000_000,
        atomics in 0u64..100_000,
    ) {
        let model = gpm_gpu::PerfModel::tesla_c2050();
        let max_work = work / threads.max(1) as u64 + 1;
        let spread = model.launch_cost_with_atomics_ns(threads, work, max_work, atomics, 0);
        let more = model.launch_cost_with_atomics_ns(threads, work, max_work, atomics * 2 + 1, 0);
        prop_assert!(more > spread);
        let hot = model.launch_cost_with_atomics_ns(threads, work, max_work, atomics, atomics);
        prop_assert!(hot >= spread);
        if atomics > 0 {
            prop_assert!(hot > spread, "hot-word serialization must cost extra");
        }
        // And with no atomics at all, the extended form collapses to the
        // plain launch cost.
        let plain = model.launch_cost_ns(threads, work, max_work);
        let zero = model.launch_cost_with_atomics_ns(threads, work, max_work, 0, 0);
        prop_assert_eq!(plain, zero);
    }

    /// Overflow-forcing capacities: a blocked queue whose capacity cannot
    /// hold every rounded-up block claim must raise the overflow flag
    /// rather than corrupt memory — every slot under the clamped tail holds
    /// either a hole marker or a genuinely pushed value, never garbage.
    #[test]
    fn blocked_queue_overflow_is_flagged_and_items_stay_valid(
        pushes in 1usize..600,
        cap_slack in 0usize..64,
        chunk in 1usize..128,
        workers in 2usize..5,
    ) {
        use gpm_gpu::primitives::{DeviceQueue, QUEUE_BLOCK, QUEUE_EMPTY};
        let cap = cap_slack.min(pushes + (workers + 1) * QUEUE_BLOCK);
        for gpu in [
            VirtualGpu::sequential(),
            VirtualGpu::new(
                GpuConfig::tesla_c2050(Backend::Parallel { workers }).with_executor(
                    ExecutorConfig {
                        parallel_threshold: 4,
                        chunk_size: chunk,
                        ..Default::default()
                    },
                ),
            ),
        ] {
            let items = DeviceBuffer::<u64>::new(cap, QUEUE_EMPTY);
            let tail = DeviceBuffer::<u64>::new(1, 0);
            let overflow = DeviceBuffer::<u64>::new(1, 0);
            let queue = DeviceQueue::new_blocked(&items, &tail, &overflow);
            gpu.launch("prop_blocked_overflow", pushes, |ctx| {
                // The value encodes its producer, so corruption is
                // detectable: anything outside 1000..1000+pushes is junk.
                queue.push(ctx, 1_000 + ctx.global_id as u64);
            });
            let stored: Vec<u64> = items.to_vec()[..queue.len().min(cap)]
                .iter()
                .copied()
                .filter(|&v| v != QUEUE_EMPTY)
                .collect();
            for &v in &stored {
                prop_assert!(
                    (1_000..1_000 + pushes as u64).contains(&v),
                    "corrupt slot value {v}"
                );
            }
            // No duplicates: each claimed slot is exclusively owned.
            let mut sorted = stored.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), stored.len(), "duplicated slot values");
            if queue.overflowed() {
                // Some push was dropped; the stored prefix holds fewer
                // values than were pushed.
                prop_assert!(stored.len() < pushes);
            } else {
                // Every push landed.
                prop_assert_eq!(stored.len(), pushes);
            }
        }
    }
}
