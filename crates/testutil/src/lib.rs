//! # gpm-testutil — shared test support
//!
//! The one strategy every proptest suite in the workspace needs: arbitrary
//! bipartite graphs. Implemented as a *native* [`Strategy`] (not a
//! `prop_flat_map` chain) so that shrinking works directly on the generated
//! [`BipartiteCsr`]: failing graphs shrink by dropping edge subsets and
//! trimming the vertex sets, converging on small witnesses instead of
//! replaying giant random instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gpm_graph::{BipartiteCsr, VertexId};
use proptest::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy generating arbitrary bipartite graphs: `1..=max_rows` rows,
/// `1..=max_cols` columns, and up to `max_edges` random edges (duplicates
/// collapse in CSR construction, so dense shapes stay well-formed).
#[derive(Clone, Debug)]
pub struct ArbBipartite {
    /// Maximum number of row vertices (inclusive).
    pub max_rows: usize,
    /// Maximum number of column vertices (inclusive).
    pub max_cols: usize,
    /// Maximum number of edge draws (inclusive).
    pub max_edges: usize,
}

/// An arbitrary bipartite graph with the default bounds (≤ 40×40, ≤ 200
/// edge draws) — the shape the seed suites used ad hoc.
pub fn arb_bipartite() -> ArbBipartite {
    ArbBipartite { max_rows: 40, max_cols: 40, max_edges: 200 }
}

/// An arbitrary bipartite graph with explicit bounds.
pub fn arb_bipartite_with(max_rows: usize, max_cols: usize, max_edges: usize) -> ArbBipartite {
    assert!(max_rows >= 1 && max_cols >= 1, "graphs need at least one vertex per side");
    ArbBipartite { max_rows, max_cols, max_edges }
}

impl Strategy for ArbBipartite {
    type Value = BipartiteCsr;

    fn sample(&self, rng: &mut StdRng) -> BipartiteCsr {
        let m = rng.gen_range(1..=self.max_rows);
        let n = rng.gen_range(1..=self.max_cols);
        let target = rng.gen_range(0..=self.max_edges);
        let edges: Vec<(VertexId, VertexId)> = (0..target)
            .map(|_| (rng.gen_range(0..m) as VertexId, rng.gen_range(0..n) as VertexId))
            .collect();
        BipartiteCsr::from_edges(m, n, &edges).expect("in-bounds edges")
    }

    fn shrink(&self, value: &BipartiteCsr) -> Vec<BipartiteCsr> {
        let edges: Vec<(VertexId, VertexId)> = value.edges().collect();
        let m = value.num_rows();
        let n = value.num_cols();
        let mut out = Vec::new();
        let mut push = |m: usize, n: usize, edges: &[(VertexId, VertexId)]| {
            if let Ok(g) = BipartiteCsr::from_edges(m, n, edges) {
                out.push(g);
            }
        };
        // Edge-set shrinks: empty, halves, drop-one (bounded).
        if !edges.is_empty() {
            push(m, n, &[]);
            push(m, n, &edges[..edges.len() / 2]);
            push(m, n, &edges[edges.len() / 2..]);
            for i in 0..edges.len().min(8) {
                let mut fewer = edges.clone();
                fewer.remove(i);
                push(m, n, &fewer);
            }
        }
        // Dimension shrinks: halve each side, keeping only surviving edges.
        for (m2, n2) in [(m.div_ceil(2), n), (m, n.div_ceil(2)), (1, n), (m, 1)] {
            if (m2, n2) != (m, n) {
                let kept: Vec<_> = edges
                    .iter()
                    .copied()
                    .filter(|&(r, c)| (r as usize) < m2 && (c as usize) < n2)
                    .collect();
                push(m2, n2, &kept);
            }
        }
        // Drop shrinks that fail to change the graph (e.g. duplicate-only
        // edge removals), otherwise the runner loops on equal candidates.
        out.retain(|g| g != value);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn samples_are_valid_and_within_bounds() {
        let strat = arb_bipartite_with(10, 15, 60);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let g = strat.sample(&mut rng);
            g.validate().unwrap();
            assert!((1..=10).contains(&g.num_rows()));
            assert!((1..=15).contains(&g.num_cols()));
            assert!(g.num_edges() <= 60);
        }
    }

    #[test]
    fn shrink_candidates_are_valid_and_different() {
        let strat = arb_bipartite();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let g = strat.sample(&mut rng);
            for s in strat.shrink(&g) {
                s.validate().unwrap();
                assert!(s != g, "shrink produced an identical graph");
                assert!(s.num_edges() <= g.num_edges(), "shrinking must not add edges");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn usable_from_the_proptest_macro(g in arb_bipartite()) {
            g.validate().unwrap();
            prop_assert!(g.num_rows() >= 1 && g.num_cols() >= 1);
        }
    }
}
