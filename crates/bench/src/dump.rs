//! The canonical benchmark dump (`BENCH_<n>.json`) and its regression diff.
//!
//! One dump per PR captures the repo's perf trajectory in two sections:
//!
//! * **cells** — the canonical sweep: every Table I family (one
//!   representative instance each, [`mini_suite`]) × the paper's
//!   comparison algorithms, with the GPU algorithms expanded over all
//!   four worklist modes (`dense`, `compacted`, `queue`, `blocked`) and
//!   both execution modes (launch-per-round and the persistent
//!   `@resident` megakernel loop, keyed apart by the label suffix).  GPU
//!   cells
//!   report *modelled device seconds* — a deterministic function of the
//!   engine's round/work counters, independent of the host — and are
//!   marked `pinned: true`: CI diffs them strictly across dumps and fails
//!   on a >15 % regression.  CPU cells report host wall-clock and are
//!   informational only.
//! * **service** — the sharding comparison on the stress corpus: the same
//!   cached-job burst pushed through a single-pool baseline and a
//!   4-shard service with the same total worker count, the same
//!   *per-shard* cache capacity (deliberately smaller than the corpus, so
//!   the baseline thrashes while fingerprint-affinity placement keeps
//!   every graph resident on its home shard), and the same *per-shard*
//!   admission bound (so the shards also provide proportionally wider
//!   admission).  Clients retry rejected submissions, exactly like a real
//!   client facing `Overloaded`, so the submit metric measures how fast
//!   the service actually absorbs the burst under backpressure.  Clients
//!   follow the check-then-submit protocol: a graph absent from every
//!   cache is re-materialized from its edge list and shipped inline, so a
//!   miss costs what it costs a real client — and costs it in the submit
//!   phase, where the miss happens.
//!
//! Produce a dump with `gpm-bench --dump-bench BENCH_<n>.json`; gate a PR
//! with `gpm-bench --diff BENCH_<a>.json BENCH_<b>.json`.  By default a
//! pinned cell of the old dump that is *missing* from the new one is only
//! warned about (renamed sweeps should not hard-fail a lenient local run);
//! pass `--require-pinned` — CI does — to make vanished pinned cells fail
//! the gate.

use crate::runner::{measure, prepare_instance};
use gpm_core::solver::{self, Algorithm, DevicePolicy, Solver};
use gpm_core::{ExecMode, SolveCtx, WorklistMode};
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::instances::{mini_suite, InstanceSpec, Scale};
use gpm_graph::{BipartiteCsr, GraphDelta};
use gpm_service::{GraphSource, JobSpec, Service, ServiceError};
use serde::{Serialize, Value};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Dump format version, bumped on breaking shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured cell of the canonical sweep.
#[derive(Clone, Debug, Serialize)]
pub struct BenchCell {
    /// Instance name (the Table I matrix the stand-in represents).
    pub instance: String,
    /// Structural family of the instance.
    pub family: String,
    /// Round-trippable algorithm spec (without the worklist suffix, but
    /// *with* the `@resident` execution-mode suffix when the cell ran the
    /// persistent megakernel loop — persistent cells are distinct keys in
    /// the regression diff).
    pub algorithm: String,
    /// Worklist mode (`dense` / `compacted` / `queue` / `blocked`) or
    /// `host` for CPU algorithms.
    pub worklist: String,
    /// Comparable seconds: modelled device time for GPU cells, host
    /// wall-clock for CPU cells.
    pub seconds: f64,
    /// Host wall-clock seconds (informational).
    pub wall_seconds: f64,
    /// `true` iff `seconds` is deterministic (modelled) and therefore
    /// diffed strictly by the CI regression gate.
    pub pinned: bool,
}

/// One service configuration's results on the cached-burst workload.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceRun {
    /// Shard count.
    pub shards: usize,
    /// Workers per shard (total workers = `shards * workers_per_shard`).
    pub workers_per_shard: usize,
    /// Graph-cache capacity *per shard*.
    pub cache_capacity_per_shard: usize,
    /// Jobs in the burst (clients × rounds × corpus size).
    pub jobs: u64,
    /// Jobs whose graph was served from a shard cache.
    pub cache_hits: u64,
    /// Aggregate cache hit rate over the burst (`cache_hits / jobs`).
    pub cache_hit_rate: f64,
    /// Jobs whose graph had been evicted and had to be re-materialized
    /// from its edge list and re-uploaded inline.
    pub reuploads: u64,
    /// Admission bound *per shard* ([`ServiceBuilder::max_queue_depth`]).
    ///
    /// [`ServiceBuilder::max_queue_depth`]: gpm_service::ServiceBuilder::max_queue_depth
    pub queue_depth_per_shard: usize,
    /// `Overloaded` rejections clients had to retry through during the
    /// burst.
    pub admission_retries: u64,
    /// Mean per-client wall seconds until all of its jobs were *admitted*
    /// (rejection retries included).
    pub submit_seconds: f64,
    /// `jobs / submit_seconds`.
    pub submit_throughput_jobs_per_sec: f64,
    /// Wall seconds until every job (including re-uploads) completed.
    pub total_seconds: f64,
    /// `jobs / total_seconds`.
    pub throughput_jobs_per_sec: f64,
}

/// The single-pool baseline vs the sharded service on the same workload.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceComparison {
    /// One shard owning all workers and the whole (per-shard-sized) cache.
    pub baseline: ServiceRun,
    /// Four shards, same total workers, same per-shard cache capacity.
    pub sharded: ServiceRun,
}

/// One delta-vs-cold comparison: the same patched graph solved cold (from
/// the cheap initial matching) and warm (the parent's matching repaired
/// through the delta by [`Solver::resolve`]), in one worklist mode.
#[derive(Clone, Debug, Serialize)]
pub struct DeltaComparison {
    /// Parent instance name (a Table I family representative).
    pub instance: String,
    /// Structural family of the instance.
    pub family: String,
    /// Worklist mode of both measurements.
    pub worklist: String,
    /// Churn as a fraction of the parent's edges (`0.0001` = 0.01 %).
    pub churn_fraction: f64,
    /// Edges the delta actually touched.
    pub touched_edges: usize,
    /// Modelled device seconds of the cold solve of the patched graph.
    pub cold_seconds: f64,
    /// Modelled device seconds of the warm resolve.
    pub warm_seconds: f64,
    /// `cold_seconds / warm_seconds`, the headline ratio (>1 means the warm
    /// resolve won).  A zero-cost warm resolve divides by a small epsilon so
    /// the JSON stays finite.
    pub speedup: f64,
    /// `true` when the churn bound tripped the fallback and the "warm"
    /// measurement is really a cold solve under the resolve API.
    pub fell_back_to_cold: bool,
}

/// A complete dump.
#[derive(Clone, Debug, Serialize)]
pub struct BenchDump {
    /// Dump format version ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Instance scale the sweep ran at.
    pub scale: String,
    /// The canonical sweep (plus, from BENCH_8 on, the delta-vs-cold cells;
    /// both halves of every comparison are pinned — modelled seconds).
    pub cells: Vec<BenchCell>,
    /// The delta-vs-cold summary: speedups and fallback flags per
    /// (family × churn × worklist mode), backing the cells.
    pub deltas: Vec<DeltaComparison>,
    /// The sharding comparison.
    pub service: ServiceComparison,
}

/// Runs the canonical sweep over `specs`: GPU algorithms × all worklist
/// modes × both execution modes (pinned, modelled seconds) plus the CPU
/// comparison algorithms (unpinned, wall-clock).
///
/// Launch-per-round cells keep their historical keys (the exec mode never
/// appears in a default-mode label); persistent cells carry the `@resident`
/// suffix in their `algorithm` field and therefore arrive as *new* keys in
/// the diff, pinned against the next dump.
pub fn sweep_cells(specs: &[InstanceSpec], scale: Scale) -> Vec<BenchCell> {
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let mut cells = Vec::new();
    for spec in specs {
        let instance = prepare_instance(spec, scale);
        for algorithm in solver::paper_comparison_set() {
            let gpu = algorithm.label().starts_with("G-");
            let variants: Vec<(Algorithm, &'static str)> = if gpu {
                ExecMode::all()
                    .into_iter()
                    .flat_map(|exec| {
                        WorklistMode::all().into_iter().map(move |mode| {
                            (algorithm.with_worklist(mode).with_exec(exec), mode.label())
                        })
                    })
                    .collect()
            } else {
                vec![(algorithm, "host")]
            };
            for (variant, worklist) in variants {
                let m = measure(&instance, variant, &mut solver)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", variant, spec.name));
                let spec_label = match variant.exec() {
                    Some(exec) => algorithm.with_exec(exec).to_string(),
                    None => algorithm.to_string(),
                };
                cells.push(BenchCell {
                    instance: spec.name.to_string(),
                    family: format!("{:?}", spec.family),
                    algorithm: spec_label,
                    worklist: worklist.to_string(),
                    seconds: m.seconds,
                    wall_seconds: m.wall_seconds,
                    pinned: gpu,
                });
            }
        }
    }
    cells
}

/// The churn fractions of the delta sweep: 0.01 % to 10 % of the parent's
/// edges, the range the issue sweeps (a live-service patch is almost always
/// at the small end).
const DELTA_FRACTIONS: [(f64, &str); 4] =
    [(0.0001, "0.01%"), (0.001, "0.1%"), (0.01, "1%"), (0.1, "10%")];

/// Runs the delta-vs-cold sweep over `specs`: per family × churn fraction ×
/// worklist mode, solve the patched graph cold and warm-resolve it from the
/// parent's matching, both measured in modelled device seconds (pinned).
///
/// The delta removes `fraction × E` edges spaced evenly through the edge
/// list — deterministic, so the modelled seconds of both halves are exactly
/// reproducible across runs and machines.
pub fn sweep_delta(specs: &[InstanceSpec], scale: Scale) -> (Vec<BenchCell>, Vec<DeltaComparison>) {
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let algorithm_base = Algorithm::gpr_default();
    let mut cells = Vec::new();
    let mut comparisons = Vec::new();
    for spec in specs {
        let parent =
            spec.generate(scale).unwrap_or_else(|e| panic!("generating {} failed: {e}", spec.name));
        // The state a live service holds: the parent's last (maximum)
        // matching, computed once with the same engine family.
        let base = solver
            .solve(&parent, algorithm_base)
            .unwrap_or_else(|e| panic!("base solve on {}: {e}", spec.name));
        let edges: Vec<(u32, u32)> = parent.edges().collect();
        for (fraction, churn_label) in DELTA_FRACTIONS {
            let k = ((edges.len() as f64 * fraction).round() as usize).clamp(1, edges.len());
            let stride = (edges.len() / k).max(1);
            let mut delta = GraphDelta::new();
            delta.extend_removes(edges.iter().step_by(stride).take(k).copied());
            let (child, _) = parent
                .apply_delta_lineage(&delta)
                .unwrap_or_else(|e| panic!("delta on {}: {e}", spec.name));
            let touched = delta.touched_edge_bound(&child);
            let child_initial = cheap_matching(&child);
            let child_max = gpm_cpu::hopcroft_karp(&child, &child_initial).matching.cardinality();
            let instance = format!("{}+d{churn_label}", spec.name);
            for mode in WorklistMode::all() {
                let worklist = mode.label();
                let algorithm = algorithm_base.with_worklist(mode);
                let cold = solver
                    .solve_with_initial(&child, &child_initial, algorithm)
                    .unwrap_or_else(|e| panic!("cold {} on {instance}: {e}", algorithm));
                assert_eq!(cold.cardinality, child_max, "cold solve wrong on {instance}");
                let warm = solver
                    .resolve_prepared_ctx(
                        &child,
                        &base.matching,
                        &delta,
                        algorithm,
                        &SolveCtx::unbounded(),
                    )
                    .unwrap_or_else(|e| panic!("resolve {} on {instance}: {e}", algorithm));
                assert_eq!(warm.report.cardinality, child_max, "warm resolve wrong on {instance}");
                let cold_seconds = cold.modelled_device_seconds.expect("GPU cell is modelled");
                let warm_seconds =
                    warm.report.modelled_device_seconds.expect("GPU cell is modelled");
                for (tag, seconds, wall) in [
                    ("cold", cold_seconds, cold.wall_seconds),
                    ("resolve", warm_seconds, warm.report.wall_seconds),
                ] {
                    cells.push(BenchCell {
                        instance: instance.clone(),
                        family: format!("{:?}", spec.family),
                        algorithm: format!("{tag}({algorithm_base})"),
                        worklist: worklist.to_string(),
                        seconds,
                        wall_seconds: wall,
                        pinned: true,
                    });
                }
                comparisons.push(DeltaComparison {
                    instance: spec.name.to_string(),
                    family: format!("{:?}", spec.family),
                    worklist: worklist.to_string(),
                    churn_fraction: fraction,
                    touched_edges: touched,
                    cold_seconds,
                    warm_seconds,
                    speedup: cold_seconds / warm_seconds.max(1e-12),
                    fell_back_to_cold: warm.fell_back_to_cold,
                });
            }
        }
    }
    (cells, comparisons)
}

/// The burst parameters of the service comparison.
const BURST_CLIENTS: usize = 8;
const BURST_ROUNDS: usize = 24;
/// Per-shard cache capacity: smaller than the 8-graph corpus, so a single
/// pool cannot keep the working set resident but 4 shards (4 × capacity
/// slots, ~2 resident graphs each under affinity) can.
const CACHE_PER_SHARD: usize = 4;
/// Per-shard admission bound: well under the burst size, so admission is
/// governed by how fast the service drains — the single pool by one
/// queue's bound, the shards by four.
const QUEUE_DEPTH_PER_SHARD: usize = 48;

/// A graph's wire form: shape plus edge list, what a client would hold.
type WireGraph = (usize, usize, Vec<(u32, u32)>);

/// Pushes the cached-job burst through one service configuration.
fn run_service(
    shards: usize,
    workers_per_shard: usize,
    graphs: &[Arc<BipartiteCsr>],
) -> ServiceRun {
    let service = Arc::new(
        Service::builder()
            .shards(shards)
            .workers(workers_per_shard)
            .cache_capacity(CACHE_PER_SHARD)
            .max_queue_depth(QUEUE_DEPTH_PER_SHARD)
            .device_policy(DevicePolicy::Sequential)
            .build(),
    );
    let fingerprints: Vec<u64> = graphs.iter().map(|g| service.put_graph(Arc::clone(g))).collect();
    // What a re-upload costs a real client: the graph only exists as its
    // wire form (shape + edge list) and must be re-materialized.
    let uploads: Vec<WireGraph> =
        graphs.iter().map(|g| (g.num_rows(), g.num_cols(), g.edges().collect())).collect();

    // A submission that may already have resolved: admission rejections
    // complete the handle synchronously, so a retrying client learns its
    // fate without blocking on the solve.
    enum Pending {
        Done(Result<gpm_service::JobOutcome, ServiceError>),
        Wait(gpm_service::JobHandle),
    }

    /// Submits until admitted, yielding to the workers on every
    /// `Overloaded` rejection.  Returns the admitted job plus how many
    /// rejections were retried through.
    fn submit_admitted(service: &Service, mut spec: impl FnMut() -> JobSpec) -> (Pending, u64) {
        let mut retries = 0u64;
        loop {
            let handle = service.submit(spec());
            if !handle.is_done() {
                return (Pending::Wait(handle), retries);
            }
            match handle.wait() {
                Err(ServiceError::Overloaded { .. }) => {
                    retries += 1;
                    std::thread::yield_now();
                }
                done => return (Pending::Done(done), retries),
            }
        }
    }

    let jobs = (BURST_CLIENTS * BURST_ROUNDS * graphs.len()) as u64;
    let start_line = Barrier::new(BURST_CLIENTS);
    let mut submit_sum = Duration::ZERO;
    let mut total_seconds = Duration::ZERO;
    let mut cache_hits = 0u64;
    let mut reuploads = 0u64;
    let mut admission_retries = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..BURST_CLIENTS)
            .map(|client| {
                let service = Arc::clone(&service);
                let fingerprints = &fingerprints;
                let uploads = &uploads;
                let start_line = &start_line;
                scope.spawn(move || {
                    start_line.wait();
                    let started = Instant::now();
                    let mut retries = 0u64;
                    let mut reuploaded = 0u64;
                    // Submit the whole burst back-to-back before waiting on
                    // any result, retrying rejections until admitted: with
                    // every client hammering a bounded service at once, the
                    // submit metric measures how fast admission actually
                    // absorbs the burst — queue width plus drain rate —
                    // not an idle-service sprint.
                    let pending: Vec<(usize, Pending)> = (0..BURST_ROUNDS)
                        .flat_map(|round| {
                            (0..fingerprints.len())
                                .map(move |offset| (offset + client + round) % fingerprints.len())
                        })
                        .map(|i| {
                            // Check-then-submit: refer to the graph by
                            // fingerprint while some shard holds it, else
                            // pay the miss right here — re-materialize
                            // from the wire form and ship it inline.
                            let (admitted, rejections) = if service.contains_graph(fingerprints[i])
                            {
                                submit_admitted(&service, || {
                                    JobSpec::new(
                                        GraphSource::Cached(fingerprints[i]),
                                        Algorithm::HopcroftKarp,
                                    )
                                })
                            } else {
                                let (rows, cols, edges) = &uploads[i];
                                let graph = Arc::new(
                                    BipartiteCsr::from_edges(*rows, *cols, edges)
                                        .expect("re-materialize upload"),
                                );
                                reuploaded += 1;
                                submit_admitted(&service, || {
                                    JobSpec::new(Arc::clone(&graph), Algorithm::HopcroftKarp)
                                })
                            };
                            retries += rejections;
                            (i, admitted)
                        })
                        .collect();
                    let submitted = started.elapsed();
                    let mut hits = 0u64;
                    for (i, admitted) in pending {
                        let result = match admitted {
                            Pending::Done(result) => result,
                            Pending::Wait(handle) => handle.wait(),
                        };
                        match result {
                            Ok(outcome) => hits += u64::from(outcome.cache_hit),
                            Err(ServiceError::UnknownGraph { .. }) => {
                                // Evicted: pay the real miss penalty —
                                // rebuild from the wire form and re-upload.
                                let (rows, cols, edges) = &uploads[i];
                                let graph = Arc::new(
                                    BipartiteCsr::from_edges(*rows, *cols, edges)
                                        .expect("re-materialize upload"),
                                );
                                reuploaded += 1;
                                let (resubmitted, rejections) = submit_admitted(&service, || {
                                    JobSpec::new(Arc::clone(&graph), Algorithm::HopcroftKarp)
                                });
                                retries += rejections;
                                let result = match resubmitted {
                                    Pending::Done(result) => result,
                                    Pending::Wait(handle) => handle.wait(),
                                };
                                result.expect("re-uploaded solve");
                            }
                            Err(other) => panic!("burst job on graph {i}: {other}"),
                        }
                    }
                    (submitted, started.elapsed(), hits, reuploaded, retries)
                })
            })
            .collect();
        for handle in handles {
            let (submitted, total, hits, reuploaded, retries) =
                handle.join().expect("burst client");
            submit_sum += submitted;
            total_seconds = total_seconds.max(total);
            cache_hits += hits;
            reuploads += reuploaded;
            admission_retries += retries;
        }
    });

    // The submit metric is the *mean* per-client time to get its share of
    // the burst admitted; with bounded queues this phase lasts long enough
    // (hundreds of milliseconds) to be robust against scheduler noise.
    let submit_seconds = submit_sum.as_secs_f64() / BURST_CLIENTS as f64;
    ServiceRun {
        shards,
        workers_per_shard,
        cache_capacity_per_shard: CACHE_PER_SHARD,
        jobs,
        cache_hits,
        cache_hit_rate: cache_hits as f64 / jobs as f64,
        reuploads,
        queue_depth_per_shard: QUEUE_DEPTH_PER_SHARD,
        admission_retries,
        submit_seconds,
        submit_throughput_jobs_per_sec: jobs as f64 / submit_seconds,
        total_seconds: total_seconds.as_secs_f64(),
        throughput_jobs_per_sec: jobs as f64 / total_seconds.as_secs_f64(),
    }
}

/// Samples one configuration [`SERVICE_SAMPLES`] times and keeps the
/// peak-admission sample: the submit metric is the one at the mercy of
/// scheduler noise (a preempted client thread inflates its submit time by
/// a whole quantum), and best-of-N is the standard way to report peak
/// throughput.
fn best_service_run(
    shards: usize,
    workers_per_shard: usize,
    graphs: &[Arc<BipartiteCsr>],
) -> ServiceRun {
    (0..SERVICE_SAMPLES)
        .map(|_| run_service(shards, workers_per_shard, graphs))
        .max_by(|a, b| {
            a.submit_throughput_jobs_per_sec.total_cmp(&b.submit_throughput_jobs_per_sec)
        })
        .expect("at least one sample")
}

/// Samples per service configuration (best one is reported).
const SERVICE_SAMPLES: usize = 3;

/// Runs the sharding comparison: single pool vs 4 shards, equal total
/// workers, equal per-shard cache capacity.
pub fn service_comparison() -> ServiceComparison {
    let graphs: Vec<Arc<BipartiteCsr>> = mini_suite()
        .iter()
        .map(|spec| Arc::new(spec.generate(Scale::Tiny).expect("generate")))
        .collect();
    ServiceComparison {
        baseline: best_service_run(1, 4, &graphs),
        sharded: best_service_run(4, 1, &graphs),
    }
}

/// Produces the full dump at `scale`.
pub fn produce(scale: Scale) -> BenchDump {
    let mut cells = sweep_cells(&mini_suite(), scale);
    let (delta_cells, deltas) = sweep_delta(&mini_suite(), scale);
    cells.extend(delta_cells);
    BenchDump {
        schema: SCHEMA_VERSION,
        scale: format!("{scale:?}").to_lowercase(),
        cells,
        deltas,
        service: service_comparison(),
    }
}

/// The outcome of diffing two dumps' pinned cells.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Pinned cells present in both dumps.
    pub compared: usize,
    /// `(cell key, old seconds, new seconds)` for cells slower by more
    /// than the allowed factor.
    pub regressions: Vec<(String, f64, f64)>,
    /// Pinned cells of the old dump missing from the new one.  Whether
    /// these fail the gate is decided by `require_pinned`.
    pub missing: Vec<String>,
    /// `true` when missing pinned cells fail the gate (CI's
    /// `--require-pinned`); `false` degrades them to warnings.
    pub require_pinned: bool,
    /// `(cell key, old seconds, new seconds)` for cells that got faster.
    pub improvements: Vec<(String, f64, f64)>,
    /// Cells that exist only in the newer dump.  Informational — a new cell
    /// has no baseline, so it cannot regress; it is reported (rather than
    /// silently ignored) so freshly added sweeps are visible in the gate
    /// output, and becomes pinned against the *next* dump.
    pub new_cells: Vec<String>,
}

impl DiffReport {
    /// `true` iff the new dump passes the gate: no regression, and — under
    /// `require_pinned` — no pinned cell of the old dump missing from the
    /// new one.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && (!self.require_pinned || self.missing.is_empty())
    }
}

fn pinned_cells(dump: &Value) -> Result<Vec<(String, f64)>, String> {
    let cells = dump
        .get("cells")
        .and_then(Value::as_seq)
        .ok_or_else(|| "dump has no 'cells' array".to_string())?;
    let mut out = Vec::new();
    for cell in cells {
        if cell.get("pinned").and_then(Value::as_bool) != Some(true) {
            continue;
        }
        let field = |name: &str| {
            cell.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("pinned cell missing '{name}'"))
        };
        let key =
            format!("{} / {} + {}", field("instance")?, field("algorithm")?, field("worklist")?);
        let seconds = cell
            .get("seconds")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("cell '{key}' has no numeric 'seconds'"))?;
        out.push((key, seconds));
    }
    Ok(out)
}

/// Diffs two parsed dumps: every pinned cell of `old` present in `new`
/// must be no more than `max_regression` (fractional, e.g. `0.15`) slower.
/// With `require_pinned`, a pinned `old` cell absent from `new` also fails
/// the gate; without it, missing cells are reported but only warn.
pub fn diff(
    old: &Value,
    new: &Value,
    max_regression: f64,
    require_pinned: bool,
) -> Result<DiffReport, String> {
    let old_cells = pinned_cells(old)?;
    let new_cells: std::collections::BTreeMap<String, f64> =
        pinned_cells(new)?.into_iter().collect();
    let mut report = DiffReport { require_pinned, ..DiffReport::default() };
    let old_keys: std::collections::BTreeSet<String> =
        old_cells.iter().map(|(key, _)| key.clone()).collect();
    report.new_cells = new_cells.keys().filter(|key| !old_keys.contains(*key)).cloned().collect();
    for (key, old_seconds) in old_cells {
        let Some(&new_seconds) = new_cells.get(&key) else {
            report.missing.push(key);
            continue;
        };
        report.compared += 1;
        // A zero-cost old cell can only regress by becoming non-zero.
        let regressed = if old_seconds > 0.0 {
            (new_seconds - old_seconds) / old_seconds > max_regression
        } else {
            new_seconds > 0.0
        };
        if regressed {
            report.regressions.push((key, old_seconds, new_seconds));
        } else if new_seconds < old_seconds {
            report.improvements.push((key, old_seconds, new_seconds));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::instances;

    fn dump_with(cells: &[(&str, f64, bool)]) -> Value {
        serde_json::from_str(
            &serde_json::to_string(&Value::Map(vec![(
                "cells".to_string(),
                Value::Seq(
                    cells
                        .iter()
                        .map(|(name, seconds, pinned)| {
                            Value::Map(vec![
                                ("instance".to_string(), Value::Str(name.to_string())),
                                ("algorithm".to_string(), Value::Str("G-PR-Shr".to_string())),
                                ("worklist".to_string(), Value::Str("dense".to_string())),
                                ("seconds".to_string(), Value::F64(*seconds)),
                                ("pinned".to_string(), Value::Bool(*pinned)),
                            ])
                        })
                        .collect(),
                ),
            )]))
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn diff_flags_regressions_missing_cells_and_improvements() {
        let old = dump_with(&[("a", 1.0, true), ("b", 2.0, true), ("c", 9.0, false)]);
        let new = dump_with(&[("a", 1.2, true), ("d", 1.0, true)]);
        let report = diff(&old, &new, 0.15, true).unwrap();
        assert_eq!(report.compared, 1);
        assert_eq!(report.regressions.len(), 1, "a regressed 20% > 15%");
        assert_eq!(report.missing.len(), 1, "pinned cell b vanished");
        assert!(!report.passed());
        // Newer-only cells are reported, not silently ignored — and they
        // never fail the gate (no baseline to regress against).
        assert_eq!(report.new_cells.len(), 1, "cell d is new");
        assert!(report.new_cells[0].starts_with("d /"), "{:?}", report.new_cells);

        let ok = diff(&old, &dump_with(&[("a", 1.1, true), ("b", 1.5, true)]), 0.15, true).unwrap();
        assert_eq!(ok.compared, 2);
        assert!(ok.passed());
        assert_eq!(ok.improvements.len(), 1, "b sped up");
        // Unpinned cells are never part of the gate.
        assert!(ok.missing.is_empty());
        assert!(ok.new_cells.is_empty());
    }

    #[test]
    fn missing_pinned_cells_fail_only_under_require_pinned() {
        let old = dump_with(&[("a", 1.0, true), ("b", 2.0, true)]);
        let new = dump_with(&[("a", 1.0, true)]);
        // Lenient default: the vanished cell is reported but only warns.
        let lenient = diff(&old, &new, 0.15, false).unwrap();
        assert_eq!(lenient.missing.len(), 1);
        assert!(lenient.passed(), "lenient diff warns on missing cells");
        // CI's strict mode: the same diff fails.
        let strict = diff(&old, &new, 0.15, true).unwrap();
        assert_eq!(strict.missing.len(), 1);
        assert!(!strict.passed(), "--require-pinned fails on missing cells");
        // Regressions fail either way.
        let regressed =
            diff(&old, &dump_with(&[("a", 2.0, true), ("b", 2.0, true)]), 0.15, false).unwrap();
        assert!(!regressed.passed());
    }

    #[test]
    fn diff_rejects_malformed_dumps() {
        let bad: Value = serde_json::from_str("{\"cells\": 3}").unwrap();
        assert!(diff(&bad, &bad, 0.15, true).is_err());
    }

    #[test]
    fn sweep_emits_pinned_gpu_cells_for_every_worklist_and_exec_mode() {
        let specs = vec![instances::by_name("amazon0505").unwrap()];
        let cells = sweep_cells(&specs, Scale::Tiny);
        // 2 GPU algorithms × 4 worklist modes × 2 exec modes + 2 CPU
        // algorithms.
        assert_eq!(cells.len(), 18);
        assert_eq!(cells.iter().filter(|c| c.pinned).count(), 16);
        for mode in WorklistMode::all() {
            assert_eq!(cells.iter().filter(|c| c.worklist == mode.label()).count(), 4, "{mode}");
        }
        // Persistent cells are keyed apart by the `@resident` suffix; the
        // launch-per-round cells keep their historical suffix-free keys.
        assert_eq!(cells.iter().filter(|c| c.algorithm.ends_with("@resident")).count(), 8);
        // The dump round-trips through serde_json and keeps its cell keys.
        let json = serde_json::to_string(&Value::Map(vec![(
            "cells".to_string(),
            Value::Seq(cells.iter().map(Serialize::to_value).collect()),
        )]))
        .unwrap();
        let parsed: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(pinned_cells(&parsed).unwrap().len(), 16);
    }

    #[test]
    fn delta_sweep_is_deterministic_and_covers_every_fraction_and_mode() {
        let specs = vec![instances::by_name("amazon0505").unwrap()];
        let (cells, comparisons) = sweep_delta(&specs, Scale::Tiny);
        // 4 churn fractions × 4 worklist modes × {cold, resolve}.
        assert_eq!(cells.len(), 32);
        assert!(cells.iter().all(|c| c.pinned), "delta cells are all pinned");
        assert_eq!(comparisons.len(), 16);
        for (fraction, label) in DELTA_FRACTIONS {
            assert_eq!(
                comparisons.iter().filter(|c| c.churn_fraction == fraction).count(),
                4,
                "{label}"
            );
            assert_eq!(
                cells.iter().filter(|c| c.instance.ends_with(&format!("+d{label}"))).count(),
                8,
                "{label}"
            );
        }
        // The strided removals are deterministic: a second sweep reproduces
        // the modelled seconds exactly, so the cells are safe to pin.
        let (again, _) = sweep_delta(&specs, Scale::Tiny);
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.seconds, b.seconds, "{} / {} + {}", a.instance, a.algorithm, a.worklist);
        }
    }
}
