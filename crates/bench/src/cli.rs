//! Minimal command-line parsing shared by the figure/table binaries.
//!
//! All binaries accept:
//!
//! * `--scale tiny|small|medium|large` — instance scale (default: `small`);
//! * `--suite mini|full` — the 8-instance mini suite or the full 28-instance
//!   suite (default: `full`);
//! * `--json <path>` — additionally write the raw measurements as JSON.

use gpm_graph::instances::{self, InstanceSpec, Scale};

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Instance scale.
    pub scale: Scale,
    /// Selected instance specs.
    pub suite: Vec<InstanceSpec>,
    /// Human-readable suite name ("full" or "mini").
    pub suite_name: String,
    /// Optional path for a JSON dump of the measurements.
    pub json_path: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            suite: instances::paper_suite(),
            suite_name: "full".to_string(),
            json_path: None,
        }
    }
}

/// Parses options from an argument iterator (excluding the program name).
/// Unknown arguments produce an error message listing the supported flags.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let value = it.next().ok_or("--scale requires a value")?;
                opts.scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--suite" => {
                let value = it.next().ok_or("--suite requires a value")?;
                match value.as_str() {
                    "full" => {
                        opts.suite = instances::paper_suite();
                        opts.suite_name = "full".into();
                    }
                    "mini" => {
                        opts.suite = instances::mini_suite();
                        opts.suite_name = "mini".into();
                    }
                    other => return Err(format!("unknown suite '{other}'")),
                }
            }
            "--json" => {
                opts.json_path = Some(it.next().ok_or("--json requires a path")?);
            }
            "--help" | "-h" => {
                return Err(usage());
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Usage string shared by all binaries.
pub fn usage() -> String {
    "usage: <binary> [--scale tiny|small|medium|large] [--suite full|mini] [--json <path>]"
        .to_string()
}

/// Parses `std::env::args()` and exits with a message on error.
pub fn parse_or_exit() -> Options {
    match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Writes measurements as JSON if `--json` was given.
pub fn maybe_write_json<T: serde::Serialize>(opts: &Options, value: &T) {
    if let Some(path) = &opts.json_path {
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("warning: could not serialize results: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_small_full() {
        let o = parse(args(&[])).unwrap();
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.suite.len(), 28);
        assert_eq!(o.suite_name, "full");
        assert!(o.json_path.is_none());
    }

    #[test]
    fn parses_scale_suite_and_json() {
        let o =
            parse(args(&["--scale", "tiny", "--suite", "mini", "--json", "/tmp/x.json"])).unwrap();
        assert_eq!(o.scale, Scale::Tiny);
        assert!(o.suite.len() < 28);
        assert_eq!(o.json_path.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn rejects_unknown_arguments_and_values() {
        assert!(parse(args(&["--scale", "huge"])).is_err());
        assert!(parse(args(&["--suite", "everything"])).is_err());
        assert!(parse(args(&["--frobnicate"])).is_err());
        assert!(parse(args(&["--scale"])).is_err());
        assert!(parse(args(&["--help"])).is_err());
    }
}
