//! Minimal command-line parsing shared by the figure/table binaries.
//!
//! All binaries accept:
//!
//! * `--scale tiny|small|medium|large` — instance scale (default: `small`);
//! * `--suite mini|full` — the 8-instance mini suite or the full 28-instance
//!   suite (default: `full`);
//! * `--algorithms <spec,...>` — comma-separated algorithm labels parsed via
//!   `Algorithm::from_str` (e.g. `G-PR-Shr@adaptive:0.7,P-DBFS@4,PR`),
//!   overriding the paper's four-algorithm comparison set;
//! * `--json <path>` — additionally write the raw measurements as JSON.

use gpm_core::solver::{self, Algorithm};
use gpm_graph::instances::{self, InstanceSpec, Scale};

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Instance scale.
    pub scale: Scale,
    /// Selected instance specs.
    pub suite: Vec<InstanceSpec>,
    /// Human-readable suite name ("full" or "mini").
    pub suite_name: String,
    /// Algorithm selection from `--algorithms`, if given.
    pub algorithms: Option<Vec<Algorithm>>,
    /// Optional path for a JSON dump of the measurements.
    pub json_path: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            suite: instances::paper_suite(),
            suite_name: "full".to_string(),
            algorithms: None,
            json_path: None,
        }
    }
}

impl Options {
    /// The algorithms to compare: the `--algorithms` selection, or the
    /// paper's four-algorithm comparison set.
    pub fn comparison_algorithms(&self) -> Vec<Algorithm> {
        self.algorithms.clone().unwrap_or_else(solver::paper_comparison_set)
    }
}

/// Parses options from an argument iterator (excluding the program name).
/// Unknown arguments produce an error message listing the supported flags.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let value = it.next().ok_or("--scale requires a value")?;
                opts.scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--suite" => {
                let value = it.next().ok_or("--suite requires a value")?;
                match value.as_str() {
                    "full" => {
                        opts.suite = instances::paper_suite();
                        opts.suite_name = "full".into();
                    }
                    "mini" => {
                        opts.suite = instances::mini_suite();
                        opts.suite_name = "mini".into();
                    }
                    other => return Err(format!("unknown suite '{other}'")),
                }
            }
            "--algorithms" => {
                let value = it.next().ok_or("--algorithms requires a comma-separated list")?;
                let algorithms: Vec<Algorithm> = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        let alg: Algorithm = s.parse().map_err(|e| format!("{e}"))?;
                        alg.validate().map_err(|e| format!("{e}"))?;
                        Ok(alg)
                    })
                    .collect::<Result<_, String>>()?;
                if algorithms.is_empty() {
                    return Err("--algorithms requires at least one algorithm".into());
                }
                opts.algorithms = Some(algorithms);
            }
            "--json" => {
                opts.json_path = Some(it.next().ok_or("--json requires a path")?);
            }
            "--help" | "-h" => {
                return Err(usage());
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Usage string shared by all binaries.
pub fn usage() -> String {
    "usage: <binary> [--scale tiny|small|medium|large] [--suite full|mini] \
     [--algorithms <spec,...>] [--json <path>]\n\
     algorithm specs: G-PR-First|G-PR-NoShr|G-PR-Shr[@adaptive:<k>|@fix:<k>], \
     G-HK, G-HKDW, PR[@<k>], PFP, HK, HKDW, P-DBFS[@<threads>]\n\
     GPU specs accept a worklist suffix +dense|+compacted|+queue|+blocked \
     (e.g. G-PR-Shr@adaptive:0.7+queue, G-HKDW+blocked) and a final \
     execution-mode suffix @launch|@resident \
     (e.g. G-PR-Shr@adaptive:0.7+blocked@resident); \
     see gpm-bench --list-algorithms for the full grammar"
        .to_string()
}

/// The full algorithm-label grammar, enumerated: the grammar rule, then
/// every GPU family × worklist mode × execution mode, then the CPU
/// baselines.  Every non-comment line after a section header is a
/// round-trippable [`Algorithm`] label (`gpm-bench --list-algorithms`).
pub fn label_grammar() -> String {
    use gpm_core::{ExecMode, GhkVariant, GprVariant, GrStrategy, WorklistMode};
    let mut out = String::from(
        "algorithm label grammar:\n\
         \u{20} <family>[@<strategy>][+<worklist>][@<exec>]\n\
         \u{20} families:  G-PR-First | G-PR-NoShr | G-PR-Shr  \
         (strategy @adaptive:<k> | @fix:<k>, default @adaptive:0.7)\n\
         \u{20}            G-HK | G-HKDW | PR[@<k>] | PFP | HK | HKDW | P-DBFS[@<threads>]\n\
         \u{20} worklist (GPU only):  +dense | +compacted | +queue | +blocked  \
         (default: the family's paper representation, printed suffix-free)\n\
         \u{20} exec (GPU only):  @launch (default: one kernel launch per round) | \
         @resident (persistent megakernel round loop behind the device's \
         software global barrier)\n",
    );
    out.push_str("\nGPU labels (family x worklist x exec):\n");
    for algorithm in [
        Algorithm::gpr(GprVariant::First, GrStrategy::paper_default()),
        Algorithm::gpr(GprVariant::ActiveList, GrStrategy::paper_default()),
        Algorithm::gpr(GprVariant::Shrink, GrStrategy::paper_default()),
        Algorithm::ghk(GhkVariant::Hk),
        Algorithm::ghk(GhkVariant::Hkdw),
    ] {
        for mode in WorklistMode::all() {
            for exec in ExecMode::all() {
                out.push_str("  ");
                out.push_str(&algorithm.with_worklist(mode).with_exec(exec).to_string());
                out.push('\n');
            }
        }
    }
    out.push_str("\nCPU labels (shown with their defaults spelled out):\n");
    for algorithm in [
        Algorithm::SequentialPushRelabel(0.5),
        Algorithm::PothenFan,
        Algorithm::HopcroftKarp,
        Algorithm::Hkdw,
        Algorithm::Pdbfs(8),
    ] {
        out.push_str("  ");
        out.push_str(&algorithm.to_string());
        out.push('\n');
    }
    out
}

/// Parses `std::env::args()` and exits with a message on error.
pub fn parse_or_exit() -> Options {
    match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Writes measurements as JSON if `--json` was given.
pub fn maybe_write_json<T: serde::Serialize>(opts: &Options, value: &T) {
    if let Some(path) = &opts.json_path {
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("warning: could not serialize results: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_small_full() {
        let o = parse(args(&[])).unwrap();
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.suite.len(), 28);
        assert_eq!(o.suite_name, "full");
        assert!(o.json_path.is_none());
    }

    #[test]
    fn parses_scale_suite_and_json() {
        let o =
            parse(args(&["--scale", "tiny", "--suite", "mini", "--json", "/tmp/x.json"])).unwrap();
        assert_eq!(o.scale, Scale::Tiny);
        assert!(o.suite.len() < 28);
        assert_eq!(o.json_path.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn rejects_unknown_arguments_and_values() {
        assert!(parse(args(&["--scale", "huge"])).is_err());
        assert!(parse(args(&["--suite", "everything"])).is_err());
        assert!(parse(args(&["--frobnicate"])).is_err());
        assert!(parse(args(&["--scale"])).is_err());
        assert!(parse(args(&["--help"])).is_err());
    }

    #[test]
    fn parses_algorithm_specs_via_fromstr() {
        let o = parse(args(&["--algorithms", "G-PR-Shr@adaptive:0.7,P-DBFS@4,PR"])).unwrap();
        let algs = o.algorithms.unwrap();
        assert_eq!(algs.len(), 3);
        assert_eq!(algs[0], gpm_core::solver::Algorithm::gpr_default());
        assert_eq!(algs[1], gpm_core::solver::Algorithm::Pdbfs(4));
        assert_eq!(algs[2], gpm_core::solver::Algorithm::SequentialPushRelabel(0.5));
    }

    #[test]
    fn parses_worklist_mode_suffixes() {
        let o =
            parse(args(&["--algorithms", "G-PR-Shr@adaptive:0.7+queue,G-HKDW+blocked"])).unwrap();
        let algs = o.algorithms.unwrap();
        assert_eq!(
            algs[0],
            gpm_core::solver::Algorithm::gpr_default()
                .with_worklist(gpm_core::WorklistMode::AtomicQueue)
        );
        assert_eq!(
            algs[1],
            gpm_core::solver::Algorithm::ghk(gpm_core::GhkVariant::Hkdw)
                .with_worklist(gpm_core::WorklistMode::BlockedQueue)
        );
        // Junk suffixes are rejected with a parse error.
        assert!(parse(args(&["--algorithms", "G-PR-Shr+stack"])).is_err());
        assert!(parse(args(&["--algorithms", "HK+queue"])).is_err());
    }

    #[test]
    fn parses_exec_mode_suffixes() {
        let o = parse(args(&[
            "--algorithms",
            "G-PR-Shr@adaptive:0.7+blocked@resident,G-HKDW@resident",
        ]))
        .unwrap();
        let algs = o.algorithms.unwrap();
        assert_eq!(
            algs[0],
            gpm_core::solver::Algorithm::gpr_default()
                .with_worklist(gpm_core::WorklistMode::BlockedQueue)
                .with_exec(gpm_core::ExecMode::Persistent)
        );
        assert_eq!(
            algs[1],
            gpm_core::solver::Algorithm::ghk(gpm_core::GhkVariant::Hkdw)
                .with_exec(gpm_core::ExecMode::Persistent)
        );
        assert!(parse(args(&["--algorithms", "HK@resident"])).is_err());
    }

    #[test]
    fn every_enumerated_grammar_label_round_trips() {
        let grammar = label_grammar();
        let mut labels = Vec::new();
        let mut in_labels = false;
        for line in grammar.lines() {
            if line.ends_with(':') {
                in_labels = line.starts_with("GPU labels") || line.starts_with("CPU labels");
                continue;
            }
            if in_labels && !line.trim().is_empty() {
                labels.push(line.trim());
            }
        }
        // 5 GPU families × 4 worklist modes × 2 exec modes + 5 CPU labels.
        assert_eq!(labels.len(), 45, "{grammar}");
        for label in labels {
            let alg: Algorithm = label.parse().unwrap_or_else(|e| panic!("{label}: {e}"));
            // Default suffixes are allowed to vanish when re-printed, but
            // re-parsing the printed form must be a fixed point.
            let printed = alg.to_string();
            assert_eq!(printed.parse::<Algorithm>().unwrap(), alg, "{label}");
        }
        assert!(grammar.contains("@resident"), "{grammar}");
    }

    #[test]
    fn default_comparison_set_is_the_papers() {
        let o = parse(args(&[])).unwrap();
        assert!(o.algorithms.is_none());
        assert_eq!(o.comparison_algorithms().len(), 4);
    }

    #[test]
    fn rejects_bad_or_invalid_algorithm_specs() {
        assert!(parse(args(&["--algorithms", "G-XYZ"])).is_err());
        assert!(parse(args(&["--algorithms", ""])).is_err());
        assert!(parse(args(&["--algorithms"])).is_err());
        // Parses but fails validation: zero threads.
        assert!(parse(args(&["--algorithms", "P-DBFS@0"])).is_err());
    }
}
