//! Text-report formatting: geometric means, aligned tables, and profile
//! curve printing shared by the figure/table binaries.

use crate::profiles::ProfilePoint;
use crate::runner::Measurement;
use std::collections::BTreeMap;

/// Geometric mean of positive values (the aggregate the paper reports).
pub fn geometric_mean(values: &[f64]) -> f64 {
    gpm_graph::stats::geometric_mean(values)
}

/// Groups measurements by algorithm label, preserving instance order.
pub fn by_algorithm(measurements: &[Measurement]) -> BTreeMap<String, Vec<&Measurement>> {
    let mut map: BTreeMap<String, Vec<&Measurement>> = BTreeMap::new();
    for m in measurements {
        map.entry(m.algorithm.clone()).or_default().push(m);
    }
    map
}

/// Distinct algorithm labels in measurement order (the order the comparison
/// ran them in), so figure/table rendering follows whatever set was
/// measured — the paper's four algorithms or a custom `--algorithms` list.
pub fn algorithm_labels(measurements: &[Measurement]) -> Vec<String> {
    let mut labels: Vec<String> = Vec::new();
    for m in measurements {
        if !labels.contains(&m.algorithm) {
            labels.push(m.algorithm.clone());
        }
    }
    labels
}

/// Seconds per instance id for one algorithm.
pub fn seconds_of(measurements: &[Measurement], algorithm: &str) -> BTreeMap<u32, f64> {
    measurements
        .iter()
        .filter(|m| m.algorithm == algorithm)
        .map(|m| (m.instance_id, m.seconds))
        .collect()
}

/// Geometric-mean seconds per algorithm (the bottom row of Table I).
pub fn geomean_by_algorithm(measurements: &[Measurement]) -> BTreeMap<String, f64> {
    by_algorithm(measurements)
        .into_iter()
        .map(|(alg, ms)| {
            let secs: Vec<f64> = ms.iter().map(|m| m.seconds.max(1e-9)).collect();
            (alg, geometric_mean(&secs))
        })
        .collect()
}

/// Renders a simple aligned table: `headers` then one row per entry.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a profile curve as `x  y` rows plus a crude ASCII bar, so the
/// figures can be eyeballed straight from the terminal.
pub fn render_profile(label: &str, points: &[ProfilePoint]) -> String {
    let mut out = format!("{label}\n");
    for p in points {
        let bar = "#".repeat((p.y * 40.0).round() as usize);
        out.push_str(&format!("  x >= {:>5.2}  y = {:>5.3}  |{bar}\n", p.x, p.y));
    }
    out
}

/// Formats seconds with three decimals (the paper's Table I precision is two;
/// the scaled instances run faster, so one more digit keeps resolution).
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(id: u32, alg: &str, secs: f64) -> Measurement {
        Measurement {
            instance_id: id,
            instance_name: format!("g{id}"),
            algorithm: alg.to_string(),
            algorithm_spec: alg.to_string(),
            seconds: secs,
            wall_seconds: secs,
            cardinality: 10,
            maximum_cardinality: 10,
            initial_cardinality: 8,
        }
    }

    #[test]
    fn grouping_and_geomeans() {
        let ms = vec![meas(1, "A", 1.0), meas(2, "A", 4.0), meas(1, "B", 2.0)];
        let by = by_algorithm(&ms);
        assert_eq!(by["A"].len(), 2);
        assert_eq!(by["B"].len(), 1);
        let gm = geomean_by_algorithm(&ms);
        assert!((gm["A"] - 2.0).abs() < 1e-9);
        assert!((gm["B"] - 2.0).abs() < 1e-9);
        let secs = seconds_of(&ms, "A");
        assert_eq!(secs[&2], 4.0);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            &["name", "secs"],
            &[vec!["a".into(), "1.0".into()], vec!["graph-with-long-name".into(), "12.25".into()]],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].contains("graph-with-long-name"));
    }

    #[test]
    fn profile_rendering_contains_all_points() {
        let pts = vec![ProfilePoint { x: 1.0, y: 1.0 }, ProfilePoint { x: 2.0, y: 0.5 }];
        let s = render_profile("G-PR", &pts);
        assert!(s.contains("G-PR"));
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("0.500"));
    }

    #[test]
    fn fmt_secs_three_decimals() {
        assert_eq!(fmt_secs(0.12345), "0.123");
    }
}
