//! # gpm-bench — benchmark harness for the paper's evaluation
//!
//! One binary per table/figure of the paper (Section IV):
//!
//! | Target | Paper artefact |
//! |---|---|
//! | `fig1_gr_strategies` | Figure 1 — G-PR variants × global-relabeling strategies |
//! | `fig2_speedup_profiles` | Figure 2 — speedup profiles of G-PR, G-HKDW, P-DBFS vs PR |
//! | `fig3_performance_profiles` | Figure 3 — performance profiles of the parallel algorithms |
//! | `fig4_individual_speedups` | Figure 4 — per-instance speedup of G-PR over PR |
//! | `table1_runtimes` | Table I — per-instance runtimes of G-PR, G-HKDW, P-DBFS, PR |
//!
//! plus Criterion micro/ablation benches under `benches/` (including
//! `solver_reuse`, which quantifies cold-per-call vs warm-session solving),
//! and the `gpm-bench` binary, which produces the canonical `BENCH_<n>.json`
//! perf dump (`--dump-bench`) and diffs two dumps as the CI regression gate
//! (`--diff`) — see [`dump`].
//!
//! The library part contains the pieces the binaries share: instance
//! preparation ([`runner`]), profile computations ([`profiles`]), and report
//! formatting ([`report`]).  Every binary drives one warm
//! [`gpm_core::solver::Solver`] session across its whole suite, and accepts
//! `--algorithms` with round-trippable specs (`G-PR-Shr@adaptive:0.7`,
//! `P-DBFS@4`, …) parsed by `Algorithm::from_str`.  All measurements use
//! [`gpm_core::solver::SolveReport::comparable_seconds`]: modelled device
//! time for the GPU algorithms and host wall-clock for the CPU ones — see
//! `EXPERIMENTS.md` for the methodology and its limitations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod dump;
pub mod figures;
pub mod profiles;
pub mod report;
pub mod runner;

pub use runner::{prepare_instance, InstanceRun, Measurement};
