//! Regenerates Figure 4 of the paper: the individual speedup of G-PR over
//! sequential PR on each instance, ordered by increasing number of rows.
//!
//! ```text
//! cargo run -p gpm-bench --release --bin fig4_individual_speedups [-- --scale small --suite full]
//! ```

use gpm_bench::{cli, figures};

fn main() {
    let opts = cli::parse_or_exit();
    let measurements = figures::run_paper_comparison(&opts);
    let (text, _) = figures::figure4(&measurements);
    println!("{text}");
    cli::maybe_write_json(&opts, &measurements);
}
