//! Regenerates Figure 3 of the paper: performance profiles of the parallel
//! algorithms (fraction of instances within a factor x of the best).
//!
//! ```text
//! cargo run -p gpm-bench --release --bin fig3_performance_profiles [-- --scale small --suite full]
//! ```

use gpm_bench::{cli, figures};

fn main() {
    let opts = cli::parse_or_exit();
    let measurements = figures::run_paper_comparison(&opts);
    let (text, _) = figures::figure3(&measurements);
    println!("{text}");
    cli::maybe_write_json(&opts, &measurements);
}
