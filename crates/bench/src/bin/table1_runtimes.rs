//! Regenerates Table I of the paper: per-instance sizes, initial/maximum
//! matching cardinalities, and runtimes of G-PR, G-HKDW, P-DBFS, and PR, with
//! geometric means in the bottom row.
//!
//! ```text
//! cargo run -p gpm-bench --release --bin table1_runtimes [-- --scale small --suite full]
//! ```

use gpm_bench::{cli, figures};

fn main() {
    let opts = cli::parse_or_exit();
    let measurements = figures::run_paper_comparison(&opts);
    println!("{}", figures::table1(&measurements, &opts));
    let (fig4_text, _) = figures::figure4(&measurements);
    eprintln!("{fig4_text}");
    cli::maybe_write_json(&opts, &measurements);
}
