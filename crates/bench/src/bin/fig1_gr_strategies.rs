//! Regenerates Figure 1 of the paper: geometric-mean runtime of the three
//! G-PR variants under the seven global-relabeling strategies.
//!
//! ```text
//! cargo run -p gpm-bench --release --bin fig1_gr_strategies [-- --scale small --suite full]
//! ```

use gpm_bench::{cli, figures};

fn main() {
    let opts = cli::parse_or_exit();
    eprintln!(
        "Figure 1 sweep: {} instances at {:?} scale, 3 variants x 7 strategies",
        opts.suite.len(),
        opts.scale
    );
    let result = figures::figure1(&opts);
    println!("{}", result.render());
    cli::maybe_write_json(&opts, &result);
}
