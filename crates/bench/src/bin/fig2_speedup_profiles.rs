//! Regenerates Figure 2 of the paper: speedup profiles of G-PR, G-HKDW, and
//! P-DBFS with respect to the sequential PR baseline.
//!
//! ```text
//! cargo run -p gpm-bench --release --bin fig2_speedup_profiles [-- --scale small --suite full]
//! ```

use gpm_bench::{cli, figures};

fn main() {
    let opts = cli::parse_or_exit();
    let measurements = figures::run_paper_comparison(&opts);
    let (text, _) = figures::figure2(&measurements);
    println!("{text}");
    cli::maybe_write_json(&opts, &measurements);
}
