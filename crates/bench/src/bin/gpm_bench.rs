//! The `gpm-bench` front door: produce the canonical `BENCH_<n>.json`
//! perf dump, or diff two dumps as the CI regression gate.
//!
//! ```text
//! gpm-bench --dump-bench BENCH_7.json [--scale tiny|small|medium|large]
//! gpm-bench --diff BENCH_6.json BENCH_7.json [--max-regression 0.15] [--require-pinned]
//! gpm-bench --list-algorithms
//! ```
//!
//! `--list-algorithms` prints the full algorithm-label grammar — every GPU
//! family × worklist mode × execution mode plus the CPU baselines — each
//! line a label `--algorithms` (and the service wire protocol) accepts.
//!
//! The dump's GPU cells carry modelled device seconds (deterministic, so
//! `pinned: true`); `--diff` fails (exit 1) when any pinned cell present
//! in both dumps is slower by more than the allowed fraction.  A pinned
//! cell of the old dump *missing* from the new one is a warning by
//! default (renamed sweeps shouldn't brick a local run) and a failure
//! under `--require-pinned`, which is what CI passes.

use gpm_bench::dump;
use gpm_graph::instances::Scale;
use serde::Value;

fn usage() -> String {
    "usage: gpm-bench --dump-bench <path> [--scale tiny|small|medium|large]\n\
     \u{20}      gpm-bench --diff <old.json> <new.json> [--max-regression <fraction>] \
     [--require-pinned]\n\
     \u{20}      gpm-bench --list-algorithms"
        .to_string()
}

struct Cli {
    dump_path: Option<String>,
    diff_paths: Option<(String, String)>,
    list_algorithms: bool,
    scale: Scale,
    max_regression: f64,
    require_pinned: bool,
}

fn parse(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        dump_path: None,
        diff_paths: None,
        list_algorithms: false,
        scale: Scale::Tiny,
        max_regression: 0.15,
        require_pinned: false,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dump-bench" => {
                cli.dump_path = Some(it.next().ok_or("--dump-bench requires a path")?);
            }
            "--list-algorithms" => cli.list_algorithms = true,
            "--diff" => {
                let old = it.next().ok_or("--diff requires two paths")?;
                let new = it.next().ok_or("--diff requires two paths")?;
                cli.diff_paths = Some((old, new));
            }
            "--scale" => {
                cli.scale = match it.next().ok_or("--scale requires a value")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--max-regression" => {
                let raw = it.next().ok_or("--max-regression requires a fraction")?;
                cli.max_regression =
                    raw.parse().map_err(|e| format!("bad --max-regression '{raw}': {e}"))?;
                if !(0.0..10.0).contains(&cli.max_regression) {
                    return Err(format!("--max-regression {raw} out of range"));
                }
            }
            "--require-pinned" => cli.require_pinned = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    let modes = usize::from(cli.dump_path.is_some())
        + usize::from(cli.diff_paths.is_some())
        + usize::from(cli.list_algorithms);
    if modes != 1 {
        return Err(format!(
            "exactly one of --dump-bench / --diff / --list-algorithms is required\n{}",
            usage()
        ));
    }
    Ok(cli)
}

fn read_dump(path: &str) -> Value {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let cli = match parse(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    if cli.list_algorithms {
        print!("{}", gpm_bench::cli::label_grammar());
        return;
    }

    if let Some(path) = cli.dump_path {
        let produced = dump::produce(cli.scale);
        let pinned = produced.cells.iter().filter(|c| c.pinned).count();
        println!(
            "sweep: {} cells ({} pinned) at scale {}",
            produced.cells.len(),
            pinned,
            produced.scale
        );
        for run in [&produced.service.baseline, &produced.service.sharded] {
            println!(
                "service {}x{}: hit rate {:.3}, {} reuploads, {:.0} submits/s, {:.0} jobs/s",
                run.shards,
                run.workers_per_shard,
                run.cache_hit_rate,
                run.reuploads,
                run.submit_throughput_jobs_per_sec,
                run.throughput_jobs_per_sec,
            );
        }
        let json = serde_json::to_string_pretty(&produced).expect("dump serializes");
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
        return;
    }

    let (old_path, new_path) = cli.diff_paths.expect("parse guarantees one mode");
    let report = dump::diff(
        &read_dump(&old_path),
        &read_dump(&new_path),
        cli.max_regression,
        cli.require_pinned,
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot diff {old_path} vs {new_path}: {e}");
        std::process::exit(2);
    });
    println!(
        "{} pinned cells compared ({} faster, allowed regression {:.0}%)",
        report.compared,
        report.improvements.len(),
        cli.max_regression * 100.0
    );
    for (key, old, new) in &report.regressions {
        println!("REGRESSION {key}: {old:.6}s -> {new:.6}s ({:+.1}%)", (new / old - 1.0) * 100.0);
    }
    for key in &report.missing {
        if report.require_pinned {
            println!("MISSING {key}: pinned cell disappeared from {new_path}");
        } else {
            println!(
                "warning: pinned cell {key} disappeared from {new_path} \
                 (failing only under --require-pinned)"
            );
        }
    }
    for key in &report.new_cells {
        println!("new (unpinned against {old_path}): {key}");
    }
    if !report.passed() {
        eprintln!(
            "{}: {} regression(s), {} missing pinned cell(s)",
            new_path,
            report.regressions.len(),
            report.missing.len()
        );
        std::process::exit(1);
    }
    println!("{new_path}: pinned cells within budget");
}
