//! Speedup and performance profiles (Figures 2 and 3 of the paper).

use serde::Serialize;
use std::collections::BTreeMap;

/// One point of a profile curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ProfilePoint {
    /// The threshold on the x axis (speedup or performance ratio).
    pub x: f64,
    /// The fraction of test cases meeting the threshold (0.0–1.0).
    pub y: f64,
}

/// Speedup profile: for each threshold `x`, the fraction of instances on
/// which `algorithm_seconds` achieves a speedup of at least `x` over
/// `baseline_seconds` (Figure 2: "a point (x, y) corresponds to the
/// probability y of obtaining at least x speedup").
///
/// Both maps are keyed by instance id; only instances present in both are
/// considered.
pub fn speedup_profile(
    baseline_seconds: &BTreeMap<u32, f64>,
    algorithm_seconds: &BTreeMap<u32, f64>,
    thresholds: &[f64],
) -> Vec<ProfilePoint> {
    let speedups: Vec<f64> = algorithm_seconds
        .iter()
        .filter_map(|(id, &alg)| baseline_seconds.get(id).map(|&base| base / alg))
        .collect();
    thresholds
        .iter()
        .map(|&x| {
            let hits = speedups.iter().filter(|&&s| s >= x).count();
            ProfilePoint {
                x,
                y: if speedups.is_empty() { 0.0 } else { hits as f64 / speedups.len() as f64 },
            }
        })
        .collect()
}

/// Performance profile: for each ratio `x`, the fraction of instances on
/// which the algorithm is within a factor `x` of the best algorithm on that
/// instance (Figure 3).  `all_seconds` maps algorithm label → (instance id →
/// seconds); the returned map is algorithm label → profile curve.
pub fn performance_profiles(
    all_seconds: &BTreeMap<String, BTreeMap<u32, f64>>,
    thresholds: &[f64],
) -> BTreeMap<String, Vec<ProfilePoint>> {
    // Best time per instance across algorithms.
    let mut best: BTreeMap<u32, f64> = BTreeMap::new();
    for per_instance in all_seconds.values() {
        for (&id, &secs) in per_instance {
            best.entry(id).and_modify(|b| *b = b.min(secs)).or_insert(secs);
        }
    }
    all_seconds
        .iter()
        .map(|(label, per_instance)| {
            let ratios: Vec<f64> = per_instance
                .iter()
                .filter_map(|(id, &secs)| best.get(id).map(|&b| secs / b))
                .collect();
            let curve = thresholds
                .iter()
                .map(|&x| ProfilePoint {
                    x,
                    y: if ratios.is_empty() {
                        0.0
                    } else {
                        ratios.iter().filter(|&&r| r <= x).count() as f64 / ratios.len() as f64
                    },
                })
                .collect();
            (label.clone(), curve)
        })
        .collect()
}

/// The x-axis grid the paper uses for Figure 2 (0 to 10 in steps of 1).
pub fn figure2_thresholds() -> Vec<f64> {
    (0..=10).map(f64::from).collect()
}

/// The x-axis grid the paper uses for Figure 3 (1.0 to 5.0 in steps of 0.5).
pub fn figure3_thresholds() -> Vec<f64> {
    (0..=8).map(|i| 1.0 + 0.5 * f64::from(i)).collect()
}

/// Fraction of instances where the algorithm achieves a speedup ≥ `x` —
/// convenience accessor for single thresholds quoted in the paper's text
/// (e.g. "with 39% probability it obtains a speedup at least 5").
pub fn fraction_at_least(
    baseline_seconds: &BTreeMap<u32, f64>,
    algorithm_seconds: &BTreeMap<u32, f64>,
    x: f64,
) -> f64 {
    speedup_profile(baseline_seconds, algorithm_seconds, &[x])[0].y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(u32, f64)]) -> BTreeMap<u32, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn speedup_profile_counts_thresholds() {
        let base = map(&[(1, 10.0), (2, 10.0), (3, 10.0), (4, 10.0)]);
        let alg = map(&[(1, 1.0), (2, 2.0), (3, 5.0), (4, 20.0)]);
        // speedups: 10, 5, 2, 0.5
        let profile = speedup_profile(&base, &alg, &[0.0, 1.0, 2.0, 5.0, 10.0, 11.0]);
        let ys: Vec<f64> = profile.iter().map(|p| p.y).collect();
        assert_eq!(ys, vec![1.0, 0.75, 0.75, 0.5, 0.25, 0.0]);
    }

    #[test]
    fn speedup_profile_ignores_unmatched_instances() {
        let base = map(&[(1, 4.0)]);
        let alg = map(&[(1, 2.0), (9, 1.0)]);
        let profile = speedup_profile(&base, &alg, &[1.0]);
        assert_eq!(profile[0].y, 1.0);
    }

    #[test]
    fn performance_profiles_relative_to_best() {
        let mut all = BTreeMap::new();
        all.insert("A".to_string(), map(&[(1, 1.0), (2, 4.0)]));
        all.insert("B".to_string(), map(&[(1, 2.0), (2, 2.0)]));
        let profiles = performance_profiles(&all, &[1.0, 2.0]);
        // best: instance 1 → 1.0 (A), instance 2 → 2.0 (B)
        // A's ratios: 1.0, 2.0 ; B's ratios: 2.0, 1.0
        assert_eq!(profiles["A"][0].y, 0.5);
        assert_eq!(profiles["A"][1].y, 1.0);
        assert_eq!(profiles["B"][0].y, 0.5);
        assert_eq!(profiles["B"][1].y, 1.0);
    }

    #[test]
    fn threshold_grids_match_paper_axes() {
        assert_eq!(figure2_thresholds().len(), 11);
        assert_eq!(figure2_thresholds()[10], 10.0);
        assert_eq!(figure3_thresholds().len(), 9);
        assert_eq!(figure3_thresholds()[0], 1.0);
        assert_eq!(figure3_thresholds()[8], 5.0);
    }

    #[test]
    fn fraction_at_least_single_threshold() {
        let base = map(&[(1, 10.0), (2, 10.0)]);
        let alg = map(&[(1, 1.0), (2, 10.0)]);
        assert_eq!(fraction_at_least(&base, &alg, 5.0), 0.5);
        assert_eq!(fraction_at_least(&base, &alg, 1.0), 1.0);
    }

    #[test]
    fn empty_inputs_give_zero_probabilities() {
        let empty = BTreeMap::new();
        let profile = speedup_profile(&empty, &empty, &[1.0]);
        assert_eq!(profile[0].y, 0.0);
    }
}
