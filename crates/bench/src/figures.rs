//! Regeneration of every figure and table of the paper's evaluation section.
//!
//! Each `figureN` / `table1` function takes the prepared measurements (or the
//! CLI options) and returns a plain-text report that mirrors the content of
//! the corresponding artefact; the binaries in `src/bin/` print it.  The
//! functions also return the underlying numbers so tests (and
//! `EXPERIMENTS.md`) can check the *shape* of the results against the paper.

use crate::cli::Options;
use crate::profiles::{self, ProfilePoint};
use crate::report;
use crate::runner::{measure, prepare_instance, Measurement};
use gpm_core::solver::{Algorithm, Solver};
use gpm_core::GprVariant;
use serde::Serialize;
use std::collections::BTreeMap;

/// Runs the comparison set (by default the paper's G-PR-Shr, G-HKDW, P-DBFS,
/// PR; overridable with `--algorithms`) over the configured suite on one
/// warm [`Solver`] session, returning one measurement per (instance,
/// algorithm) pair.  Progress is reported on stderr because full-suite runs
/// take a while.
pub fn run_paper_comparison(opts: &Options) -> Vec<Measurement> {
    let mut solver = Solver::builder().build().expect("valid solver config");
    let algorithms = opts.comparison_algorithms();
    let mut measurements = Vec::new();
    for (i, spec) in opts.suite.iter().enumerate() {
        eprintln!("[{}/{}] preparing {} ({:?})", i + 1, opts.suite.len(), spec.name, opts.scale);
        let instance = prepare_instance(spec, opts.scale);
        for &alg in &algorithms {
            let m = measure(&instance, alg, &mut solver)
                .unwrap_or_else(|e| panic!("measuring {alg} on {} failed: {e}", spec.name));
            eprintln!("    {:>8}: {:>9.4}s", m.algorithm, m.seconds);
            measurements.push(m);
        }
    }
    measurements
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// One cell of Figure 1: a G-PR variant under a GR strategy.
#[derive(Clone, Debug, Serialize)]
pub struct Figure1Cell {
    /// Variant label (G-PR-First / G-PR-NoShr / G-PR-Shr).
    pub variant: String,
    /// Strategy label ("adaptive, 0.7", "fix, 10", …).
    pub strategy: String,
    /// Geometric-mean comparable seconds over the suite.
    pub geomean_seconds: f64,
}

/// Result of the Figure 1 sweep.
#[derive(Clone, Debug, Serialize)]
pub struct Figure1Result {
    /// All (variant, strategy) cells.
    pub cells: Vec<Figure1Cell>,
}

impl Figure1Result {
    /// Geometric-mean seconds of a given (variant, strategy) pair.
    pub fn geomean(&self, variant: &str, strategy: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.variant == variant && c.strategy == strategy)
            .map(|c| c.geomean_seconds)
    }

    /// The (variant, strategy) pair with the smallest geometric mean.
    pub fn best(&self) -> &Figure1Cell {
        self.cells
            .iter()
            .min_by(|a, b| a.geomean_seconds.total_cmp(&b.geomean_seconds))
            .expect("figure 1 sweep produced no cells")
    }

    /// Renders the figure as a table: one row per variant, one column per
    /// strategy — the layout of the data table under the paper's Figure 1.
    pub fn render(&self) -> String {
        let strategies: Vec<String> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.strategy) {
                    seen.push(c.strategy.clone());
                }
            }
            seen
        };
        let variants: Vec<String> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.variant) {
                    seen.push(c.variant.clone());
                }
            }
            seen
        };
        let mut headers: Vec<&str> = vec!["variant"];
        let strategy_refs: Vec<&str> = strategies.iter().map(|s| s.as_str()).collect();
        headers.extend(strategy_refs);
        let rows: Vec<Vec<String>> = variants
            .iter()
            .map(|v| {
                let mut row = vec![v.clone()];
                for s in &strategies {
                    row.push(report::fmt_secs(self.geomean(v, s).unwrap_or(f64::NAN)));
                }
                row
            })
            .collect();
        let mut out = String::from(
            "Figure 1 — geometric-mean runtime (seconds) of the G-PR variants under\n\
             different global-relabeling strategies\n\n",
        );
        out.push_str(&report::render_table(&headers, &rows));
        let best = self.best();
        out.push_str(&format!("\nbest configuration: {} with ({})\n", best.variant, best.strategy));
        out
    }
}

/// Runs the Figure 1 sweep: three G-PR variants × the paper's seven
/// global-relabeling strategies over the configured suite.
pub fn figure1(opts: &Options) -> Figure1Result {
    if opts.algorithms.is_some() {
        eprintln!(
            "warning: --algorithms is ignored by the Figure 1 sweep (it always runs the \
             3 G-PR variants x 7 GR strategies)"
        );
    }
    let mut solver = Solver::builder().build().expect("valid solver config");
    let variants = [GprVariant::First, GprVariant::ActiveList, GprVariant::Shrink];
    let strategies = gpm_core::strategy::figure1_strategies();
    // seconds[variant][strategy] = per-instance seconds
    let mut seconds: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();

    for (i, spec) in opts.suite.iter().enumerate() {
        eprintln!("[{}/{}] {} ({:?})", i + 1, opts.suite.len(), spec.name, opts.scale);
        let instance = prepare_instance(spec, opts.scale);
        for &variant in &variants {
            for &strategy in &strategies {
                let alg = Algorithm::gpr(variant, strategy);
                let m = measure(&instance, alg, &mut solver)
                    .unwrap_or_else(|e| panic!("measuring {alg} on {} failed: {e}", spec.name));
                seconds
                    .entry((variant.label().to_string(), strategy.label()))
                    .or_default()
                    .push(m.seconds.max(1e-9));
            }
        }
    }

    let cells = variants
        .iter()
        .flat_map(|v| {
            let seconds = &seconds;
            strategies.iter().map(move |s| {
                let key = (v.label().to_string(), s.label());
                Figure1Cell {
                    variant: key.0.clone(),
                    strategy: key.1.clone(),
                    geomean_seconds: report::geometric_mean(&seconds[&key]),
                }
            })
        })
        .collect();
    Figure1Result { cells }
}

// ---------------------------------------------------------------------------
// Figures 2–4 and Table I (built from the shared comparison measurements)
// ---------------------------------------------------------------------------

/// Figure 2: speedup profiles of the measured algorithms w.r.t. sequential
/// PR.  Follows whatever algorithm set was measured; without a "PR" baseline
/// the profiles cannot be formed and the report says so.
pub fn figure2(measurements: &[Measurement]) -> (String, BTreeMap<String, Vec<ProfilePoint>>) {
    let pr = report::seconds_of(measurements, "PR");
    let thresholds = profiles::figure2_thresholds();
    let mut curves = BTreeMap::new();
    let mut out = String::from(
        "Figure 2 — speedup profiles w.r.t. sequential PR\n\
         (a point (x, y): with probability y the algorithm is at least x times faster than PR)\n\n",
    );
    if pr.is_empty() {
        out.push_str("no PR baseline measured; rerun with PR in --algorithms\n");
        return (out, curves);
    }
    let labels: Vec<String> =
        report::algorithm_labels(measurements).into_iter().filter(|l| l != "PR").collect();
    for alg in &labels {
        let secs = report::seconds_of(measurements, alg);
        let curve = profiles::speedup_profile(&pr, &secs, &thresholds);
        out.push_str(&report::render_profile(alg, &curve));
        out.push('\n');
        curves.insert(alg.clone(), curve);
    }
    // The headline numbers quoted in the paper's text.
    for alg in &labels {
        let secs = report::seconds_of(measurements, alg);
        out.push_str(&format!(
            "P(speedup >= 5) for {:>8}: {:.2}   (paper: G-PR 0.39, G-HKDW 0.21, P-DBFS 0.14)\n",
            alg,
            profiles::fraction_at_least(&pr, &secs, 5.0)
        ));
    }
    let gpr = report::seconds_of(measurements, "G-PR-Shr");
    if !gpr.is_empty() {
        out.push_str(&format!(
            "fraction of graphs where G-PR beats PR: {:.2}   (paper: 0.82)\n",
            profiles::fraction_at_least(&pr, &gpr, 1.0)
        ));
    }
    (out, curves)
}

/// Figure 3: performance profiles of the measured parallel algorithms (the
/// sequential PR baseline is excluded, as in the paper).
pub fn figure3(measurements: &[Measurement]) -> (String, BTreeMap<String, Vec<ProfilePoint>>) {
    let mut all = BTreeMap::new();
    for alg in report::algorithm_labels(measurements) {
        if alg == "PR" {
            continue;
        }
        let secs = report::seconds_of(measurements, &alg);
        if !secs.is_empty() {
            all.insert(alg, secs);
        }
    }
    let curves = profiles::performance_profiles(&all, &profiles::figure3_thresholds());
    let mut out = String::from(
        "Figure 3 — performance profiles of the parallel algorithms\n\
         (a point (x, y): with probability y the algorithm is at most x times worse than the best)\n\n",
    );
    for (alg, curve) in &curves {
        out.push_str(&report::render_profile(alg, curve));
        out.push('\n');
    }
    // Headline numbers: fraction within 1.5× of the best, and fraction best.
    for (alg, curve) in &curves {
        if let Some(p) = curve.iter().find(|p| (p.x - 1.5).abs() < 1e-9) {
            out.push_str(&format!(
                "P(within 1.5x of best) for {:>8}: {:.2}   (paper: G-PR 0.75, G-HKDW 0.46, P-DBFS 0.14)\n",
                alg, p.y
            ));
        }
    }
    if let Some(best_fraction) = fraction_best(&all, "G-PR-Shr") {
        out.push_str(&format!(
            "fraction of graphs where G-PR is the fastest: {best_fraction:.2}   (paper: 0.61)\n"
        ));
    }
    (out, curves)
}

fn fraction_best(all: &BTreeMap<String, BTreeMap<u32, f64>>, target: &str) -> Option<f64> {
    let target_secs = all.get(target)?;
    let mut wins = 0usize;
    let mut total = 0usize;
    for (id, &secs) in target_secs {
        let best_other = all
            .iter()
            .filter(|(alg, _)| alg.as_str() != target)
            .filter_map(|(_, m)| m.get(id))
            .cloned()
            .fold(f64::INFINITY, f64::min);
        total += 1;
        if secs <= best_other {
            wins += 1;
        }
    }
    (total > 0).then(|| wins as f64 / total as f64)
}

/// Figure 4: individual speedups of G-PR over sequential PR per instance,
/// ordered by increasing number of rows (instance id).
pub fn figure4(measurements: &[Measurement]) -> (String, BTreeMap<u32, f64>) {
    let pr = report::seconds_of(measurements, "PR");
    let gpr = report::seconds_of(measurements, "G-PR-Shr");
    let mut out = String::from(
        "Figure 4 — individual speedups of G-PR w.r.t. sequential PR (instances ordered by #rows)\n\n",
    );
    if pr.is_empty() || gpr.is_empty() {
        out.push_str(
            "figure 4 needs both G-PR-Shr and PR measurements; rerun with both in --algorithms\n",
        );
        return (out, BTreeMap::new());
    }
    let mut speedups: BTreeMap<u32, f64> = BTreeMap::new();
    for (&id, &gpr_secs) in &gpr {
        if let Some(&pr_secs) = pr.get(&id) {
            speedups.insert(id, pr_secs / gpr_secs);
        }
    }
    let names: BTreeMap<u32, String> =
        measurements.iter().map(|m| (m.instance_id, m.instance_name.clone())).collect();
    let rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|(id, s)| {
            let bar = "#".repeat((s * 4.0).round().min(120.0) as usize);
            vec![id.to_string(), names[id].clone(), format!("{s:.2}"), bar]
        })
        .collect();
    out.push_str(&report::render_table(&["id", "graph", "speedup", ""], &rows));
    if !speedups.is_empty() {
        let values: Vec<f64> = speedups.values().copied().collect();
        let above_one = values.iter().filter(|&&s| s >= 1.0).count();
        out.push_str(&format!(
            "\nspeedup > 1 on {}/{} graphs (paper: 23/28); min {:.2}, max {:.2}, geomean {:.2} \
             (paper: min 0.31, max 12.60, avg 3.05)\n",
            above_one,
            values.len(),
            values.iter().cloned().fold(f64::INFINITY, f64::min),
            values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            report::geometric_mean(&values),
        ));
    }
    (out, speedups)
}

/// Table I: per-instance sizes, IM/MM cardinalities, and runtimes of the four
/// compared algorithms, with geometric means in the bottom row.
pub fn table1(measurements: &[Measurement], opts: &Options) -> String {
    // One runtime column per measured algorithm, in measurement order —
    // the paper's four by default, or whatever --algorithms selected.
    let algorithms = report::algorithm_labels(measurements);
    let mut out = String::from("Table I — per-instance runtimes (comparable seconds)\n\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for spec in &opts.suite {
        let per_alg: BTreeMap<&str, f64> = algorithms
            .iter()
            .filter_map(|alg| {
                measurements
                    .iter()
                    .find(|m| m.instance_id == spec.id && &m.algorithm == alg)
                    .map(|m| (alg.as_str(), m.seconds))
            })
            .collect();
        if per_alg.is_empty() {
            continue;
        }
        let sample =
            measurements.iter().find(|m| m.instance_id == spec.id).expect("instance measured");
        let mut row = vec![
            spec.id.to_string(),
            spec.name.to_string(),
            sample.initial_cardinality.to_string(),
            sample.maximum_cardinality.to_string(),
        ];
        for alg in &algorithms {
            row.push(report::fmt_secs(per_alg.get(alg.as_str()).copied().unwrap_or(f64::NAN)));
        }
        rows.push(row);
    }
    let geomeans = report::geomean_by_algorithm(measurements);
    let mut geo_row = vec![String::new(), "GEOMEAN".to_string(), String::new(), String::new()];
    for alg in &algorithms {
        geo_row.push(report::fmt_secs(geomeans.get(alg).copied().unwrap_or(f64::NAN)));
    }
    rows.push(geo_row);
    let mut headers: Vec<&str> = vec!["ID", "Graph", "IM", "MM"];
    headers.extend(algorithms.iter().map(|a| a.as_str()));
    out.push_str(&report::render_table(&headers, &rows));
    // Headline ratios quoted in the paper: G-PR is 1.30x faster than G-HKDW
    // and 2.82x faster than P-DBFS in geometric mean.
    if let (Some(gpr), Some(ghkdw), Some(pdbfs), Some(pr)) = (
        geomeans.get("G-PR-Shr"),
        geomeans.get("G-HKDW"),
        geomeans.get("P-DBFS"),
        geomeans.get("PR"),
    ) {
        out.push_str(&format!(
            "\ngeomean ratios: G-HKDW/G-PR = {:.2} (paper 1.30), P-DBFS/G-PR = {:.2} (paper 2.82), PR/G-PR = {:.2} (paper 3.07)\n",
            ghkdw / gpr,
            pdbfs / gpr,
            pr / gpr
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::instances::Scale;

    fn tiny_mini_options() -> Options {
        Options {
            scale: Scale::Tiny,
            suite: gpm_graph::instances::mini_suite().into_iter().take(2).collect(),
            suite_name: "mini".into(),
            algorithms: None,
            json_path: None,
        }
    }

    #[test]
    fn comparison_measurements_cover_all_algorithms_and_instances() {
        let opts = tiny_mini_options();
        let ms = run_paper_comparison(&opts);
        assert_eq!(ms.len(), opts.suite.len() * 4);
        for m in &ms {
            assert_eq!(m.cardinality, m.maximum_cardinality);
        }
        let t = table1(&ms, &opts);
        assert!(t.contains("GEOMEAN"));
        let (f2, curves2) = figure2(&ms);
        assert!(f2.contains("G-PR-Shr"));
        assert_eq!(curves2.len(), 3);
        let (f3, curves3) = figure3(&ms);
        assert!(f3.contains("performance profiles"));
        assert_eq!(curves3.len(), 3);
        let (f4, speedups) = figure4(&ms);
        assert!(f4.contains("speedup"));
        assert_eq!(speedups.len(), opts.suite.len());
    }

    #[test]
    fn custom_algorithm_sets_flow_through_the_renderers() {
        let opts = Options {
            algorithms: Some(vec![Algorithm::HopcroftKarp, Algorithm::SequentialPushRelabel(0.5)]),
            suite: gpm_graph::instances::mini_suite().into_iter().take(1).collect(),
            ..tiny_mini_options()
        };
        let ms = run_paper_comparison(&opts);
        assert_eq!(ms.len(), 2);
        // Table renders columns for exactly the measured algorithms.
        let t = table1(&ms, &opts);
        assert!(t.contains("HK"));
        assert!(t.contains("GEOMEAN"));
        assert!(!t.contains("G-PR-Shr"));
        assert!(!t.contains("NaN"));
        // Speedup profiles follow the measured set (HK vs the PR baseline).
        let (f2, curves2) = figure2(&ms);
        assert_eq!(curves2.len(), 1);
        assert!(f2.contains("HK"));
        // Figure 4 needs G-PR-Shr; it degrades with a message, not NaN rows.
        let (f4, speedups) = figure4(&ms);
        assert!(speedups.is_empty());
        assert!(f4.contains("rerun with both"));
    }

    #[test]
    fn figure2_without_pr_baseline_says_so() {
        let opts = Options {
            algorithms: Some(vec![Algorithm::HopcroftKarp]),
            suite: gpm_graph::instances::mini_suite().into_iter().take(1).collect(),
            ..tiny_mini_options()
        };
        let ms = run_paper_comparison(&opts);
        let (f2, curves) = figure2(&ms);
        assert!(curves.is_empty());
        assert!(f2.contains("no PR baseline"));
    }

    #[test]
    fn figure1_sweep_has_21_cells_and_renders() {
        let opts = Options {
            suite: gpm_graph::instances::mini_suite().into_iter().take(1).collect(),
            ..tiny_mini_options()
        };
        let fig1 = figure1(&opts);
        assert_eq!(fig1.cells.len(), 21);
        assert!(fig1.geomean("G-PR-Shr", "adaptive, 0.7").is_some());
        let text = fig1.render();
        assert!(text.contains("G-PR-First"));
        assert!(text.contains("adaptive, 0.7"));
        assert!(text.contains("best configuration"));
    }
}
