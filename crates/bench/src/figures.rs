//! Regeneration of every figure and table of the paper's evaluation section.
//!
//! Each `figureN` / `table1` function takes the prepared measurements (or the
//! CLI options) and returns a plain-text report that mirrors the content of
//! the corresponding artefact; the binaries in `src/bin/` print it.  The
//! functions also return the underlying numbers so tests (and
//! `EXPERIMENTS.md`) can check the *shape* of the results against the paper.

use crate::cli::Options;
use crate::profiles::{self, ProfilePoint};
use crate::report;
use crate::runner::{self, measure, prepare_instance, Measurement};
use gpm_core::solver::Algorithm;
use gpm_core::GprVariant;
use gpm_gpu::VirtualGpu;
use serde::Serialize;
use std::collections::BTreeMap;

/// Runs the paper's four-algorithm comparison (G-PR-Shr, G-HKDW, P-DBFS, PR)
/// over the configured suite, returning one measurement per (instance,
/// algorithm) pair.  Progress is reported on stderr because full-suite runs
/// take a while.
pub fn run_paper_comparison(opts: &Options) -> Vec<Measurement> {
    let gpu = VirtualGpu::parallel();
    let algorithms = runner::paper_algorithms();
    let mut measurements = Vec::new();
    for (i, spec) in opts.suite.iter().enumerate() {
        eprintln!("[{}/{}] preparing {} ({:?})", i + 1, opts.suite.len(), spec.name, opts.scale);
        let instance = prepare_instance(spec, opts.scale);
        for &alg in &algorithms {
            let m = measure(&instance, alg, Some(&gpu));
            eprintln!("    {:>8}: {:>9.4}s", m.algorithm, m.seconds);
            measurements.push(m);
        }
    }
    measurements
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// One cell of Figure 1: a G-PR variant under a GR strategy.
#[derive(Clone, Debug, Serialize)]
pub struct Figure1Cell {
    /// Variant label (G-PR-First / G-PR-NoShr / G-PR-Shr).
    pub variant: String,
    /// Strategy label ("adaptive, 0.7", "fix, 10", …).
    pub strategy: String,
    /// Geometric-mean comparable seconds over the suite.
    pub geomean_seconds: f64,
}

/// Result of the Figure 1 sweep.
#[derive(Clone, Debug, Serialize)]
pub struct Figure1Result {
    /// All (variant, strategy) cells.
    pub cells: Vec<Figure1Cell>,
}

impl Figure1Result {
    /// Geometric-mean seconds of a given (variant, strategy) pair.
    pub fn geomean(&self, variant: &str, strategy: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.variant == variant && c.strategy == strategy)
            .map(|c| c.geomean_seconds)
    }

    /// The (variant, strategy) pair with the smallest geometric mean.
    pub fn best(&self) -> &Figure1Cell {
        self.cells
            .iter()
            .min_by(|a, b| a.geomean_seconds.total_cmp(&b.geomean_seconds))
            .expect("figure 1 sweep produced no cells")
    }

    /// Renders the figure as a table: one row per variant, one column per
    /// strategy — the layout of the data table under the paper's Figure 1.
    pub fn render(&self) -> String {
        let strategies: Vec<String> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.strategy) {
                    seen.push(c.strategy.clone());
                }
            }
            seen
        };
        let variants: Vec<String> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.variant) {
                    seen.push(c.variant.clone());
                }
            }
            seen
        };
        let mut headers: Vec<&str> = vec!["variant"];
        let strategy_refs: Vec<&str> = strategies.iter().map(|s| s.as_str()).collect();
        headers.extend(strategy_refs);
        let rows: Vec<Vec<String>> = variants
            .iter()
            .map(|v| {
                let mut row = vec![v.clone()];
                for s in &strategies {
                    row.push(report::fmt_secs(self.geomean(v, s).unwrap_or(f64::NAN)));
                }
                row
            })
            .collect();
        let mut out = String::from(
            "Figure 1 — geometric-mean runtime (seconds) of the G-PR variants under\n\
             different global-relabeling strategies\n\n",
        );
        out.push_str(&report::render_table(&headers, &rows));
        let best = self.best();
        out.push_str(&format!("\nbest configuration: {} with ({})\n", best.variant, best.strategy));
        out
    }
}

/// Runs the Figure 1 sweep: three G-PR variants × the paper's seven
/// global-relabeling strategies over the configured suite.
pub fn figure1(opts: &Options) -> Figure1Result {
    let gpu = VirtualGpu::parallel();
    let variants = [GprVariant::First, GprVariant::ActiveList, GprVariant::Shrink];
    let strategies = gpm_core::strategy::figure1_strategies();
    // seconds[variant][strategy] = per-instance seconds
    let mut seconds: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();

    for (i, spec) in opts.suite.iter().enumerate() {
        eprintln!("[{}/{}] {} ({:?})", i + 1, opts.suite.len(), spec.name, opts.scale);
        let instance = prepare_instance(spec, opts.scale);
        for &variant in &variants {
            for &strategy in &strategies {
                let alg = Algorithm::GpuPushRelabel(variant, strategy);
                let m = measure(&instance, alg, Some(&gpu));
                seconds
                    .entry((variant.label().to_string(), strategy.label()))
                    .or_default()
                    .push(m.seconds.max(1e-9));
            }
        }
    }

    let cells = variants
        .iter()
        .flat_map(|v| {
            let seconds = &seconds;
            strategies.iter().map(move |s| {
                let key = (v.label().to_string(), s.label());
                Figure1Cell {
                    variant: key.0.clone(),
                    strategy: key.1.clone(),
                    geomean_seconds: report::geometric_mean(&seconds[&key]),
                }
            })
        })
        .collect();
    Figure1Result { cells }
}

// ---------------------------------------------------------------------------
// Figures 2–4 and Table I (built from the shared comparison measurements)
// ---------------------------------------------------------------------------

/// Figure 2: speedup profiles of the parallel algorithms w.r.t. sequential PR.
pub fn figure2(measurements: &[Measurement]) -> (String, BTreeMap<String, Vec<ProfilePoint>>) {
    let pr = report::seconds_of(measurements, "PR");
    let thresholds = profiles::figure2_thresholds();
    let mut curves = BTreeMap::new();
    let mut out = String::from(
        "Figure 2 — speedup profiles w.r.t. sequential PR\n\
         (a point (x, y): with probability y the algorithm is at least x times faster than PR)\n\n",
    );
    for alg in ["G-HKDW", "G-PR-Shr", "P-DBFS"] {
        let secs = report::seconds_of(measurements, alg);
        if secs.is_empty() {
            continue;
        }
        let curve = profiles::speedup_profile(&pr, &secs, &thresholds);
        out.push_str(&report::render_profile(alg, &curve));
        out.push('\n');
        curves.insert(alg.to_string(), curve);
    }
    // The headline numbers quoted in the paper's text.
    for alg in ["G-PR-Shr", "G-HKDW", "P-DBFS"] {
        let secs = report::seconds_of(measurements, alg);
        if secs.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "P(speedup >= 5) for {:>8}: {:.2}   (paper: G-PR 0.39, G-HKDW 0.21, P-DBFS 0.14)\n",
            alg,
            profiles::fraction_at_least(&pr, &secs, 5.0)
        ));
    }
    let gpr = report::seconds_of(measurements, "G-PR-Shr");
    out.push_str(&format!(
        "fraction of graphs where G-PR beats PR: {:.2}   (paper: 0.82)\n",
        profiles::fraction_at_least(&pr, &gpr, 1.0)
    ));
    (out, curves)
}

/// Figure 3: performance profiles of the parallel algorithms.
pub fn figure3(measurements: &[Measurement]) -> (String, BTreeMap<String, Vec<ProfilePoint>>) {
    let mut all = BTreeMap::new();
    for alg in ["G-PR-Shr", "G-HKDW", "P-DBFS"] {
        let secs = report::seconds_of(measurements, alg);
        if !secs.is_empty() {
            all.insert(alg.to_string(), secs);
        }
    }
    let curves = profiles::performance_profiles(&all, &profiles::figure3_thresholds());
    let mut out = String::from(
        "Figure 3 — performance profiles of the parallel algorithms\n\
         (a point (x, y): with probability y the algorithm is at most x times worse than the best)\n\n",
    );
    for (alg, curve) in &curves {
        out.push_str(&report::render_profile(alg, curve));
        out.push('\n');
    }
    // Headline numbers: fraction within 1.5× of the best, and fraction best.
    for (alg, curve) in &curves {
        if let Some(p) = curve.iter().find(|p| (p.x - 1.5).abs() < 1e-9) {
            out.push_str(&format!(
                "P(within 1.5x of best) for {:>8}: {:.2}   (paper: G-PR 0.75, G-HKDW 0.46, P-DBFS 0.14)\n",
                alg, p.y
            ));
        }
    }
    if let Some(best_fraction) = fraction_best(&all, "G-PR-Shr") {
        out.push_str(&format!(
            "fraction of graphs where G-PR is the fastest: {best_fraction:.2}   (paper: 0.61)\n"
        ));
    }
    (out, curves)
}

fn fraction_best(all: &BTreeMap<String, BTreeMap<u32, f64>>, target: &str) -> Option<f64> {
    let target_secs = all.get(target)?;
    let mut wins = 0usize;
    let mut total = 0usize;
    for (id, &secs) in target_secs {
        let best_other = all
            .iter()
            .filter(|(alg, _)| alg.as_str() != target)
            .filter_map(|(_, m)| m.get(id))
            .cloned()
            .fold(f64::INFINITY, f64::min);
        total += 1;
        if secs <= best_other {
            wins += 1;
        }
    }
    (total > 0).then(|| wins as f64 / total as f64)
}

/// Figure 4: individual speedups of G-PR over sequential PR per instance,
/// ordered by increasing number of rows (instance id).
pub fn figure4(measurements: &[Measurement]) -> (String, BTreeMap<u32, f64>) {
    let pr = report::seconds_of(measurements, "PR");
    let gpr = report::seconds_of(measurements, "G-PR-Shr");
    let mut speedups: BTreeMap<u32, f64> = BTreeMap::new();
    for (&id, &gpr_secs) in &gpr {
        if let Some(&pr_secs) = pr.get(&id) {
            speedups.insert(id, pr_secs / gpr_secs);
        }
    }
    let names: BTreeMap<u32, String> =
        measurements.iter().map(|m| (m.instance_id, m.instance_name.clone())).collect();
    let mut out = String::from(
        "Figure 4 — individual speedups of G-PR w.r.t. sequential PR (instances ordered by #rows)\n\n",
    );
    let rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|(id, s)| {
            let bar = "#".repeat((s * 4.0).round().min(120.0) as usize);
            vec![id.to_string(), names[id].clone(), format!("{s:.2}"), bar]
        })
        .collect();
    out.push_str(&report::render_table(&["id", "graph", "speedup", ""], &rows));
    if !speedups.is_empty() {
        let values: Vec<f64> = speedups.values().copied().collect();
        let above_one = values.iter().filter(|&&s| s >= 1.0).count();
        out.push_str(&format!(
            "\nspeedup > 1 on {}/{} graphs (paper: 23/28); min {:.2}, max {:.2}, geomean {:.2} \
             (paper: min 0.31, max 12.60, avg 3.05)\n",
            above_one,
            values.len(),
            values.iter().cloned().fold(f64::INFINITY, f64::min),
            values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            report::geometric_mean(&values),
        ));
    }
    (out, speedups)
}

/// Table I: per-instance sizes, IM/MM cardinalities, and runtimes of the four
/// compared algorithms, with geometric means in the bottom row.
pub fn table1(measurements: &[Measurement], opts: &Options) -> String {
    let algorithms = ["G-PR-Shr", "G-HKDW", "P-DBFS", "PR"];
    let mut out = String::from("Table I — per-instance runtimes (comparable seconds)\n\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for spec in &opts.suite {
        let per_alg: BTreeMap<&str, f64> = algorithms
            .iter()
            .filter_map(|&alg| {
                measurements
                    .iter()
                    .find(|m| m.instance_id == spec.id && m.algorithm == alg)
                    .map(|m| (alg, m.seconds))
            })
            .collect();
        if per_alg.is_empty() {
            continue;
        }
        let sample =
            measurements.iter().find(|m| m.instance_id == spec.id).expect("instance measured");
        rows.push(vec![
            spec.id.to_string(),
            spec.name.to_string(),
            sample.initial_cardinality.to_string(),
            sample.maximum_cardinality.to_string(),
            report::fmt_secs(per_alg.get("G-PR-Shr").copied().unwrap_or(f64::NAN)),
            report::fmt_secs(per_alg.get("G-HKDW").copied().unwrap_or(f64::NAN)),
            report::fmt_secs(per_alg.get("P-DBFS").copied().unwrap_or(f64::NAN)),
            report::fmt_secs(per_alg.get("PR").copied().unwrap_or(f64::NAN)),
        ]);
    }
    let geomeans = report::geomean_by_algorithm(measurements);
    rows.push(vec![
        String::new(),
        "GEOMEAN".to_string(),
        String::new(),
        String::new(),
        report::fmt_secs(geomeans.get("G-PR-Shr").copied().unwrap_or(f64::NAN)),
        report::fmt_secs(geomeans.get("G-HKDW").copied().unwrap_or(f64::NAN)),
        report::fmt_secs(geomeans.get("P-DBFS").copied().unwrap_or(f64::NAN)),
        report::fmt_secs(geomeans.get("PR").copied().unwrap_or(f64::NAN)),
    ]);
    out.push_str(&report::render_table(
        &["ID", "Graph", "IM", "MM", "G-PR", "G-HKDW", "P-DBFS", "PR"],
        &rows,
    ));
    // Headline ratios quoted in the paper: G-PR is 1.30x faster than G-HKDW
    // and 2.82x faster than P-DBFS in geometric mean.
    if let (Some(gpr), Some(ghkdw), Some(pdbfs), Some(pr)) = (
        geomeans.get("G-PR-Shr"),
        geomeans.get("G-HKDW"),
        geomeans.get("P-DBFS"),
        geomeans.get("PR"),
    ) {
        out.push_str(&format!(
            "\ngeomean ratios: G-HKDW/G-PR = {:.2} (paper 1.30), P-DBFS/G-PR = {:.2} (paper 2.82), PR/G-PR = {:.2} (paper 3.07)\n",
            ghkdw / gpr,
            pdbfs / gpr,
            pr / gpr
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::instances::Scale;

    fn tiny_mini_options() -> Options {
        Options {
            scale: Scale::Tiny,
            suite: gpm_graph::instances::mini_suite().into_iter().take(2).collect(),
            suite_name: "mini".into(),
            json_path: None,
        }
    }

    #[test]
    fn comparison_measurements_cover_all_algorithms_and_instances() {
        let opts = tiny_mini_options();
        let ms = run_paper_comparison(&opts);
        assert_eq!(ms.len(), opts.suite.len() * 4);
        for m in &ms {
            assert_eq!(m.cardinality, m.maximum_cardinality);
        }
        let t = table1(&ms, &opts);
        assert!(t.contains("GEOMEAN"));
        let (f2, curves2) = figure2(&ms);
        assert!(f2.contains("G-PR-Shr"));
        assert_eq!(curves2.len(), 3);
        let (f3, curves3) = figure3(&ms);
        assert!(f3.contains("performance profiles"));
        assert_eq!(curves3.len(), 3);
        let (f4, speedups) = figure4(&ms);
        assert!(f4.contains("speedup"));
        assert_eq!(speedups.len(), opts.suite.len());
    }

    #[test]
    fn figure1_sweep_has_21_cells_and_renders() {
        let opts = Options {
            suite: gpm_graph::instances::mini_suite().into_iter().take(1).collect(),
            ..tiny_mini_options()
        };
        let fig1 = figure1(&opts);
        assert_eq!(fig1.cells.len(), 21);
        assert!(fig1.geomean("G-PR-Shr", "adaptive, 0.7").is_some());
        let text = fig1.render();
        assert!(text.contains("G-PR-First"));
        assert!(text.contains("adaptive, 0.7"));
        assert!(text.contains("best configuration"));
    }
}
