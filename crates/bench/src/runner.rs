//! Instance preparation and measurement plumbing shared by all figure/table
//! binaries and the Criterion benches.

use gpm_core::solver::{self, Algorithm, Solver};
use gpm_core::{GhkVariant, SolveError};
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::instances::{InstanceSpec, Scale};
use gpm_graph::{BipartiteCsr, Matching};
use serde::Serialize;

/// A generated instance, ready to be solved: the scaled stand-in graph, the
/// common cheap initial matching, and the maximum cardinality (computed once
/// with Hopcroft–Karp and reused to verify every solver).
pub struct InstanceRun {
    /// The Table I entry this instance stands in for.
    pub spec: InstanceSpec,
    /// Scale at which the stand-in was generated.
    pub scale: Scale,
    /// The generated graph.
    pub graph: BipartiteCsr,
    /// The cheap greedy initial matching (common to all algorithms).
    pub initial: Matching,
    /// Cardinality of the initial matching ("IM" in Table I).
    pub initial_cardinality: usize,
    /// Maximum matching cardinality ("MM" in Table I), computed with HK.
    pub maximum_cardinality: usize,
}

/// Prepares one instance: generates the graph, builds the cheap matching,
/// and computes the reference maximum with Hopcroft–Karp.
pub fn prepare_instance(spec: &InstanceSpec, scale: Scale) -> InstanceRun {
    let graph =
        spec.generate(scale).unwrap_or_else(|e| panic!("generating {} failed: {e}", spec.name));
    let initial = cheap_matching(&graph);
    let initial_cardinality = initial.cardinality();
    let maximum_cardinality = gpm_cpu::hopcroft_karp(&graph, &initial).matching.cardinality();
    InstanceRun {
        spec: spec.clone(),
        scale,
        graph,
        initial,
        initial_cardinality,
        maximum_cardinality,
    }
}

/// One measured (instance, algorithm) pair.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// Instance id (1–28, the x-axis of Figure 4).
    pub instance_id: u32,
    /// Instance name (the original UFL matrix it stands in for).
    pub instance_name: String,
    /// Algorithm label (G-PR-Shr, G-HKDW, P-DBFS, PR, …).
    pub algorithm: String,
    /// Full round-trippable algorithm spec (e.g. `G-PR-Shr@adaptive:0.7`),
    /// parseable back with `Algorithm::from_str`.
    pub algorithm_spec: String,
    /// Comparable seconds: modelled device time for GPU algorithms, host
    /// wall-clock for CPU algorithms.
    pub seconds: f64,
    /// Host wall-clock seconds (for reference).
    pub wall_seconds: f64,
    /// Cardinality found by the solver.
    pub cardinality: usize,
    /// Reference maximum cardinality (from HK); always equals `cardinality`.
    pub maximum_cardinality: usize,
    /// Cardinality of the common initial matching.
    pub initial_cardinality: usize,
}

/// Solves `instance` with `algorithm` on the given warm [`Solver`] session,
/// verifies the result against the reference maximum, and returns the
/// measurement.  Reusing one session across a suite makes the per-call setup
/// (device creation, buffer allocation) disappear from the harness, matching
/// the paper's methodology of excluding common setup from reported times.
///
/// # Panics
/// Panics if the solver returns a non-maximum matching — a benchmark result
/// from a wrong answer is worse than no result.  Configuration errors are
/// returned as [`SolveError`]s instead.
pub fn measure(
    instance: &InstanceRun,
    algorithm: Algorithm,
    solver: &mut Solver,
) -> Result<Measurement, SolveError> {
    let report = solver.solve_with_initial(&instance.graph, &instance.initial, algorithm)?;
    assert_eq!(
        report.cardinality, instance.maximum_cardinality,
        "{} returned a non-maximum matching on {} ({} vs {})",
        report.algorithm, instance.spec.name, report.cardinality, instance.maximum_cardinality
    );
    Ok(Measurement {
        instance_id: instance.spec.id,
        instance_name: instance.spec.name.to_string(),
        algorithm: report.algorithm.clone(),
        algorithm_spec: algorithm.to_string(),
        seconds: report.comparable_seconds(),
        wall_seconds: report.wall_seconds,
        cardinality: report.cardinality,
        maximum_cardinality: instance.maximum_cardinality,
        initial_cardinality: instance.initial_cardinality,
    })
}

/// The four algorithms of the paper's headline comparison (Figures 2–4,
/// Table I): G-PR-Shr (adaptive, 0.7), G-HKDW, P-DBFS (8 threads), PR.
pub fn paper_algorithms() -> Vec<Algorithm> {
    solver::paper_comparison_set()
}

/// Convenience: G-HKDW as an [`Algorithm`].
pub fn ghkdw() -> Algorithm {
    Algorithm::ghk(GhkVariant::Hkdw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::instances;

    #[test]
    fn prepare_and_measure_one_instance() {
        let spec = instances::by_name("amazon0505").unwrap();
        let instance = prepare_instance(&spec, Scale::Tiny);
        assert!(instance.maximum_cardinality >= instance.initial_cardinality);
        assert!(instance.graph.num_rows() >= 256);

        let mut solver = Solver::new();
        for alg in paper_algorithms() {
            let m = measure(&instance, alg, &mut solver).unwrap();
            assert_eq!(m.cardinality, instance.maximum_cardinality);
            assert!(m.seconds >= 0.0);
            assert_eq!(m.instance_id, 1);
            assert_eq!(m.algorithm_spec.parse::<Algorithm>().unwrap(), alg);
        }
        // One warm engine per algorithm was retained by the session.
        assert_eq!(solver.warm_engine_count(), paper_algorithms().len());
    }

    #[test]
    fn measure_surfaces_config_errors_instead_of_panicking() {
        let spec = instances::by_name("amazon0505").unwrap();
        let instance = prepare_instance(&spec, Scale::Tiny);
        let mut solver = Solver::new();
        let err = measure(&instance, Algorithm::Pdbfs(0), &mut solver).unwrap_err();
        assert!(matches!(err, SolveError::InvalidConfig { .. }));
    }

    #[test]
    fn paper_algorithm_labels() {
        let labels: Vec<String> = paper_algorithms().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["G-PR-Shr", "G-HKDW", "P-DBFS", "PR"]);
    }
}
