//! Ablation: virtual-GPU backend (deterministic sequential interleaving vs
//! truly concurrent worker pool).  The parallel backend is the realistic one;
//! the sequential backend quantifies how much host-side concurrency the
//! reproduction gains on top of the kernel-count structure.
//!
//! Run with `cargo bench -p gpm-bench --bench ablation_backend`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_core::gpr::{self, GprConfig};
use gpm_gpu::{Backend, VirtualGpu};
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::instances::{by_name, Scale};

fn bench_backends(c: &mut Criterion) {
    let spec = by_name("com-livejournal").expect("known instance");
    let graph = spec.generate(Scale::Tiny).expect("generation");
    let initial = cheap_matching(&graph);
    let mut group = c.benchmark_group("vgpu_backend");
    group.sample_size(10);
    let backends: Vec<(&str, VirtualGpu)> = vec![
        ("sequential", VirtualGpu::sequential()),
        ("parallel-2", VirtualGpu::tesla_c2050(Backend::Parallel { workers: 2 })),
        ("parallel-auto", VirtualGpu::parallel()),
    ];
    for (name, gpu) in &backends {
        group.bench_with_input(BenchmarkId::from_parameter(name), gpu, |b, gpu| {
            b.iter(|| {
                gpr::run(gpu, &graph, &initial, GprConfig::paper_default()).matching.cardinality()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
