//! Throughput of the `gpm-service` warm solver pool vs cold per-job solving.
//!
//! Each iteration pushes the same mixed batch of jobs — every mini-suite
//! instance × the CPU algorithms — through three execution models:
//!
//! * `cold` — per-job graph reconstruction from its edge list (what a
//!   cache-less service does with every inline request) plus a fresh
//!   `Solver` per job: every job pays upload and setup;
//! * `pool/1` — one `Service` worker: graphs uploaded once into the
//!   content-addressed cache, jobs go by fingerprint, the worker's session
//!   stays warm (amortization without parallelism);
//! * `pool/N` — N workers (N = host parallelism, capped at 4): the same,
//!   plus concurrent draining of the queue.
//!
//! `pool/N` beating `cold` is the subsystem's reason to exist; the margin
//! between `pool/1` and `pool/N` is the scaling headroom on this host.
//!
//! Run with `cargo bench -p gpm-bench --bench service_throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_core::solver::{Algorithm, DevicePolicy, Solver};
use gpm_graph::instances::{mini_suite, Scale};
use gpm_graph::BipartiteCsr;
use gpm_service::{GraphSource, JobSpec, Service};
use std::sync::Arc;

fn corpus() -> Vec<Arc<BipartiteCsr>> {
    mini_suite()
        .iter()
        .map(|spec| Arc::new(spec.generate(Scale::Tiny).expect("generate")))
        .collect()
}

fn algorithms() -> Vec<Algorithm> {
    // CPU algorithms only: the batch cycles 8 distinct graph shapes through
    // every engine, so GPU workspace reuse cannot kick in (buffers resize
    // on every shape change) and would only measure queue overhead.  The
    // same-shape warm win for GPU engines is measured by `solver_reuse`.
    vec![Algorithm::HopcroftKarp, Algorithm::PothenFan, Algorithm::Pdbfs(2)]
}

fn jobs(graphs: &[Arc<BipartiteCsr>]) -> Vec<(Arc<BipartiteCsr>, Algorithm)> {
    graphs
        .iter()
        .flat_map(|g| algorithms().into_iter().map(move |alg| (Arc::clone(g), alg)))
        .collect()
}

fn bench_service_throughput(c: &mut Criterion) {
    let graphs = corpus();
    let batch = jobs(&graphs);
    let pool_n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 4);

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    // What each cold job receives: the raw upload (shape + edge list), the
    // form every request arrives in over the wire.
    struct Upload {
        rows: usize,
        cols: usize,
        edges: Vec<(u32, u32)>,
    }
    let uploads: Vec<Upload> = batch
        .iter()
        .map(|(g, _)| Upload { rows: g.num_rows(), cols: g.num_cols(), edges: g.edges().collect() })
        .collect();

    group.bench_function(BenchmarkId::new("cold", batch.len()), |b| {
        b.iter(|| {
            // The cache-less execution model: every job re-materializes its
            // graph from the upload and builds a session from scratch.
            let mut total = 0usize;
            for (upload, (_, alg)) in uploads.iter().zip(&batch) {
                let graph = BipartiteCsr::from_edges(upload.rows, upload.cols, &upload.edges)
                    .expect("re-materialize");
                let mut solver = Solver::builder()
                    .device_policy(DevicePolicy::Sequential)
                    .build()
                    .expect("valid solver config");
                total += solver.solve(&graph, *alg).expect("solve").cardinality;
            }
            total
        })
    });

    for workers in [1usize, pool_n] {
        group.bench_function(BenchmarkId::new(format!("pool/{workers}"), batch.len()), |b| {
            let service = Service::builder()
                .workers(workers)
                .cache_capacity(graphs.len())
                .device_policy(DevicePolicy::Sequential)
                .build();
            // Register the corpus once; jobs then go by fingerprint, the
            // steady-state shape of a sweep client.
            let fingerprints: Vec<u64> =
                graphs.iter().map(|g| service.put_graph(Arc::clone(g))).collect();
            let specs: Vec<JobSpec> = batch
                .iter()
                .enumerate()
                .map(|(i, (_, alg))| {
                    JobSpec::new(GraphSource::Cached(fingerprints[i / algorithms().len()]), *alg)
                })
                .collect();
            // Prime the pool so measured iterations see warm engines.
            for handle in service.submit_batch(specs.iter().cloned()) {
                handle.wait().expect("prime");
            }
            b.iter(|| {
                let mut total = 0usize;
                for handle in service.submit_batch(specs.iter().cloned()) {
                    total += handle.wait().expect("solve").report.cardinality;
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
