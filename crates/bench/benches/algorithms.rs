//! Criterion bench of the paper's four-algorithm comparison (Table I /
//! Figures 2–4) on representative tiny-scale instances.
//!
//! Run with `cargo bench -p gpm-bench --bench algorithms`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_bench::runner::{measure, paper_algorithms, prepare_instance};
use gpm_core::solver::Solver;
use gpm_graph::instances::{by_name, Scale};

fn bench_paper_algorithms(c: &mut Criterion) {
    // One representative per structural family: social (kron), road, mesh.
    let names = ["kron_g500-logn20", "roadNet-PA", "hugetrace-00000"];
    let mut group = c.benchmark_group("paper_algorithms");
    group.sample_size(10);
    let mut solver = Solver::builder().build().expect("valid solver config");
    for name in names {
        let spec = by_name(name).expect("known instance");
        let instance = prepare_instance(&spec, Scale::Tiny);
        for alg in paper_algorithms() {
            group.bench_with_input(BenchmarkId::new(alg.label(), name), &alg, |b, &alg| {
                b.iter(|| measure(&instance, alg, &mut solver).expect("measure").seconds)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_paper_algorithms);
criterion_main!(benches);
