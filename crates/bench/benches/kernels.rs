//! Criterion microbenches of the virtual-GPU building blocks: kernel launch
//! overhead, device prefix sum, and the global-relabeling BFS kernels.
//!
//! Run with `cargo bench -p gpm-bench --bench kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_core::device::DeviceState;
use gpm_core::ggr::global_relabel;
use gpm_gpu::{primitives, DeviceBuffer, VirtualGpu};
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::instances::{by_name, Scale};

fn bench_launch_overhead(c: &mut Criterion) {
    let gpu = VirtualGpu::parallel();
    let mut group = c.benchmark_group("kernel_launch");
    for &n in &[1usize, 1_000, 100_000] {
        let buf = DeviceBuffer::<u32>::new(n, 0);
        group.bench_with_input(BenchmarkId::new("identity_kernel", n), &n, |b, _| {
            b.iter(|| gpu.launch("bench_identity", buf.len(), |ctx| buf.set(ctx.global_id, 1)))
        });
    }
    group.finish();
}

fn bench_prefix_sum(c: &mut Criterion) {
    let gpu = VirtualGpu::parallel();
    let mut group = c.benchmark_group("prefix_sum");
    for &n in &[1_000usize, 100_000] {
        let data: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
        let buf = DeviceBuffer::from_slice(&data);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| primitives::exclusive_prefix_sum(&gpu, &buf).1)
        });
    }
    group.finish();
}

fn bench_global_relabel(c: &mut Criterion) {
    let gpu = VirtualGpu::parallel();
    let spec = by_name("roadNet-PA").expect("known instance");
    let graph = spec.generate(Scale::Tiny).expect("generation");
    let matching = cheap_matching(&graph);
    c.bench_function("global_relabel_roadnet_tiny", |b| {
        b.iter(|| {
            let state = DeviceState::upload(&graph, &matching);
            global_relabel(&gpu, &graph, &state).max_level
        })
    });
}

criterion_group!(benches, bench_launch_overhead, bench_prefix_sum, bench_global_relabel);
criterion_main!(benches);
