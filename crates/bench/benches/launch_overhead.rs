//! Launch overhead: launches/second under each execution strategy.
//!
//! The paper's algorithms are launch-bound — one kernel per BFS level or
//! push-relabel sweep — so the host cost of *starting* a launch matters as
//! much as the kernel work.  This bench pits three strategies against each
//! other on a tiny and a large grid:
//!
//! * `sequential`   — everything inline on the calling thread (no threads);
//! * `scoped-spawn` — the seed's behaviour: spawn + join scoped host threads
//!   on every launch (`ExecutorConfig::per_launch_spawn`);
//! * `pooled`       — the persistent worker pool with dynamic chunking.
//!
//! The second group replays the comparison end-to-end: one G-PR solve on a
//! fixed instance, pooled executor vs the per-launch-spawn seed baseline,
//! identical in every other respect.
//!
//! Run with `cargo bench -p gpm-bench --bench launch_overhead`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_core::gpr::{self, GprConfig};
use gpm_gpu::{Backend, DeviceBuffer, ExecutorConfig, GpuConfig, VirtualGpu};
use gpm_graph::gen;
use gpm_graph::heuristics::cheap_matching;

fn workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 4)
}

/// A parallel device with the given strategy, with the inline threshold
/// dropped so every launch actually exercises the strategy under test.
fn device(per_launch_spawn: bool, parallel_threshold: usize) -> VirtualGpu {
    VirtualGpu::new(GpuConfig::tesla_c2050(Backend::Parallel { workers: workers() }).with_executor(
        ExecutorConfig { parallel_threshold, per_launch_spawn, ..Default::default() },
    ))
}

fn bench_launch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("launch_overhead");
    for grid in [256usize, 65_536] {
        let strategies = [
            ("sequential", VirtualGpu::sequential()),
            ("scoped-spawn", device(true, 1)),
            ("pooled", device(false, 1)),
        ];
        for (label, gpu) in strategies {
            let out = DeviceBuffer::<u32>::new(grid, 0);
            group.bench_with_input(BenchmarkId::new(label, grid), &grid, |b, _| {
                b.iter(|| gpu.launch("bench_launch", out.len(), |ctx| out.set(ctx.global_id, 1)))
            });
        }
    }
    group.finish();

    // End-to-end datapoint: one G-PR solve, pooled executor vs the seed's
    // per-launch scoped spawn, with a threshold low enough that the solve's
    // many mid-sized kernels go parallel on both.
    let graph = gen::rmat(gen::RmatParams::web_like(10, 4), 3).expect("instance");
    let initial = cheap_matching(&graph);
    let mut group = c.benchmark_group("gpr_end_to_end");
    group.sample_size(10);
    for (label, per_launch_spawn) in [("pooled", false), ("scoped-spawn-seed", true)] {
        let gpu = device(per_launch_spawn, 256);
        group.bench_function(label, |b| {
            b.iter(|| {
                gpr::run(&gpu, &graph, &initial, GprConfig::paper_default()).matching.cardinality()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_launch_overhead);
criterion_main!(benches);
