//! Criterion bench of the global-relabeling strategies (the Figure 1 sweep)
//! for the best-performing variant, G-PR-Shr.
//!
//! Run with `cargo bench -p gpm-bench --bench gr_strategies`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_bench::runner::{measure, prepare_instance};
use gpm_core::solver::{Algorithm, Solver};
use gpm_core::{strategy::figure1_strategies, GprVariant};
use gpm_graph::instances::{by_name, Scale};

fn bench_gr_strategies(c: &mut Criterion) {
    let spec = by_name("kron_g500-logn20").expect("known instance");
    let instance = prepare_instance(&spec, Scale::Tiny);
    let mut group = c.benchmark_group("gr_strategies");
    group.sample_size(10);
    let mut solver = Solver::builder().build().expect("valid solver config");
    for strategy in figure1_strategies() {
        let alg = Algorithm::gpr(GprVariant::Shrink, strategy);
        group.bench_with_input(BenchmarkId::new("G-PR-Shr", strategy.label()), &alg, |b, &alg| {
            b.iter(|| measure(&instance, alg, &mut solver).expect("measure").seconds)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gr_strategies);
criterion_main!(benches);
