//! Ablation: the effect of processing only the active columns
//! (G-PR-First vs G-PR-NoShr vs G-PR-Shr), the design choice behind the
//! 14–84% improvement the paper reports for the active-list kernels.
//!
//! Run with `cargo bench -p gpm-bench --bench ablation_active_list`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_bench::runner::{measure, prepare_instance};
use gpm_core::solver::{Algorithm, Solver};
use gpm_core::{GprVariant, GrStrategy};
use gpm_graph::instances::{by_name, Scale};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpr_variants");
    group.sample_size(10);
    let mut solver = Solver::builder().build();
    for name in ["kron_g500-logn20", "amazon0505"] {
        let spec = by_name(name).expect("known instance");
        let instance = prepare_instance(&spec, Scale::Tiny);
        for variant in [GprVariant::First, GprVariant::ActiveList, GprVariant::Shrink] {
            let alg = Algorithm::GpuPushRelabel(variant, GrStrategy::paper_default());
            group.bench_with_input(BenchmarkId::new(variant.label(), name), &alg, |b, &alg| {
                b.iter(|| measure(&instance, alg, &mut solver).expect("measure").seconds)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
