//! Ablation: how the active set is managed on the device.
//!
//! Two sweeps:
//!
//! * `gpr_variants` — G-PR-First vs G-PR-NoShr vs G-PR-Shr, the design
//!   choice behind the 14–84% improvement the paper reports for the
//!   active-list kernels;
//! * `worklist_modes` — the four worklist representations (`dense`,
//!   `compacted`, `queue`, `blocked`) under the paper's best variant,
//!   across instance families from both deficiency regimes.  This doubles
//!   as the atomic-contention ablation: small-deficiency instances
//!   (meshes, road networks) are the launch-bound regime where the
//!   atomic-append queues beat the compacted lists, and within the queues
//!   the blocked representation shows what amortizing the contended tail
//!   `fetch_add` over cache-line-sized blocks buys back from the model's
//!   hot-word serialization charge.
//!
//! Run with `cargo bench -p gpm-bench --bench ablation_active_list`.
//! Set `GPM_ABLATION_QUICK=1` to restrict the sweep to two instances with
//! few samples (the CI smoke configuration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_bench::runner::{measure, prepare_instance};
use gpm_core::solver::{Algorithm, Solver};
use gpm_core::{GprVariant, GrStrategy, WorklistMode};
use gpm_graph::instances::{by_name, Scale};

fn quick() -> bool {
    std::env::var("GPM_ABLATION_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

fn sample_size() -> usize {
    if quick() {
        2
    } else {
        10
    }
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpr_variants");
    group.sample_size(sample_size());
    let mut solver = Solver::builder().build().expect("valid solver config");
    let names: &[&str] =
        if quick() { &["kron_g500-logn20"] } else { &["kron_g500-logn20", "amazon0505"] };
    for name in names {
        let spec = by_name(name).expect("known instance");
        let instance = prepare_instance(&spec, Scale::Tiny);
        for variant in [GprVariant::First, GprVariant::ActiveList, GprVariant::Shrink] {
            let alg = Algorithm::gpr(variant, GrStrategy::paper_default());
            group.bench_with_input(BenchmarkId::new(variant.label(), name), &alg, |b, &alg| {
                b.iter(|| measure(&instance, alg, &mut solver).expect("measure").seconds)
            });
        }
    }
    group.finish();
}

fn bench_worklist_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("worklist_modes");
    group.sample_size(sample_size());
    let mut solver = Solver::builder().build().expect("valid solver config");
    // Small-deficiency (launch-bound: mesh, road) and large-deficiency
    // (scan-bound: social, web-like) families from the paper's Table I.
    let names: &[&str] = if quick() {
        &["delaunay_n20", "roadNet-PA"]
    } else {
        &["delaunay_n20", "roadNet-PA", "hugetrace-00000", "kron_g500-logn20", "amazon0505"]
    };
    for name in names {
        let spec = by_name(name).expect("known instance");
        let instance = prepare_instance(&spec, Scale::Tiny);
        for mode in WorklistMode::all() {
            let alg = Algorithm::gpr_default().with_worklist(mode);
            group.bench_with_input(BenchmarkId::new(mode.label(), name), &alg, |b, &alg| {
                b.iter(|| measure(&instance, alg, &mut solver).expect("measure").seconds)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_worklist_modes);
criterion_main!(benches);
