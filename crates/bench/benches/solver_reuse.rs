//! Cold-per-call vs warm-session solving: how much of a solve is the common
//! setup (device creation, buffer allocation, engine construction) that a
//! reusable [`Solver`] session amortizes away.
//!
//! `cold` builds a fresh `Solver` for every solve — the behaviour of the old
//! free-function API.  `warm` reuses one session, so same-shaped solves hit
//! the per-algorithm buffer pools.
//!
//! Run with `cargo bench -p gpm-bench --bench solver_reuse`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_core::solver::{Algorithm, DevicePolicy, Solver};
use gpm_core::GhkVariant;
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::instances::{by_name, Scale};

fn bench_solver_reuse(c: &mut Criterion) {
    let spec = by_name("kron_g500-logn20").expect("known instance");
    let graph = spec.generate(Scale::Tiny).expect("generation");
    let initial = cheap_matching(&graph);
    let algorithms = [
        Algorithm::gpr_default(),
        Algorithm::ghk(GhkVariant::Hkdw),
        Algorithm::SequentialPushRelabel(0.5),
    ];
    let mut group = c.benchmark_group("solver_reuse");
    group.sample_size(10);
    for alg in algorithms {
        group.bench_with_input(BenchmarkId::new("cold", alg.label()), &alg, |b, &alg| {
            b.iter(|| {
                // A fresh session per call: pays device + workspace setup.
                let mut solver = Solver::builder()
                    .device_policy(DevicePolicy::Sequential)
                    .build()
                    .expect("valid solver config");
                solver.solve_with_initial(&graph, &initial, alg).expect("solve").cardinality
            })
        });
        group.bench_with_input(BenchmarkId::new("warm", alg.label()), &alg, |b, &alg| {
            let mut solver = Solver::builder()
                .device_policy(DevicePolicy::Sequential)
                .build()
                .expect("valid solver config");
            // Prime the session so the measured solves reuse warm buffers.
            solver.solve_with_initial(&graph, &initial, alg).expect("solve");
            b.iter(|| solver.solve_with_initial(&graph, &initial, alg).expect("solve").cardinality)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver_reuse);
criterion_main!(benches);
