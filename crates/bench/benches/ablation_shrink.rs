//! Ablation: the shrink threshold (the paper only compacts the active-column
//! list while it has at least 512 entries; this sweep varies that cutoff).
//!
//! Run with `cargo bench -p gpm-bench --bench ablation_shrink`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_core::gpr::{self, GprConfig, GprVariant};
use gpm_gpu::VirtualGpu;
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::instances::{by_name, Scale};

fn bench_shrink_threshold(c: &mut Criterion) {
    let spec = by_name("kron_g500-logn21").expect("known instance");
    let graph = spec.generate(Scale::Tiny).expect("generation");
    let initial = cheap_matching(&graph);
    let gpu = VirtualGpu::parallel();
    let mut group = c.benchmark_group("shrink_threshold");
    group.sample_size(10);
    for &threshold in &[usize::MAX, 4096, 512, 64, 1] {
        let label = if threshold == usize::MAX { "off".to_string() } else { threshold.to_string() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &threshold, |b, &threshold| {
            b.iter(|| {
                let config = GprConfig {
                    variant: GprVariant::Shrink,
                    shrink_threshold: threshold,
                    ..GprConfig::paper_default()
                };
                gpr::run(&gpu, &graph, &initial, config).matching.cardinality()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shrink_threshold);
criterion_main!(benches);
