//! Ablation: sensitivity of G-PR and sequential PR to the initialization
//! heuristic (no initial matching, the paper's cheap matching, Karp–Sipser).
//!
//! Run with `cargo bench -p gpm-bench --bench ablation_init`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_core::solver::{Algorithm, Solver};
use gpm_graph::heuristics::{cheap_matching, karp_sipser};
use gpm_graph::instances::{by_name, Scale};
use gpm_graph::Matching;

fn bench_initialization(c: &mut Criterion) {
    let spec = by_name("flickr").expect("known instance");
    let graph = spec.generate(Scale::Tiny).expect("generation");
    let inits: Vec<(&str, Matching)> = vec![
        ("none", Matching::empty_for(&graph)),
        ("cheap", cheap_matching(&graph)),
        ("karp-sipser", karp_sipser(&graph)),
    ];
    let mut group = c.benchmark_group("initialization");
    group.sample_size(10);
    let mut solver = Solver::builder().build().expect("valid solver config");
    for algorithm in [Algorithm::gpr_default(), Algorithm::SequentialPushRelabel(0.5)] {
        for (init_name, init) in &inits {
            group.bench_with_input(
                BenchmarkId::new(algorithm.label(), init_name),
                init,
                |b, init| {
                    b.iter(|| {
                        solver
                            .solve_with_initial(&graph, init, algorithm)
                            .expect("solve")
                            .cardinality
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_initialization);
criterion_main!(benches);
