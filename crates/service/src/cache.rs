//! Content-addressed graph cache with LRU eviction.
//!
//! Clients of a long-running matching service solve the same instance many
//! times (parameter sweeps, algorithm ablations).  The cache keys each graph
//! by [`BipartiteCsr::fingerprint`], so a repeat upload is recognized as the
//! same content regardless of the order its edges arrived in, and a job can
//! name a graph by its 64-bit key instead of re-shipping megabytes of edges.

use gpm_graph::BipartiteCsr;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Snapshot of the cache's counters, serialized into service stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Maximum number of graphs the cache holds (0 disables caching).
    pub capacity: usize,
    /// Graphs currently cached.
    pub len: usize,
    /// Lookups that found the graph.
    pub hits: u64,
    /// Lookups that missed (never inserted, or evicted).
    pub misses: u64,
    /// Inserts of content not already present.
    pub insertions: u64,
    /// Graphs evicted to make room.
    pub evictions: u64,
    /// Same-fingerprint inserts whose content differed (64-bit hash
    /// collisions); the newest content replaced the old.
    pub collisions: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups, or 0.0 before the first lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another cache's counters into this one (the service aggregates
    /// its per-shard caches this way; capacities and lengths add).
    pub fn merge(&mut self, other: &CacheStats) {
        self.capacity += other.capacity;
        self.len += other.len;
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.collisions += other.collisions;
    }
}

/// An LRU cache of [`BipartiteCsr`]s keyed by content fingerprint.
///
/// Not internally synchronized — the service wraps it in a mutex shared by
/// the worker pool and the front-end.
#[derive(Debug)]
pub struct GraphCache {
    capacity: usize,
    /// fingerprint → (graph, last-touched tick).
    entries: HashMap<u64, (Arc<BipartiteCsr>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    collisions: u64,
}

impl GraphCache {
    /// A cache holding up to `capacity` graphs (0 disables caching: every
    /// insert is dropped and every lookup misses).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            collisions: 0,
        }
    }

    /// Inserts `graph`, returning its fingerprint.  Re-inserting content
    /// already present only refreshes its recency.  Evicts the
    /// least-recently-used graph when full.
    pub fn insert(&mut self, graph: Arc<BipartiteCsr>) -> u64 {
        let fingerprint = graph.fingerprint();
        self.insert_keyed(fingerprint, graph);
        fingerprint
    }

    /// [`Self::insert`] with the fingerprint already computed (callers that
    /// share the cache across threads hash outside the lock).
    ///
    /// `fingerprint` **must** be `graph.fingerprint()`.  If the slot holds
    /// *different* content under the same 64-bit fingerprint — a hash
    /// collision, which a non-cryptographic fingerprint cannot rule out for
    /// untrusted input — the newest upload wins and the event is counted in
    /// [`CacheStats::collisions`], so the most recent uploader always solves
    /// the graph it shipped.
    pub(crate) fn insert_keyed(&mut self, fingerprint: u64, graph: Arc<BipartiteCsr>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&fingerprint) {
            if *entry.0 != *graph {
                entry.0 = graph;
                self.collisions += 1;
            }
            entry.1 = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            // O(len) scan: capacities are small (graphs are megabytes).
            if let Some(&lru) =
                self.entries.iter().min_by_key(|(_, (_, touched))| *touched).map(|(k, _)| k)
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(fingerprint, (graph, self.tick));
        self.insertions += 1;
    }

    /// Looks up a graph by fingerprint, refreshing its recency.  Counts a
    /// hit or a miss.
    pub fn get(&mut self, fingerprint: u64) -> Option<Arc<BipartiteCsr>> {
        self.tick += 1;
        match self.entries.get_mut(&fingerprint) {
            Some((graph, touched)) => {
                *touched = self.tick;
                self.hits += 1;
                Some(Arc::clone(graph))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// `true` iff the fingerprint is cached.  Does not touch recency or
    /// the hit/miss counters.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.entries.contains_key(&fingerprint)
    }

    /// Looks up a graph without touching recency or the hit/miss counters.
    ///
    /// Shards use this to probe *each other's* caches: a remote fetch must
    /// not pollute the owner's LRU order or its hit ratio — the per-shard
    /// counters are how placement quality is measured, so only the owning
    /// shard's own lookups may count.
    pub(crate) fn peek(&self, fingerprint: u64) -> Option<Arc<BipartiteCsr>> {
        self.entries.get(&fingerprint).map(|(graph, _)| Arc::clone(graph))
    }

    /// Removes and returns a graph (rebalancing moves entries between shard
    /// caches).  Not counted as an eviction: the graph is leaving by policy,
    /// not by pressure.
    pub(crate) fn remove(&mut self, fingerprint: u64) -> Option<Arc<BipartiteCsr>> {
        self.entries.remove(&fingerprint).map(|(graph, _)| graph)
    }

    /// The fingerprints currently cached, in unspecified order.
    pub(crate) fn fingerprints(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }

    /// Number of graphs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no graphs are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            capacity: self.capacity,
            len: self.entries.len(),
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            collisions: self.collisions,
        }
    }
}

impl Serialize for GraphCache {
    fn to_value(&self) -> Value {
        self.stats().to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::gen;

    fn graph(seed: u64) -> Arc<BipartiteCsr> {
        Arc::new(gen::uniform_random(20, 20, 60, seed).unwrap())
    }

    #[test]
    fn insert_then_get_hits() {
        let mut cache = GraphCache::new(4);
        let g = graph(1);
        let fp = cache.insert(Arc::clone(&g));
        assert_eq!(fp, g.fingerprint());
        assert!(cache.contains(fp));
        let got = cache.get(fp).unwrap();
        assert_eq!(got.fingerprint(), fp);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);
        assert!(cache.get(fp ^ 1).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert!((cache.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reinserting_same_content_is_idempotent() {
        let mut cache = GraphCache::new(4);
        let fp1 = cache.insert(graph(1));
        let fp2 = cache.insert(graph(1)); // same seed → same content
        assert_eq!(fp1, fp2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = GraphCache::new(2);
        let a = cache.insert(graph(1));
        let b = cache.insert(graph(2));
        // Touch `a` so `b` becomes the LRU entry.
        cache.get(a).unwrap();
        let c = cache.insert(graph(3));
        assert!(cache.contains(a));
        assert!(!cache.contains(b), "LRU entry should have been evicted");
        assert!(cache.contains(c));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn colliding_fingerprint_replaces_content_and_is_counted() {
        // Simulate a 64-bit collision by inserting different content under
        // the same key (insert_keyed trusts its caller's fingerprint).
        let mut cache = GraphCache::new(4);
        let g1 = graph(1);
        let g2 = graph(2);
        let fp = cache.insert(Arc::clone(&g1));
        cache.insert_keyed(fp, Arc::clone(&g2));
        // Newest content wins: the slot now holds g2.
        let got = cache.get(fp).unwrap();
        assert_eq!(*got, *g2);
        assert_eq!(cache.stats().collisions, 1);
        assert_eq!(cache.len(), 1);
        // Re-inserting identical content is not a collision.
        cache.insert_keyed(fp, g2);
        assert_eq!(cache.stats().collisions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = GraphCache::new(0);
        let g = graph(7);
        let fp = cache.insert(Arc::clone(&g));
        assert_eq!(fp, g.fingerprint());
        assert!(cache.is_empty());
        assert!(cache.get(fp).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn stats_serialize_as_a_json_object() {
        let mut cache = GraphCache::new(2);
        cache.insert(graph(1));
        let json = serde_json::to_string(&cache).unwrap();
        assert!(json.contains("\"capacity\":2"), "{json}");
        assert!(json.contains("\"insertions\":1"), "{json}");
    }
}
