//! Aggregate service statistics: job counts, queue depth, and latency
//! aggregates, serialized to JSON for the `stats` request of the wire
//! protocol.

use crate::cache::CacheStats;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// Online aggregate of a latency population (seconds).
///
/// Keeps count/total/min/max — enough for a service dashboard without
/// storing samples.  `min`/`max` report 0.0 while the population is empty so
/// the JSON stays free of nulls.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyAgg {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples, in seconds.
    pub total_seconds: f64,
    /// Smallest sample, in seconds (0.0 when empty).
    pub min_seconds: f64,
    /// Largest sample, in seconds (0.0 when empty).
    pub max_seconds: f64,
}

impl LatencyAgg {
    /// Folds one sample into the aggregate.
    pub fn record(&mut self, seconds: f64) {
        if self.count == 0 {
            self.min_seconds = seconds;
            self.max_seconds = seconds;
        } else {
            self.min_seconds = self.min_seconds.min(seconds);
            self.max_seconds = self.max_seconds.max(seconds);
        }
        self.count += 1;
        self.total_seconds += seconds;
    }

    /// Arithmetic mean, or 0.0 while empty.
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }
}

impl Serialize for LatencyAgg {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("total_seconds".to_string(), Value::F64(self.total_seconds)),
            ("mean_seconds".to_string(), Value::F64(self.mean_seconds())),
            ("min_seconds".to_string(), Value::F64(self.min_seconds)),
            ("max_seconds".to_string(), Value::F64(self.max_seconds)),
        ])
    }
}

/// Per-algorithm job accounting.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct AlgorithmStats {
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that returned an error.
    pub failed: u64,
    /// Solve-time aggregate over successful jobs (seconds spent in the
    /// solver, excluding queue wait).
    pub solve: LatencyAgg,
}

/// A point-in-time snapshot of the whole service.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceStats {
    /// Number of pool workers.
    pub workers: usize,
    /// Jobs accepted so far (including ones still queued or running).
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Jobs rejected at admission because the queue was full
    /// (`ServiceBuilder::max_queue_depth`).  Not counted in `submitted`.
    pub rejected: u64,
    /// Jobs that ended with [`crate::ServiceError::Cancelled`] (also counted
    /// in `failed`).
    pub cancelled: u64,
    /// Jobs that ended with [`crate::ServiceError::DeadlineExceeded`] (also
    /// counted in `failed`).
    pub deadline_exceeded: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Largest queue depth observed.
    pub peak_queue_depth: usize,
    /// Queue-wait aggregate over all dequeued jobs.
    pub queue_wait: LatencyAgg,
    /// Graph-cache counters.
    pub cache: CacheStats,
    /// Accounting keyed by the algorithm's round-trippable label.
    pub per_algorithm: BTreeMap<String, AlgorithmStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_agg_tracks_extremes_and_mean() {
        let mut agg = LatencyAgg::default();
        assert_eq!(agg.mean_seconds(), 0.0);
        for s in [0.5, 0.1, 0.9] {
            agg.record(s);
        }
        assert_eq!(agg.count, 3);
        assert!((agg.min_seconds - 0.1).abs() < 1e-12);
        assert!((agg.max_seconds - 0.9).abs() < 1e-12);
        assert!((agg.mean_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_serializes_with_per_algorithm_keys() {
        let mut per_algorithm = BTreeMap::new();
        let mut hk = AlgorithmStats { completed: 2, ..AlgorithmStats::default() };
        hk.solve.record(0.25);
        per_algorithm.insert("HK".to_string(), hk);
        let stats = ServiceStats {
            workers: 4,
            submitted: 3,
            completed: 2,
            failed: 1,
            rejected: 5,
            cancelled: 1,
            deadline_exceeded: 0,
            queue_depth: 0,
            peak_queue_depth: 3,
            queue_wait: LatencyAgg::default(),
            cache: CacheStats::default(),
            per_algorithm,
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"workers\":4"), "{json}");
        assert!(json.contains("\"HK\""), "{json}");
        assert!(json.contains("\"mean_seconds\""), "{json}");
        assert!(json.contains("\"peak_queue_depth\":3"), "{json}");
        assert!(json.contains("\"rejected\":5"), "{json}");
        assert!(json.contains("\"cancelled\":1"), "{json}");
        assert!(json.contains("\"deadline_exceeded\":0"), "{json}");
    }
}
