//! Aggregate service statistics: job counts, queue depth, and latency
//! aggregates, serialized to JSON for the `stats` request of the wire
//! protocol.

use crate::cache::CacheStats;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// Online aggregate of a latency population (seconds).
///
/// Keeps count/total/min/max — enough for a service dashboard without
/// storing samples.  `min`/`max` report 0.0 while the population is empty so
/// the JSON stays free of nulls.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyAgg {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples, in seconds.
    pub total_seconds: f64,
    /// Smallest sample, in seconds (0.0 when empty).
    pub min_seconds: f64,
    /// Largest sample, in seconds (0.0 when empty).
    pub max_seconds: f64,
}

impl LatencyAgg {
    /// Folds one sample into the aggregate.
    pub fn record(&mut self, seconds: f64) {
        if self.count == 0 {
            self.min_seconds = seconds;
            self.max_seconds = seconds;
        } else {
            self.min_seconds = self.min_seconds.min(seconds);
            self.max_seconds = self.max_seconds.max(seconds);
        }
        self.count += 1;
        self.total_seconds += seconds;
    }

    /// Arithmetic mean, or 0.0 while empty.
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }

    /// Folds another aggregate into this one, as if every sample of `other`
    /// had been recorded here (the service merges per-shard aggregates this
    /// way).  An empty side contributes nothing, so the 0.0 placeholder
    /// extremes of an empty population never leak into a merged min/max.
    pub fn merge(&mut self, other: &LatencyAgg) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_seconds += other.total_seconds;
        self.min_seconds = self.min_seconds.min(other.min_seconds);
        self.max_seconds = self.max_seconds.max(other.max_seconds);
    }
}

impl Serialize for LatencyAgg {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("total_seconds".to_string(), Value::F64(self.total_seconds)),
            ("mean_seconds".to_string(), Value::F64(self.mean_seconds())),
            ("min_seconds".to_string(), Value::F64(self.min_seconds)),
            ("max_seconds".to_string(), Value::F64(self.max_seconds)),
        ])
    }
}

/// Per-algorithm job accounting.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct AlgorithmStats {
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that returned an error.
    pub failed: u64,
    /// Solve-time aggregate over successful jobs (seconds spent in the
    /// solver, excluding queue wait).
    pub solve: LatencyAgg,
}

impl AlgorithmStats {
    /// Folds another shard's accounting for the same algorithm into this
    /// one.
    pub fn merge(&mut self, other: &AlgorithmStats) {
        self.completed += other.completed;
        self.failed += other.failed;
        self.solve.merge(&other.solve);
    }
}

/// A point-in-time snapshot of the whole service.
///
/// On a sharded service this is the fold of every shard's snapshot:
/// counters and cache stats add, latency aggregates [`LatencyAgg::merge`],
/// `queue_depth` sums, and `peak_queue_depth` is the largest single-shard
/// peak (per-shard queues are independent, so a global depth was never
/// observed anywhere).  Per-shard snapshots are available through
/// [`crate::control::ShardStats`].
#[derive(Clone, Debug, Serialize)]
pub struct ServiceStats {
    /// Number of device shards the service runs (1 unless configured
    /// otherwise).
    pub shards: usize,
    /// Number of pool workers (total across all shards).
    pub workers: usize,
    /// Jobs accepted so far (including ones still queued or running).
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Jobs rejected at admission because the queue was full
    /// (`ServiceBuilder::max_queue_depth`).  Not counted in `submitted`.
    pub rejected: u64,
    /// Jobs that ended with [`crate::ServiceError::Cancelled`] (also counted
    /// in `failed`).
    pub cancelled: u64,
    /// Jobs that ended with [`crate::ServiceError::DeadlineExceeded`] (also
    /// counted in `failed`).
    pub deadline_exceeded: u64,
    /// Graphs created by `patch_graph` (a delta applied to a cached parent).
    pub patched: u64,
    /// Successful jobs whose matching was warm-started from a recorded
    /// parent matching + delta instead of the job's init heuristic (counts
    /// warm attempts that internally fell back to a cold solve too).
    pub resolved: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Largest queue depth observed.
    pub peak_queue_depth: usize,
    /// Queue-wait aggregate over all dequeued jobs.
    pub queue_wait: LatencyAgg,
    /// Graph-cache counters.
    pub cache: CacheStats,
    /// Accounting keyed by the algorithm's round-trippable label.
    pub per_algorithm: BTreeMap<String, AlgorithmStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_agg_tracks_extremes_and_mean() {
        let mut agg = LatencyAgg::default();
        assert_eq!(agg.mean_seconds(), 0.0);
        for s in [0.5, 0.1, 0.9] {
            agg.record(s);
        }
        assert_eq!(agg.count, 3);
        assert!((agg.min_seconds - 0.1).abs() < 1e-12);
        assert!((agg.max_seconds - 0.9).abs() < 1e-12);
        assert!((agg.mean_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_populations_and_ignores_empty_sides() {
        let mut a = LatencyAgg::default();
        a.record(0.2);
        a.record(0.4);
        let mut b = LatencyAgg::default();
        b.record(0.1);
        b.record(0.9);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert!((a.min_seconds - 0.1).abs() < 1e-12);
        assert!((a.max_seconds - 0.9).abs() < 1e-12);
        assert!((a.mean_seconds() - 0.4).abs() < 1e-12);
        // Empty sides contribute nothing — in either direction.
        let before = a;
        a.merge(&LatencyAgg::default());
        assert_eq!(a, before);
        let mut empty = LatencyAgg::default();
        empty.merge(&a);
        assert_eq!(empty, a);

        let mut alg = AlgorithmStats { completed: 1, ..AlgorithmStats::default() };
        alg.solve.record(0.5);
        let mut other = AlgorithmStats { completed: 2, failed: 1, ..AlgorithmStats::default() };
        other.solve.record(0.25);
        alg.merge(&other);
        assert_eq!(alg.completed, 3);
        assert_eq!(alg.failed, 1);
        assert_eq!(alg.solve.count, 2);
    }

    #[test]
    fn snapshot_serializes_with_per_algorithm_keys() {
        let mut per_algorithm = BTreeMap::new();
        let mut hk = AlgorithmStats { completed: 2, ..AlgorithmStats::default() };
        hk.solve.record(0.25);
        per_algorithm.insert("HK".to_string(), hk);
        let stats = ServiceStats {
            shards: 1,
            workers: 4,
            submitted: 3,
            completed: 2,
            failed: 1,
            rejected: 5,
            cancelled: 1,
            deadline_exceeded: 0,
            patched: 0,
            resolved: 0,
            queue_depth: 0,
            peak_queue_depth: 3,
            queue_wait: LatencyAgg::default(),
            cache: CacheStats::default(),
            per_algorithm,
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"shards\":1"), "{json}");
        assert!(json.contains("\"workers\":4"), "{json}");
        assert!(json.contains("\"HK\""), "{json}");
        assert!(json.contains("\"mean_seconds\""), "{json}");
        assert!(json.contains("\"peak_queue_depth\":3"), "{json}");
        assert!(json.contains("\"rejected\":5"), "{json}");
        assert!(json.contains("\"cancelled\":1"), "{json}");
        assert!(json.contains("\"deadline_exceeded\":0"), "{json}");
    }
}
