//! [`DeviceShard`]: one independent virtual device inside the service.
//!
//! A shard owns everything a single-pool service used to own globally — a
//! bounded priority queue, a pool of worker threads with warm [`Solver`]
//! sessions, a private [`GraphCache`], and its own statistics — so M shards
//! share **nothing** on the hot path.  The old global queue mutex and cache
//! lock are gone, not wrapped: admission touches only the target shard's
//! queue, graph resolution only that shard's cache (with a lock-free-read
//! *peek* of sibling caches as a fallback), and every counter a submitter or
//! the `stats` op reads is an atomic, so an admission storm on shard 0
//! cannot stall a worker or a stats snapshot on shard 3.
//!
//! The shard's executor pool is equally private: each worker's solver is
//! built with the shard's [`ExecutorConfig`], whose `pool_tag` is the shard
//! id, so the kernel threads of shard 3 show up as `gpm-gpu-t3-worker-*` in
//! a thread dump instead of blending into one global pool.

use crate::cache::GraphCache;
use crate::error::ServiceError;
use crate::job::{GraphSource, JobOutcome, JobSlot, JobSpec};
use crate::stats::{AlgorithmStats, LatencyAgg, ServiceStats};
use gpm_core::{DevicePolicy, ExecutorConfig, SolveCtx, Solver};
use gpm_graph::{GraphDelta, Matching};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A latency aggregate whose samples are recorded lock-free.
///
/// Workers record queue waits and solve times straight into atomics; the
/// `stats` op folds them into a [`LatencyAgg`] on read.  Nothing on the
/// admission path ever takes a statistics lock (the fix this type exists
/// for: the old service updated `LatencyAgg` under the same mutex the
/// submit path used for `retry_after_hint`).
///
/// Samples are clamped to whole nanoseconds, which is far below the
/// scheduling noise of anything this service measures.
#[derive(Debug, Default)]
pub(crate) struct AtomicLatencyAgg {
    count: AtomicU64,
    total_nanos: AtomicU64,
    /// `u64::MAX` while empty, so `fetch_min` needs no init special case.
    min_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl AtomicLatencyAgg {
    pub(crate) fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one sample.  Wait-free: three `fetch_*` ops, no CAS loops.
    pub(crate) fn record(&self, seconds: f64) {
        let nanos = (seconds.max(0.0) * 1e9).round() as u64;
        self.count.fetch_add(1, AtomicOrdering::Relaxed);
        self.total_nanos.fetch_add(nanos, AtomicOrdering::Relaxed);
        self.min_nanos.fetch_min(nanos, AtomicOrdering::Relaxed);
        self.max_nanos.fetch_max(nanos, AtomicOrdering::Relaxed);
    }

    /// Folds the counters into a value snapshot.  Concurrent recorders can
    /// make the fields mutually slightly stale (a snapshot is not a
    /// linearization point), which is fine for a monitoring aggregate.
    pub(crate) fn snapshot(&self) -> LatencyAgg {
        let count = self.count.load(AtomicOrdering::Relaxed);
        if count == 0 {
            return LatencyAgg::default();
        }
        LatencyAgg {
            count,
            total_seconds: self.total_nanos.load(AtomicOrdering::Relaxed) as f64 / 1e9,
            min_seconds: self.min_nanos.load(AtomicOrdering::Relaxed) as f64 / 1e9,
            max_seconds: self.max_nanos.load(AtomicOrdering::Relaxed) as f64 / 1e9,
        }
    }
}

/// Per-shard warm-start state for incremental re-solves: the last matching
/// computed for each cached graph, and the delta that produced each patched
/// graph from its parent.
///
/// When a job solves a fingerprint that `patch_graph` created and the
/// parent's matching is on file, the worker repairs that matching through
/// the delta (`Solver::resolve_prepared_ctx`) instead of building a fresh
/// initial matching — sub-linear work for small deltas.  The store is
/// bounded by the shard's cache capacity: entries for graphs the cache can
/// no longer hold are of no use, and an unbounded matching store would be a
/// slow leak on a long-lived service.
#[derive(Debug)]
pub(crate) struct WarmStore {
    capacity: usize,
    /// fingerprint → the matching its last successful solve produced.
    matchings: HashMap<u64, Matching>,
    /// child fingerprint → (parent fingerprint, the delta that produced it).
    deltas: HashMap<u64, (u64, Arc<GraphDelta>)>,
}

impl WarmStore {
    pub(crate) fn new(capacity: usize) -> Self {
        Self { capacity, matchings: HashMap::new(), deltas: HashMap::new() }
    }

    /// Records the matching a solve of `fingerprint` produced, evicting an
    /// arbitrary entry when full (warm state is a best-effort accelerator,
    /// not a correctness structure — losing an entry only costs a cold
    /// start).
    pub(crate) fn store_matching(&mut self, fingerprint: u64, matching: Matching) {
        if self.capacity == 0 {
            return;
        }
        if !self.matchings.contains_key(&fingerprint) && self.matchings.len() >= self.capacity {
            if let Some(&victim) = self.matchings.keys().next() {
                self.matchings.remove(&victim);
            }
        }
        self.matchings.insert(fingerprint, matching);
    }

    /// Records that `child` was produced by applying `delta` to `parent`.
    pub(crate) fn store_delta(&mut self, child: u64, parent: u64, delta: Arc<GraphDelta>) {
        if self.capacity == 0 {
            return;
        }
        if !self.deltas.contains_key(&child) && self.deltas.len() >= self.capacity {
            if let Some(&victim) = self.deltas.keys().next() {
                self.deltas.remove(&victim);
            }
        }
        self.deltas.insert(child, (parent, delta));
    }

    /// The warm-start material for a solve of `fingerprint`, when this shard
    /// has both the delta that produced it and its parent's matching.  One
    /// lineage step only: a grandchild whose parent was never solved starts
    /// cold.
    pub(crate) fn warm_start(&self, fingerprint: u64) -> Option<(Arc<GraphDelta>, Matching)> {
        let (parent, delta) = self.deltas.get(&fingerprint)?;
        let previous = self.matchings.get(parent)?;
        Some((Arc::clone(delta), previous.clone()))
    }

    /// Extracts `fingerprint`'s warm entries so a rebalance can move them
    /// with the graph to its home shard.
    #[allow(clippy::type_complexity)]
    pub(crate) fn take(
        &mut self,
        fingerprint: u64,
    ) -> (Option<Matching>, Option<(u64, Arc<GraphDelta>)>) {
        (self.matchings.remove(&fingerprint), self.deltas.remove(&fingerprint))
    }

    /// Installs entries extracted by [`WarmStore::take`] on this shard.
    pub(crate) fn absorb(
        &mut self,
        fingerprint: u64,
        matching: Option<Matching>,
        delta: Option<(u64, Arc<GraphDelta>)>,
    ) {
        if let Some(matching) = matching {
            self.store_matching(fingerprint, matching);
        }
        if let Some((parent, delta)) = delta {
            self.store_delta(fingerprint, parent, delta);
        }
    }
}

/// One queued job, owned by exactly one shard's heap at a time.  Draining
/// moves the whole struct to another shard, preserving the enqueue
/// timestamp (queue-wait accounting) and the absolute deadline; only the
/// heap sequence number is reassigned by the destination.
pub(crate) struct QueuedJob {
    pub(crate) spec: JobSpec,
    pub(crate) slot: Arc<JobSlot>,
    /// The graph's content fingerprint — computed at admission when
    /// placement needed it (cached jobs always; inline jobs only on a
    /// multi-shard service, where affinity wants it).  `None` means the
    /// worker computes it lazily before registering the inline upload.
    pub(crate) fingerprint: Option<u64>,
    pub(crate) enqueued: Instant,
    pub(crate) seq: u64,
    /// Absolute deadline, computed from `spec.deadline` at enqueue time.
    pub(crate) deadline: Option<Instant>,
}

// Max-heap order: highest priority first, FIFO (lowest seq) within a
// priority.  `seq` is unique per shard queue, so equality can key on it.
impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> Ordering {
        self.spec.priority.cmp(&other.spec.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The mutex-guarded part of a shard: its job heap and shutdown flag.
pub(crate) struct ShardQueue {
    pub(crate) jobs: BinaryHeap<QueuedJob>,
    pub(crate) shutdown: bool,
    /// Monotonic enqueue counter; ties on priority dequeue FIFO by it.
    next_seq: u64,
}

/// One device shard.  Everything here is shard-private except through the
/// registry's explicit cross-shard operations (peek, drain, rebalance).
pub(crate) struct DeviceShard {
    pub(crate) id: usize,
    /// Per-shard admission cap (`None` = unbounded).
    pub(crate) capacity: Option<usize>,
    pub(crate) queue: Mutex<ShardQueue>,
    pub(crate) available: Condvar,
    pub(crate) cache: parking_lot::Mutex<GraphCache>,
    /// Mirrors `queue.jobs.len()`, maintained at every push/pop, so
    /// placement reads load without touching any queue mutex.
    pub(crate) depth: AtomicUsize,
    /// Jobs currently executing on this shard's workers.
    pub(crate) running: AtomicUsize,
    /// Set by the control plane: placement skips this shard.
    pub(crate) draining: AtomicBool,
    /// Warm-start state for incremental re-solves (matchings + deltas).
    pub(crate) warm: parking_lot::Mutex<WarmStore>,
    pub(crate) counters: ShardCounters,
    /// Touched only at job completion and on `stats()` — never on the
    /// admission path.
    pub(crate) per_algorithm: parking_lot::Mutex<BTreeMap<String, AlgorithmStats>>,
}

/// Lock-free shard statistics.  Everything the submit path or the `stats`
/// op reads concurrently with workers lives here as an atomic.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) deadline_exceeded: AtomicU64,
    /// Graphs created on this shard by `patch_graph`.
    pub(crate) patched: AtomicU64,
    /// Solves that warm-started from a lineage parent's matching instead of
    /// a cold initial matching (includes warm starts that internally fell
    /// back to a cold heuristic because the delta was too large).
    pub(crate) resolved: AtomicU64,
    pub(crate) peak_queue_depth: AtomicUsize,
    pub(crate) queue_wait: AtomicLatencyAgg,
}

impl DeviceShard {
    pub(crate) fn new(id: usize, cache_capacity: usize, capacity: Option<usize>) -> Self {
        Self {
            id,
            capacity,
            queue: Mutex::new(ShardQueue { jobs: BinaryHeap::new(), shutdown: false, next_seq: 0 }),
            available: Condvar::new(),
            cache: parking_lot::Mutex::new(GraphCache::new(cache_capacity)),
            depth: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            warm: parking_lot::Mutex::new(WarmStore::new(cache_capacity)),
            counters: ShardCounters { queue_wait: AtomicLatencyAgg::new(), ..Default::default() },
            per_algorithm: parking_lot::Mutex::new(BTreeMap::new()),
        }
    }

    /// Backoff hint for [`ServiceError::Overloaded`]: this shard's mean
    /// observed queue wait, clamped to a sane band, or 100 ms before any
    /// job has drained.  Lock-free (the whole point of [`AtomicLatencyAgg`]).
    pub(crate) fn retry_after_hint(&self) -> Duration {
        let wait = self.counters.queue_wait.snapshot();
        if wait.count == 0 {
            return Duration::from_millis(100);
        }
        Duration::from_secs_f64(wait.mean_seconds().clamp(0.010, 5.0))
    }

    /// Pushes a fresh job under the queue lock (the enqueue timestamp — the
    /// base of the queue-wait metric and the absolute deadline — is taken
    /// here) and updates the lock-free depth mirror.  The caller has already
    /// checked capacity under this same lock.
    pub(crate) fn push_new(
        &self,
        queue: &mut ShardQueue,
        spec: JobSpec,
        slot: Arc<JobSlot>,
        fingerprint: Option<u64>,
    ) {
        let enqueued = Instant::now();
        let deadline = spec.deadline.map(|d| enqueued + d);
        let seq = queue.next_seq;
        queue.next_seq += 1;
        queue.jobs.push(QueuedJob { spec, slot, fingerprint, enqueued, seq, deadline });
        let depth = queue.jobs.len();
        self.depth.store(depth, AtomicOrdering::Relaxed);
        self.counters.peak_queue_depth.fetch_max(depth, AtomicOrdering::Relaxed);
    }

    /// Re-homes a job drained from another shard: keeps its enqueue
    /// timestamp and absolute deadline, reassigns only the heap sequence
    /// number (the job joins the back of its priority class here).  Ignores
    /// capacity — the job was already admitted once and must not be lost or
    /// re-rejected.
    pub(crate) fn push_requeued(&self, mut job: QueuedJob) {
        let mut queue = lock(&self.queue);
        job.seq = queue.next_seq;
        queue.next_seq += 1;
        queue.jobs.push(job);
        let depth = queue.jobs.len();
        self.depth.store(depth, AtomicOrdering::Relaxed);
        self.counters.peak_queue_depth.fetch_max(depth, AtomicOrdering::Relaxed);
        drop(queue);
        self.available.notify_one();
    }

    /// Flushes every queued job out of the heap (drain's first step),
    /// leaving in-flight jobs untouched.
    pub(crate) fn take_queued(&self) -> Vec<QueuedJob> {
        let mut queue = lock(&self.queue);
        let jobs = std::mem::take(&mut queue.jobs).into_vec();
        self.depth.store(0, AtomicOrdering::Relaxed);
        jobs
    }

    /// This shard's point-in-time snapshot, shaped like a single-shard
    /// service's stats.
    pub(crate) fn stats(&self, workers: usize) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            shards: 1,
            workers,
            submitted: c.submitted.load(AtomicOrdering::Relaxed),
            completed: c.completed.load(AtomicOrdering::Relaxed),
            failed: c.failed.load(AtomicOrdering::Relaxed),
            rejected: c.rejected.load(AtomicOrdering::Relaxed),
            cancelled: c.cancelled.load(AtomicOrdering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(AtomicOrdering::Relaxed),
            patched: c.patched.load(AtomicOrdering::Relaxed),
            resolved: c.resolved.load(AtomicOrdering::Relaxed),
            queue_depth: self.depth.load(AtomicOrdering::Relaxed),
            peak_queue_depth: c.peak_queue_depth.load(AtomicOrdering::Relaxed),
            queue_wait: c.queue_wait.snapshot(),
            cache: self.cache.lock().stats(),
            per_algorithm: self.per_algorithm.lock().clone(),
        }
    }
}

/// Locks a `std::sync` mutex, ignoring poison (worker panics are contained
/// by `catch_unwind`; a poisoned queue lock never means torn data).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Builds one worker's solver session.  The executor configuration was
/// validated by `ServiceBuilder::build` before any worker thread existed,
/// so this cannot fail at a distance.  The shard id becomes the executor's
/// pool tag, so the shard's kernel threads are attributable in thread
/// dumps.
fn new_worker_solver(shard_id: usize, policy: DevicePolicy, executor: ExecutorConfig) -> Solver {
    Solver::builder()
        .device_policy(policy)
        .executor_config(executor.with_pool_tag(shard_id))
        .build()
        .expect("executor config validated by ServiceBuilder::build")
}

/// One shard worker: owns a warm [`Solver`] for its whole lifetime and
/// pulls only from its own shard's queue.  `siblings` is every shard in the
/// service (including its own), used solely for the read-only remote-cache
/// fallback.
pub(crate) fn worker_loop(
    shard: &DeviceShard,
    siblings: &[Arc<DeviceShard>],
    index: usize,
    policy: DevicePolicy,
    executor: ExecutorConfig,
) {
    let mut solver = new_worker_solver(shard.id, policy, executor);
    loop {
        let job = {
            let mut queue = lock(&shard.queue);
            loop {
                if let Some(job) = queue.jobs.pop() {
                    shard.depth.store(queue.jobs.len(), AtomicOrdering::Relaxed);
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shard.available.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        shard.running.fetch_add(1, AtomicOrdering::Relaxed);
        let queue_seconds = job.enqueued.elapsed().as_secs_f64();
        let started = Instant::now();
        // Fail fast before touching the solver: a job cancelled or expired
        // while queued costs the shard nothing.  Cancellation dominates when
        // both fired (mirrors SolveCtx::check).
        let result = if job.spec.cancel.is_cancelled() {
            Err(ServiceError::Cancelled { rounds_completed: 0, partial_cardinality: 0 })
        } else if job.deadline.is_some_and(|d| Instant::now() >= d) {
            Err(ServiceError::DeadlineExceeded { rounds_completed: 0, partial_cardinality: 0 })
        } else {
            // A panicking solve must not hang the waiting client (the slot
            // would never complete) or kill the worker: catch it, fail the
            // job, and rebuild the session, whose warm state the unwind may
            // have torn.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(shard, siblings, index, &mut solver, &job, queue_seconds, started)
            }))
            .unwrap_or_else(|payload| {
                solver = new_worker_solver(shard.id, policy, executor);
                Err(ServiceError::JobPanicked { message: panic_message(payload.as_ref()) })
            })
        };
        record(shard, &job.spec, queue_seconds, &result);
        shard.running.fetch_sub(1, AtomicOrdering::Relaxed);
        job.slot.complete(result);
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves the job's graph, builds the initial matching, and solves on the
/// worker's warm session under the job's cancellation token and absolute
/// deadline (both polled by the engines at worklist-round granularity).
///
/// Graph resolution order for `Cached` sources: this shard's cache (counts
/// a hit or a miss — the per-shard hit rate is the placement-quality
/// metric), then a non-counting peek of every sibling's cache.  The remote
/// fallback exists for jobs in flight across a drain or rebalance: the
/// graph moved shards after the job was placed, and failing it with
/// `UnknownGraph` would turn a control-plane action into client-visible
/// errors.
fn run_job(
    shard: &DeviceShard,
    siblings: &[Arc<DeviceShard>],
    index: usize,
    solver: &mut Solver,
    job: &QueuedJob,
    queue_seconds: f64,
    started: Instant,
) -> Result<JobOutcome, ServiceError> {
    let spec = &job.spec;
    let (graph, cache_hit, fingerprint) = match &spec.graph {
        GraphSource::Inline(graph) => {
            // Register inline uploads in this shard's cache so follow-up
            // jobs can go by key — and will be routed here by affinity.
            // Single-shard admission skips the O(E) hash; compute it here.
            let fingerprint = job.fingerprint.unwrap_or_else(|| graph.fingerprint());
            shard.cache.lock().insert_keyed(fingerprint, Arc::clone(graph));
            (Arc::clone(graph), false, fingerprint)
        }
        GraphSource::Cached(fingerprint) => {
            let local = shard.cache.lock().get(*fingerprint);
            match local {
                Some(graph) => (graph, true, *fingerprint),
                None => match peek_siblings(shard, siblings, *fingerprint) {
                    // A remote fetch still completes the job, but was
                    // counted a local miss: misplaced work stays visible in
                    // the per-shard hit rate.
                    Some(graph) => (graph, true, *fingerprint),
                    None => return Err(ServiceError::UnknownGraph { fingerprint: *fingerprint }),
                },
            }
        }
    };
    // Validate before paying for the O(E) init heuristic (solve_with_initial
    // would reject the config anyway, but only after the init was built).
    spec.algorithm.validate().map_err(ServiceError::Solve)?;
    let ctx = SolveCtx { cancel: Some(spec.cancel.clone()), deadline: job.deadline };
    // Warm path: this graph came from `patch_graph` and its parent's
    // matching is on file — repair that matching through the delta instead
    // of building the job's initial matching (the warm start supersedes
    // `spec.init`; `resolve_prepared_ctx` still falls back to the solver's
    // cold heuristic when the delta churned too much of the graph).
    let warm = shard.warm.lock().warm_start(fingerprint);
    let report = match warm {
        Some((delta, previous)) => {
            let resolved = solver
                .resolve_prepared_ctx(&graph, &previous, &delta, spec.algorithm, &ctx)
                .map_err(ServiceError::from)?;
            shard.counters.resolved.fetch_add(1, AtomicOrdering::Relaxed);
            resolved.report
        }
        None => {
            let initial = spec.init.build(&graph);
            solver
                .solve_with_initial_ctx(&graph, &initial, spec.algorithm, &ctx)
                .map_err(ServiceError::from)?
        }
    };
    // Whatever path ran, the result is the freshest matching for this
    // fingerprint: future children of this graph warm-start from it.
    shard.warm.lock().store_matching(fingerprint, report.matching.clone());
    Ok(JobOutcome {
        report,
        shard: shard.id,
        worker: index,
        cache_hit,
        queue_seconds,
        service_seconds: started.elapsed().as_secs_f64(),
    })
}

/// Probes every other shard's cache without disturbing its counters or LRU
/// order.
fn peek_siblings(
    shard: &DeviceShard,
    siblings: &[Arc<DeviceShard>],
    fingerprint: u64,
) -> Option<Arc<gpm_graph::BipartiteCsr>> {
    siblings.iter().filter(|s| s.id != shard.id).find_map(|s| s.cache.lock().peek(fingerprint))
}

fn record(
    shard: &DeviceShard,
    spec: &JobSpec,
    queue_seconds: f64,
    result: &Result<JobOutcome, ServiceError>,
) {
    let c = &shard.counters;
    c.queue_wait.record(queue_seconds);
    match result {
        Ok(outcome) => {
            c.completed.fetch_add(1, AtomicOrdering::Relaxed);
            let mut per_algorithm = shard.per_algorithm.lock();
            let per_alg = per_algorithm.entry(spec.algorithm.to_string()).or_default();
            per_alg.completed += 1;
            per_alg.solve.record(outcome.report.wall_seconds);
        }
        Err(e) => {
            c.failed.fetch_add(1, AtomicOrdering::Relaxed);
            match e {
                ServiceError::Cancelled { .. } => {
                    c.cancelled.fetch_add(1, AtomicOrdering::Relaxed);
                }
                ServiceError::DeadlineExceeded { .. } => {
                    c.deadline_exceeded.fetch_add(1, AtomicOrdering::Relaxed);
                }
                _ => {}
            }
            shard.per_algorithm.lock().entry(spec.algorithm.to_string()).or_default().failed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_latency_agg_matches_its_locked_counterpart() {
        let atomic = AtomicLatencyAgg::new();
        let mut reference = LatencyAgg::default();
        assert_eq!(atomic.snapshot(), reference);
        for s in [0.5, 0.1, 0.9, 0.3] {
            atomic.record(s);
            reference.record(s);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count, reference.count);
        // Nanosecond clamping loses < 1e-9 per sample.
        assert!((snap.total_seconds - reference.total_seconds).abs() < 1e-6);
        assert!((snap.min_seconds - reference.min_seconds).abs() < 1e-6);
        assert!((snap.max_seconds - reference.max_seconds).abs() < 1e-6);
        assert!((snap.mean_seconds() - reference.mean_seconds()).abs() < 1e-6);
    }

    #[test]
    fn atomic_latency_agg_is_safe_under_concurrent_recorders() {
        let agg = Arc::new(AtomicLatencyAgg::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let agg = Arc::clone(&agg);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        agg.record((t * 250 + i) as f64 * 1e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = agg.snapshot();
        assert_eq!(snap.count, 1000);
        assert!((snap.min_seconds - 0.0).abs() < 1e-9);
        assert!((snap.max_seconds - 999e-6).abs() < 1e-9);
        let expected_total: f64 = (0..1000).map(|i| i as f64 * 1e-6).sum();
        assert!((snap.total_seconds - expected_total).abs() < 1e-6);
    }

    #[test]
    fn queued_jobs_order_by_priority_then_fifo() {
        use gpm_core::Algorithm;
        let shard = DeviceShard::new(0, 4, None);
        let g = Arc::new(gpm_graph::gen::uniform_random(4, 4, 8, 1).unwrap());
        let mut queue = lock(&shard.queue);
        for (i, priority) in [0u8, 5, 5, 1].iter().enumerate() {
            let spec =
                JobSpec::new(Arc::clone(&g), Algorithm::HopcroftKarp).with_priority(*priority);
            let _ = i;
            shard.push_new(&mut queue, spec, Arc::new(JobSlot::default()), Some(g.fingerprint()));
        }
        let order: Vec<(u8, u64)> =
            std::iter::from_fn(|| queue.jobs.pop().map(|j| (j.spec.priority, j.seq))).collect();
        assert_eq!(order, vec![(5, 1), (5, 2), (1, 3), (0, 0)]);
    }
}
