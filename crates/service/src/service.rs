//! The [`Service`]: a pool of worker threads, each owning a warm
//! [`Solver`] session, fed from a shared MPMC job queue.
//!
//! Submitting is non-blocking: [`Service::submit`] enqueues and returns a
//! [`JobHandle`]; any number of client threads may submit concurrently.
//! Admission is bounded when [`ServiceBuilder::max_queue_depth`] is set — a
//! full queue rejects with [`ServiceError::Overloaded`] instead of blocking.
//! Workers pull the highest-priority job (FIFO within a priority) under a
//! `Mutex` + `Condvar`, honour cancellation and deadlines before touching a
//! solver, resolve the graph through the content-addressed [`GraphCache`],
//! run the solve on their private warm session, and complete the handle.
//! Dropping the service drains the queue: already-accepted jobs still
//! complete, then the workers exit.

use crate::cache::GraphCache;
use crate::error::ServiceError;
use crate::job::{GraphSource, JobHandle, JobOutcome, JobSlot, JobSpec};
use crate::stats::{AlgorithmStats, LatencyAgg, ServiceStats};
use gpm_core::{DevicePolicy, ExecutorConfig, SolveCtx, Solver};
use gpm_graph::BipartiteCsr;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configures and starts a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceBuilder {
    workers: usize,
    device_policy: DevicePolicy,
    executor: ExecutorConfig,
    cache_capacity: usize,
    max_queue_depth: Option<usize>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        Self {
            workers: 2,
            device_policy: DevicePolicy::Sequential,
            executor: ExecutorConfig::default(),
            cache_capacity: 32,
            max_queue_depth: None,
        }
    }
}

impl ServiceBuilder {
    /// Sets the number of pool workers (each owns one warm [`Solver`]).
    /// A count of 0 is treated as 1.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the device policy each worker's solver is built with.
    ///
    /// The default is [`DevicePolicy::Sequential`]: with N workers solving
    /// concurrently, per-worker sequential devices keep results reproducible
    /// and avoid oversubscribing the host with N × cores kernel threads.
    pub fn device_policy(mut self, policy: DevicePolicy) -> Self {
        self.device_policy = policy;
        self
    }

    /// Tunes the persistent kernel executor of every worker's device — most
    /// importantly the pool sizing implied by the device policy and the
    /// inline threshold.  With N service workers each owning a
    /// [`DevicePolicy::Parallel`] device, this is how the deployment keeps
    /// N × device-workers within the host's core budget instead of
    /// oversubscribing it.
    pub fn executor_config(mut self, executor: ExecutorConfig) -> Self {
        self.executor = executor;
        self
    }

    /// Sets how many graphs the content-addressed cache holds (0 disables
    /// caching; jobs must then carry their graph inline).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Bounds the queue: submissions that find `depth` jobs already waiting
    /// are rejected immediately with [`ServiceError::Overloaded`] instead of
    /// growing the backlog.  Submission never blocks either way.  A depth of
    /// 0 is treated as 1 (a queue that can never admit would deadlock every
    /// client).  Unset means unbounded, the previous behaviour.
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = Some(depth.max(1));
        self
    }

    /// Starts the worker pool.
    ///
    /// # Panics
    /// Panics when the executor configuration is invalid (e.g. a zero chunk
    /// size) — the same condition `Solver::builder()` reports as a
    /// structured `InvalidConfig` error; it is checked here, before any
    /// worker thread exists, so a misconfiguration cannot take down the
    /// pool at a distance.
    pub fn build(self) -> Service {
        if let Err(reason) = self.executor.validate() {
            panic!("invalid executor configuration for service workers: {reason}");
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: BinaryHeap::new(),
                shutdown: false,
                next_seq: 0,
                max_depth: self.max_queue_depth,
            }),
            available: Condvar::new(),
            cache: parking_lot::Mutex::new(GraphCache::new(self.cache_capacity)),
            stats: parking_lot::Mutex::new(StatsInner::default()),
        });
        let workers = (0..self.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let policy = self.device_policy;
                let executor = self.executor;
                std::thread::Builder::new()
                    .name(format!("gpm-service-worker-{index}"))
                    .spawn(move || worker_loop(index, policy, executor, &shared))
                    .expect("spawn service worker")
            })
            .collect();
        Service { shared, workers, worker_count: self.workers, executor: self.executor }
    }
}

/// A concurrent matching service over a warm solver pool.
///
/// See the [crate docs](crate) for the architecture; in short:
///
/// ```
/// use gpm_core::Algorithm;
/// use gpm_service::{JobSpec, Service};
/// use gpm_graph::gen;
///
/// let service = Service::builder().workers(2).build();
/// let graph = gen::planted_perfect(100, 400, 7).unwrap();
/// let fingerprint = service.put_graph(graph.clone());
///
/// // Submit by value or by cache key; wait in any order.
/// let a = service.submit(JobSpec::new(graph, Algorithm::HopcroftKarp));
/// let b = service.submit(JobSpec::new(
///     gpm_service::GraphSource::Cached(fingerprint),
///     Algorithm::gpr_default(),
/// ));
/// assert_eq!(b.wait().unwrap().report.cardinality, 100);
/// assert_eq!(a.wait().unwrap().report.cardinality, 100);
/// ```
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
    executor: ExecutorConfig,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
    cache: parking_lot::Mutex<GraphCache>,
    stats: parking_lot::Mutex<StatsInner>,
}

struct Queue {
    jobs: BinaryHeap<QueuedJob>,
    shutdown: bool,
    /// Monotonic enqueue counter; ties on priority dequeue FIFO by it.
    next_seq: u64,
    max_depth: Option<usize>,
}

struct QueuedJob {
    spec: JobSpec,
    slot: Arc<JobSlot>,
    enqueued: Instant,
    seq: u64,
    /// Absolute deadline, computed from `spec.deadline` at enqueue time.
    deadline: Option<Instant>,
}

// Max-heap order: highest priority first, FIFO (lowest seq) within a
// priority.  `seq` is unique per queue, so equality can key on it alone.
impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> Ordering {
        self.spec.priority.cmp(&other.spec.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl Queue {
    /// Pushes under the lock: the enqueue timestamp (the base of both the
    /// queue-wait metric and the job's absolute deadline) is taken here, not
    /// at some earlier point outside the lock.
    fn push(&mut self, spec: JobSpec, slot: Arc<JobSlot>) {
        let enqueued = Instant::now();
        let deadline = spec.deadline.map(|d| enqueued + d);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.jobs.push(QueuedJob { spec, slot, enqueued, seq, deadline });
    }
}

#[derive(Default)]
struct StatsInner {
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    cancelled: u64,
    deadline_exceeded: u64,
    peak_queue_depth: usize,
    queue_wait: LatencyAgg,
    per_algorithm: BTreeMap<String, AlgorithmStats>,
}

impl StatsInner {
    /// Backoff hint for [`ServiceError::Overloaded`]: the mean observed
    /// queue wait, clamped to a sane band, or 100 ms before any job has
    /// drained.
    fn retry_after_hint(&self) -> Duration {
        if self.queue_wait.count == 0 {
            return Duration::from_millis(100);
        }
        let mean = self.queue_wait.mean_seconds().clamp(0.010, 5.0);
        Duration::from_secs_f64(mean)
    }
}

impl Service {
    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// A service with `workers` pool threads and default cache/device
    /// settings.
    pub fn new(workers: usize) -> Self {
        Self::builder().workers(workers).build()
    }

    /// Number of pool workers.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// The executor tuning every worker's solver (and hence device) was
    /// built with.
    pub fn executor_config(&self) -> ExecutorConfig {
        self.executor
    }

    /// Enqueues one job and returns a handle on its result.
    ///
    /// Never blocks on the solve itself — nor on admission: after shutdown
    /// has begun the job is rejected with an already-completed handle
    /// carrying [`ServiceError::ShuttingDown`], and on a full queue (see
    /// [`ServiceBuilder::max_queue_depth`]) with [`ServiceError::Overloaded`].
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let slot = Arc::new(JobSlot::default());
        let handle = JobHandle { slot: Arc::clone(&slot), cancel: spec.cancel.clone() };
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.shutdown {
                return JobHandle::completed(Err(ServiceError::ShuttingDown));
            }
            if let Some(full) = self.admission_reject(&queue) {
                return JobHandle::completed(Err(full));
            }
            queue.push(spec, slot);
            let depth = queue.jobs.len();
            let mut stats = self.shared.stats.lock();
            stats.submitted += 1;
            stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        }
        self.shared.available.notify_one();
        handle
    }

    /// Enqueues a batch, returning one handle per job in order.
    ///
    /// The specs are collected **before** the queue lock is taken — a slow
    /// caller iterator cannot stall concurrent submitters or the workers —
    /// then pushed under a single lock, so an N-worker pool starts fanning
    /// out over the batch immediately.  Jobs past the queue cap reject
    /// individually with [`ServiceError::Overloaded`]; only jobs actually
    /// enqueued count as submitted.
    pub fn submit_batch(&self, specs: impl IntoIterator<Item = JobSpec>) -> Vec<JobHandle> {
        let specs: Vec<JobSpec> = specs.into_iter().collect();
        let mut handles = Vec::with_capacity(specs.len());
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let mut enqueued = 0u64;
            for spec in specs {
                if queue.shutdown {
                    handles.push(JobHandle::completed(Err(ServiceError::ShuttingDown)));
                    continue;
                }
                if let Some(full) = self.admission_reject(&queue) {
                    handles.push(JobHandle::completed(Err(full)));
                    continue;
                }
                let slot = Arc::new(JobSlot::default());
                handles.push(JobHandle { slot: Arc::clone(&slot), cancel: spec.cancel.clone() });
                queue.push(spec, slot);
                enqueued += 1;
            }
            let depth = queue.jobs.len();
            let mut stats = self.shared.stats.lock();
            stats.submitted += enqueued;
            stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        }
        self.shared.available.notify_all();
        handles
    }

    /// Checks the queue cap; on a full queue bumps the rejection counter and
    /// returns the [`ServiceError::Overloaded`] to complete the handle with.
    fn admission_reject(&self, queue: &Queue) -> Option<ServiceError> {
        let cap = queue.max_depth?;
        let depth = queue.jobs.len();
        if depth < cap {
            return None;
        }
        let mut stats = self.shared.stats.lock();
        stats.rejected += 1;
        Some(ServiceError::Overloaded {
            queue_depth: depth,
            retry_after_hint: stats.retry_after_hint(),
        })
    }

    /// `true` iff the service caches graphs (built with a non-zero cache
    /// capacity).  When `false`, [`Service::put_graph`] is a no-op and only
    /// inline jobs can solve.
    pub fn cache_enabled(&self) -> bool {
        self.shared.cache.lock().stats().capacity > 0
    }

    /// Registers `graph` in the cache without solving, returning its
    /// fingerprint for use in [`GraphSource::Cached`] jobs.
    ///
    /// On a service built with `cache_capacity(0)` the graph is **not**
    /// retained (the fingerprint is still returned); check
    /// [`Service::cache_enabled`] first when that configuration is possible.
    pub fn put_graph(&self, graph: impl Into<Arc<BipartiteCsr>>) -> u64 {
        let graph = graph.into();
        // Hash outside the lock: the fingerprint walk is O(E).
        let fingerprint = graph.fingerprint();
        self.shared.cache.lock().insert_keyed(fingerprint, graph);
        fingerprint
    }

    /// `true` iff a graph with this fingerprint is currently cached.
    pub fn contains_graph(&self, fingerprint: u64) -> bool {
        self.shared.cache.lock().contains(fingerprint)
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let queue_depth = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).jobs.len();
        let cache = self.shared.cache.lock().stats();
        let stats = self.shared.stats.lock();
        ServiceStats {
            workers: self.worker_count,
            submitted: stats.submitted,
            completed: stats.completed,
            failed: stats.failed,
            rejected: stats.rejected,
            cancelled: stats.cancelled,
            deadline_exceeded: stats.deadline_exceeded,
            queue_depth,
            peak_queue_depth: stats.peak_queue_depth,
            queue_wait: stats.queue_wait,
            cache,
            per_algorithm: stats.per_algorithm.clone(),
        }
    }

    /// Stops admission without consuming the service: subsequent submits
    /// reject with [`ServiceError::ShuttingDown`], already-accepted jobs
    /// still drain.  Idempotent.  Workers are joined by the eventual drop
    /// (or [`Service::shutdown`]); this only flips the flag, so it is safe
    /// to call from another thread racing live submitters.
    pub fn begin_shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
    }

    /// Stops accepting jobs, drains the queue, and joins the workers.
    /// Equivalent to dropping the service, but explicit at call sites.
    pub fn shutdown(self) {}
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            // A worker that panicked already completed no further jobs;
            // propagating the panic out of Drop would abort, so swallow it.
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.worker_count)
            .field("queue_depth", &self.shared.queue.lock().map(|q| q.jobs.len()).unwrap_or(0))
            .finish()
    }
}

/// Builds one worker's solver session.  The executor configuration was
/// validated by [`ServiceBuilder::build`] before any worker thread existed,
/// so this cannot fail at a distance.
fn new_worker_solver(policy: DevicePolicy, executor: ExecutorConfig) -> Solver {
    Solver::builder()
        .device_policy(policy)
        .executor_config(executor)
        .build()
        .expect("executor config validated by ServiceBuilder::build")
}

/// One pool worker: owns a warm [`Solver`] for its whole lifetime, so every
/// job it runs after the first reuses per-algorithm workspaces and the
/// session device.
fn worker_loop(index: usize, policy: DevicePolicy, executor: ExecutorConfig, shared: &Shared) {
    let mut solver = new_worker_solver(policy, executor);
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.jobs.pop() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        let queue_seconds = job.enqueued.elapsed().as_secs_f64();
        let started = Instant::now();
        // Fail fast before touching the solver: a job cancelled or expired
        // while queued costs the pool nothing.  Cancellation dominates when
        // both fired (mirrors SolveCtx::check).
        let result = if job.spec.cancel.is_cancelled() {
            Err(ServiceError::Cancelled { rounds_completed: 0, partial_cardinality: 0 })
        } else if job.deadline.is_some_and(|d| Instant::now() >= d) {
            Err(ServiceError::DeadlineExceeded { rounds_completed: 0, partial_cardinality: 0 })
        } else {
            // A panicking solve must not hang the waiting client (the slot
            // would never complete) or kill the worker: catch it, fail the
            // job, and rebuild the session, whose warm state the unwind may
            // have torn.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(index, &mut solver, shared, &job, queue_seconds, started)
            }))
            .unwrap_or_else(|payload| {
                solver = new_worker_solver(policy, executor);
                Err(ServiceError::JobPanicked { message: panic_message(payload.as_ref()) })
            })
        };
        record(shared, &job.spec, queue_seconds, &result);
        job.slot.complete(result);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves the job's graph (cache or inline), builds the initial matching,
/// and solves on the worker's warm session under the job's cancellation
/// token and absolute deadline (both polled by the engines at worklist-round
/// granularity).
fn run_job(
    index: usize,
    solver: &mut Solver,
    shared: &Shared,
    job: &QueuedJob,
    queue_seconds: f64,
    started: Instant,
) -> Result<JobOutcome, ServiceError> {
    let spec = &job.spec;
    let (graph, cache_hit) = match &spec.graph {
        GraphSource::Inline(graph) => {
            // Register inline uploads so follow-up jobs can go by key.  The
            // O(E) hash runs before taking the lock so concurrent workers
            // are not serialized on large-graph hashing.
            let fingerprint = graph.fingerprint();
            shared.cache.lock().insert_keyed(fingerprint, Arc::clone(graph));
            (Arc::clone(graph), false)
        }
        GraphSource::Cached(fingerprint) => match shared.cache.lock().get(*fingerprint) {
            Some(graph) => (graph, true),
            None => return Err(ServiceError::UnknownGraph { fingerprint: *fingerprint }),
        },
    };
    // Validate before paying for the O(E) init heuristic (solve_with_initial
    // would reject the config anyway, but only after the init was built).
    spec.algorithm.validate().map_err(ServiceError::Solve)?;
    let initial = spec.init.build(&graph);
    let ctx = SolveCtx { cancel: Some(spec.cancel.clone()), deadline: job.deadline };
    let report = solver
        .solve_with_initial_ctx(&graph, &initial, spec.algorithm, &ctx)
        .map_err(ServiceError::from)?;
    Ok(JobOutcome {
        report,
        worker: index,
        cache_hit,
        queue_seconds,
        service_seconds: started.elapsed().as_secs_f64(),
    })
}

fn record(
    shared: &Shared,
    spec: &JobSpec,
    queue_seconds: f64,
    result: &Result<JobOutcome, ServiceError>,
) {
    let mut stats = shared.stats.lock();
    stats.queue_wait.record(queue_seconds);
    let per_alg = stats.per_algorithm.entry(spec.algorithm.to_string()).or_default();
    match result {
        Ok(outcome) => {
            per_alg.completed += 1;
            per_alg.solve.record(outcome.report.wall_seconds);
            stats.completed += 1;
        }
        Err(e) => {
            per_alg.failed += 1;
            stats.failed += 1;
            match e {
                ServiceError::Cancelled { .. } => stats.cancelled += 1,
                ServiceError::DeadlineExceeded { .. } => stats.deadline_exceeded += 1,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::{Algorithm, InitHeuristic, SolveError};
    use gpm_graph::gen;
    use gpm_graph::verify::maximum_matching_cardinality;

    #[test]
    fn submit_solves_and_reports() {
        let service = Service::builder().workers(2).build();
        let g = gen::uniform_random(60, 60, 300, 11).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let outcome = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
        assert_eq!(outcome.report.cardinality, opt);
        assert!(!outcome.cache_hit);
        assert!(outcome.queue_seconds >= 0.0);
        assert!(outcome.service_seconds >= 0.0);
        assert!(outcome.worker < 2);
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.per_algorithm["HK"].completed, 1);
    }

    #[test]
    fn cached_jobs_hit_after_put_graph() {
        let service = Service::builder().workers(1).build();
        let g = gen::planted_perfect(50, 200, 3).unwrap();
        let fp = service.put_graph(g);
        assert!(service.contains_graph(fp));
        let outcome = service
            .submit(JobSpec::new(GraphSource::Cached(fp), Algorithm::PothenFan))
            .wait()
            .unwrap();
        assert_eq!(outcome.report.cardinality, 50);
        assert!(outcome.cache_hit);
        assert_eq!(service.stats().cache.hits, 1);
    }

    #[test]
    fn unknown_fingerprint_fails_the_job_not_the_pool() {
        let service = Service::builder().workers(1).build();
        let err = service
            .submit(JobSpec::new(GraphSource::Cached(0xdead_beef), Algorithm::HopcroftKarp))
            .wait()
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownGraph { fingerprint: 0xdead_beef });
        // The worker survives and keeps serving.
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let ok = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
        assert_eq!(ok.report.cardinality, opt);
        let stats = service.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn invalid_algorithms_and_gpu_without_device_fail_structurally() {
        let service = Service::builder().workers(1).device_policy(DevicePolicy::CpuOnly).build();
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        let err = service.submit(JobSpec::new(g.clone(), Algorithm::Pdbfs(0))).wait().unwrap_err();
        assert!(matches!(err, ServiceError::Solve(SolveError::InvalidConfig { .. })));
        let err = service.submit(JobSpec::new(g, Algorithm::gpr_default())).wait().unwrap_err();
        assert!(matches!(err, ServiceError::Solve(SolveError::DeviceRequired { .. })));
    }

    #[test]
    fn batch_fans_out_and_preserves_order() {
        let service = Service::builder().workers(4).build();
        let graphs: Vec<_> =
            (0..8).map(|i| gen::uniform_random(40, 40, 180, 100 + i).unwrap()).collect();
        let expected: Vec<_> = graphs.iter().map(maximum_matching_cardinality).collect();
        let handles = service
            .submit_batch(graphs.iter().map(|g| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        assert_eq!(handles.len(), 8);
        for (handle, want) in handles.into_iter().zip(expected) {
            assert_eq!(handle.wait().unwrap().report.cardinality, want);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert!(stats.peak_queue_depth >= 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn init_heuristic_is_honored_per_job() {
        let service = Service::builder().workers(1).build();
        let g = gen::uniform_random(50, 50, 240, 9).unwrap();
        let outcome = service
            .submit(JobSpec::new(g, Algorithm::HopcroftKarp).with_init(InitHeuristic::Empty))
            .wait()
            .unwrap();
        assert_eq!(outcome.report.initial_cardinality, 0);
    }

    #[test]
    fn drop_drains_accepted_jobs() {
        let service = Service::builder().workers(2).build();
        let g = gen::uniform_random(80, 80, 400, 21).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let handles =
            service.submit_batch((0..16).map(|_| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        drop(service); // begins shutdown; queued jobs must still complete
        for handle in handles {
            assert_eq!(handle.wait().unwrap().report.cardinality, opt);
        }
    }

    #[test]
    fn panic_payloads_become_messages() {
        let p = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p = std::panic::catch_unwind(|| panic!("{} {}", "boom", 2)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom 2");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    /// A job that keeps the single worker busy until the returned handle is
    /// cancelled: a Table-I-scale RMAT instance solved from an empty
    /// initial matching takes far longer than the test's enqueue work.
    fn blocker(service: &Service) -> JobHandle {
        let g = gen::rmat(gen::RmatParams::graph500(13, 8), 29).unwrap();
        service.submit(JobSpec::new(g, Algorithm::HopcroftKarp).with_init(InitHeuristic::Empty))
    }

    #[test]
    fn full_queue_rejects_with_overloaded_without_blocking() {
        let service = Service::builder().workers(1).max_queue_depth(2).build();
        let big = blocker(&service);
        // Flood far more jobs than the cap while the worker chews on the
        // blocker; submission is lock-push only, so the worker cannot drain
        // the tiny backlog faster than we refill it.
        let g = gen::uniform_random(10, 10, 40, 7).unwrap();
        let handles =
            service.submit_batch((0..30).map(|_| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        let overloaded: Vec<_> = handles
            .iter()
            .filter(|h| {
                h.is_done() // only rejected handles are complete mid-flood
            })
            .collect();
        assert!(!overloaded.is_empty(), "expected rejections at depth cap 2");
        big.cancel();
        let mut rejected = 0u64;
        for handle in handles {
            match handle.wait() {
                Ok(outcome) => assert!(outcome.report.cardinality > 0),
                Err(ServiceError::Overloaded { queue_depth, retry_after_hint }) => {
                    assert_eq!(queue_depth, 2);
                    assert!(retry_after_hint > Duration::ZERO);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let _ = big.wait();
        let stats = service.stats();
        assert_eq!(stats.rejected, rejected);
        assert!(rejected > 0);
        // Rejected jobs are not "submitted": the ledger still balances.
        assert_eq!(stats.submitted, 1 + 30 - rejected);
        assert_eq!(stats.submitted, stats.completed + stats.failed);
    }

    #[test]
    fn queued_jobs_past_their_deadline_fail_fast_without_a_solver() {
        let service = Service::builder().workers(1).build();
        let big = blocker(&service);
        // An already-expired deadline: by the time any worker can look at
        // this job its deadline has passed, whatever the blocker does.
        let g = gen::uniform_random(10, 10, 40, 7).unwrap();
        let doomed =
            service.submit(JobSpec::new(g, Algorithm::HopcroftKarp).with_deadline(Duration::ZERO));
        big.cancel();
        let err = doomed.wait().unwrap_err();
        assert_eq!(
            err,
            ServiceError::DeadlineExceeded { rounds_completed: 0, partial_cardinality: 0 }
        );
        let _ = big.wait();
        let stats = service.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.failed, stats.cancelled + stats.deadline_exceeded);
    }

    #[test]
    fn cancelled_while_queued_never_touches_a_solver() {
        let service = Service::builder().workers(1).build();
        let g = gen::uniform_random(10, 10, 40, 7).unwrap();
        let spec = JobSpec::new(g, Algorithm::HopcroftKarp);
        spec.cancel.cancel(); // cancelled before the pool ever sees it
        let err = service.submit(spec).wait().unwrap_err();
        assert_eq!(err, ServiceError::Cancelled { rounds_completed: 0, partial_cardinality: 0 });
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn cancelling_a_running_solve_stops_it_within_rounds() {
        let service = Service::builder().workers(1).build();
        let handle = blocker(&service);
        std::thread::sleep(Duration::from_millis(5));
        handle.cancel();
        match handle.wait() {
            Err(ServiceError::Cancelled { .. }) => {
                assert_eq!(service.stats().cancelled, 1);
            }
            // The solve can win the race; it must then be a clean success.
            Ok(outcome) => assert!(outcome.report.cardinality > 0),
            Err(other) => panic!("unexpected error: {other}"),
        }
        // The worker survives cancellation and keeps serving.
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let ok = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
        assert_eq!(ok.report.cardinality, opt);
    }

    #[test]
    fn higher_priority_jobs_dequeue_first_fifo_within_a_priority() {
        let service = Service::builder().workers(1).build();
        let big = blocker(&service);
        // Order probe via the cache: the low-priority inline job registers
        // the graph; a by-fingerprint job only succeeds if it runs AFTER it.
        // The high-priority fingerprint job must therefore fail
        // (UnknownGraph — it jumped the queue), while the equal-priority
        // one submitted later succeeds (FIFO within priority 0).
        let g = gen::uniform_random(30, 30, 120, 17).unwrap();
        let fp = g.fingerprint();
        let low_inline = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp));
        let high_cached = service.submit(
            JobSpec::new(GraphSource::Cached(fp), Algorithm::HopcroftKarp).with_priority(9),
        );
        let low_cached =
            service.submit(JobSpec::new(GraphSource::Cached(fp), Algorithm::HopcroftKarp));
        big.cancel();
        assert_eq!(
            high_cached.wait().unwrap_err(),
            ServiceError::UnknownGraph { fingerprint: fp },
            "priority 9 job should have run before the inline upload"
        );
        assert!(low_inline.wait().is_ok());
        assert!(low_cached.wait().unwrap().cache_hit);
        let _ = big.wait();
    }

    #[test]
    fn shutdown_rejections_do_not_count_as_submitted() {
        let service = Service::builder().workers(1).build();
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        service.submit(JobSpec::new(g.clone(), Algorithm::HopcroftKarp)).wait().unwrap();
        service.begin_shutdown();
        // Regression (submit_batch used to count these): rejected batches
        // must leave `submitted` untouched on both submit paths.
        let handles =
            service.submit_batch((0..4).map(|_| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        assert_eq!(handles.len(), 4);
        for handle in handles {
            assert_eq!(handle.wait().unwrap_err(), ServiceError::ShuttingDown);
        }
        assert_eq!(
            service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap_err(),
            ServiceError::ShuttingDown
        );
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.submitted, stats.completed + stats.failed + stats.queue_depth as u64);
    }

    #[test]
    fn slow_batch_iterators_do_not_hold_the_queue_lock() {
        let service = Arc::new(Service::builder().workers(1).build());
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        // While the batch iterator dawdles (3 × 150 ms), a concurrent
        // submitter must get in and out quickly: the specs are collected
        // before the queue lock is taken.
        let concurrent = {
            let service = Arc::clone(&service);
            let g = g.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                let started = Instant::now();
                service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
                started.elapsed()
            })
        };
        let batch_started = Instant::now();
        let handles = service.submit_batch((0..3).map(|_| {
            std::thread::sleep(Duration::from_millis(150));
            JobSpec::new(g.clone(), Algorithm::HopcroftKarp)
        }));
        let batch_elapsed = batch_started.elapsed();
        let concurrent_elapsed = concurrent.join().unwrap();
        assert!(
            concurrent_elapsed < batch_elapsed / 2,
            "concurrent submit took {concurrent_elapsed:?} against a {batch_elapsed:?} batch"
        );
        for handle in handles {
            let outcome = handle.wait().unwrap();
            // Regression: `enqueued` used to be stamped before the iterator
            // was drained, charging the iterator's dawdling (≥ 300 ms for
            // the first job) to queue wait.
            assert!(
                outcome.queue_seconds < 0.140,
                "queue wait {:.3}s includes iterator time",
                outcome.queue_seconds
            );
        }
    }

    #[test]
    fn warm_workers_reuse_engines_across_jobs() {
        // Same algorithm on one worker: the second job must not re-create
        // the engine (observable through identical results and a fast path,
        // here just correctness under repetition).
        let service = Service::builder().workers(1).build();
        let g = gen::planted_perfect(64, 256, 13).unwrap();
        let fp = service.put_graph(g);
        for _ in 0..3 {
            let outcome = service
                .submit(JobSpec::new(GraphSource::Cached(fp), Algorithm::gpr_default()))
                .wait()
                .unwrap();
            assert_eq!(outcome.report.cardinality, 64);
            assert!(outcome.cache_hit);
        }
        assert_eq!(service.stats().cache.hits, 3);
    }
}
