//! The [`Service`]: M independent device shards behind one submission API.
//!
//! Each shard owns its own worker pool of warm
//! [`Solver`](gpm_core::Solver) sessions, bounded priority queue, and private
//! [`crate::GraphCache`]; the [`crate::placement`] registry routes every
//! job to one shard by graph-fingerprint affinity, spilling to the
//! least-loaded shard.  There is no global queue and no global cache lock:
//! submission contends only on the target shard, and all cross-shard reads
//! (placement load snapshots, `stats`) are atomics.
//!
//! Submitting is non-blocking: [`Service::submit`] places and returns a
//! [`JobHandle`]; any number of client threads may submit concurrently.
//! Admission is bounded when [`ServiceBuilder::max_queue_depth`] is set — a
//! service whose every shard is full rejects with
//! [`ServiceError::Overloaded`](crate::ServiceError::Overloaded), reporting the least-loaded shard's depth
//! and retry hint.  Workers pull the highest-priority job (FIFO within a
//! priority) from their own shard, honour cancellation and deadlines before
//! touching a solver, resolve the graph through their shard's cache, run
//! the solve on their private warm session, and complete the handle.
//! Dropping the service drains every shard: already-accepted jobs still
//! complete, then the workers exit.
//!
//! The control plane — per-shard stats, drain, rebalance — lives in
//! [`crate::control`].

use crate::cache::CacheStats;
use crate::job::{JobHandle, JobSpec};
use crate::placement::ShardRegistry;
use crate::shard::{worker_loop, DeviceShard};
use crate::stats::{LatencyAgg, ServiceStats};
use gpm_core::{DevicePolicy, ExecutorConfig};
use gpm_graph::BipartiteCsr;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configures and starts a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceBuilder {
    shards: usize,
    workers: usize,
    device_policy: DevicePolicy,
    executor: ExecutorConfig,
    cache_capacity: usize,
    max_queue_depth: Option<usize>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        Self {
            shards: 1,
            workers: 2,
            device_policy: DevicePolicy::Sequential,
            executor: ExecutorConfig::default(),
            cache_capacity: 32,
            max_queue_depth: None,
        }
    }
}

impl ServiceBuilder {
    /// Sets the number of device shards (default 1).  Each shard gets its
    /// own worker pool, queue, and graph cache; jobs are placed across
    /// shards by fingerprint affinity.  A count of 0 is treated as 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the number of workers **per shard** (each owns one warm
    /// [`Solver`](gpm_core::Solver)).  A count of 0 is treated as 1.  The service's total
    /// worker count is `shards × workers`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the device policy each worker's solver is built with.
    ///
    /// The default is [`DevicePolicy::Sequential`]: with N workers solving
    /// concurrently, per-worker sequential devices keep results reproducible
    /// and avoid oversubscribing the host with N × cores kernel threads.
    pub fn device_policy(mut self, policy: DevicePolicy) -> Self {
        self.device_policy = policy;
        self
    }

    /// Tunes the persistent kernel executor of every worker's device — most
    /// importantly the pool sizing implied by the device policy and the
    /// inline threshold.  With N service workers each owning a
    /// [`DevicePolicy::Parallel`] device, this is how the deployment keeps
    /// N × device-workers within the host's core budget instead of
    /// oversubscribing it.  The config's `pool_tag` is overridden per shard
    /// (the shard id), so kernel threads are attributable to their shard.
    pub fn executor_config(mut self, executor: ExecutorConfig) -> Self {
        self.executor = executor;
        self
    }

    /// Sets how many graphs **each shard's** content-addressed cache holds
    /// (0 disables caching; jobs must then carry their graph inline).  An
    /// M-shard service therefore holds up to `M × capacity` graphs in
    /// aggregate — affinity placement keeps the shard caches disjoint
    /// rather than M copies of the same working set.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Bounds **each shard's** queue: a submission that finds every active
    /// shard holding `depth` queued jobs is rejected immediately with
    /// [`ServiceError::Overloaded`](crate::ServiceError::Overloaded) instead of growing a backlog.
    /// Submission never blocks either way; while any shard has room, the
    /// job is placed there.  A depth of 0 is treated as 1 (a queue that can
    /// never admit would deadlock every client).  Unset means unbounded,
    /// the previous behaviour.
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = Some(depth.max(1));
        self
    }

    /// Starts the shards and their worker pools.
    ///
    /// # Panics
    /// Panics when the executor configuration is invalid (e.g. a zero chunk
    /// size) — the same condition `Solver::builder()` reports as a
    /// structured `InvalidConfig` error; it is checked here, before any
    /// worker thread exists, so a misconfiguration cannot take down the
    /// pool at a distance.
    pub fn build(self) -> Service {
        if let Err(reason) = self.executor.validate() {
            panic!("invalid executor configuration for service workers: {reason}");
        }
        let shards: Vec<Arc<DeviceShard>> = (0..self.shards)
            .map(|id| Arc::new(DeviceShard::new(id, self.cache_capacity, self.max_queue_depth)))
            .collect();
        let registry = Arc::new(ShardRegistry::new(shards));
        let mut workers = Vec::with_capacity(self.shards * self.workers);
        for shard_id in 0..self.shards {
            for index in 0..self.workers {
                let registry = Arc::clone(&registry);
                let policy = self.device_policy;
                let executor = self.executor;
                let handle = std::thread::Builder::new()
                    .name(format!("gpm-service-s{shard_id}-worker-{index}"))
                    .spawn(move || {
                        let shard = Arc::clone(&registry.shards[shard_id]);
                        worker_loop(&shard, &registry.shards, index, policy, executor);
                    })
                    .expect("spawn service worker");
                workers.push(handle);
            }
        }
        Service { registry, workers, workers_per_shard: self.workers, executor: self.executor }
    }
}

/// A concurrent matching service over sharded warm solver pools.
///
/// See the [crate docs](crate) for the architecture; in short:
///
/// ```
/// use gpm_core::Algorithm;
/// use gpm_service::{JobSpec, Service};
/// use gpm_graph::gen;
///
/// let service = Service::builder().shards(2).workers(1).build();
/// let graph = gen::planted_perfect(100, 400, 7).unwrap();
/// let fingerprint = service.put_graph(graph.clone());
///
/// // Submit by value or by cache key; wait in any order.  Cached jobs are
/// // routed to the shard holding the graph.
/// let a = service.submit(JobSpec::new(graph, Algorithm::HopcroftKarp));
/// let b = service.submit(JobSpec::new(
///     gpm_service::GraphSource::Cached(fingerprint),
///     Algorithm::gpr_default(),
/// ));
/// assert_eq!(b.wait().unwrap().report.cardinality, 100);
/// assert_eq!(a.wait().unwrap().report.cardinality, 100);
/// ```
pub struct Service {
    registry: Arc<ShardRegistry>,
    workers: Vec<JoinHandle<()>>,
    workers_per_shard: usize,
    executor: ExecutorConfig,
}

impl Service {
    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// A single-shard service with `workers` pool threads and default
    /// cache/device settings.
    pub fn new(workers: usize) -> Self {
        Self::builder().workers(workers).build()
    }

    pub(crate) fn registry(&self) -> &ShardRegistry {
        &self.registry
    }

    /// Number of pool workers across all shards.
    pub fn worker_count(&self) -> usize {
        self.workers_per_shard * self.registry.shards.len()
    }

    /// Number of device shards.
    pub fn shard_count(&self) -> usize {
        self.registry.shards.len()
    }

    /// Workers each shard runs.
    pub(crate) fn workers_per_shard(&self) -> usize {
        self.workers_per_shard
    }

    /// The executor tuning every worker's solver (and hence device) was
    /// built with (before the per-shard pool tag is applied).
    pub fn executor_config(&self) -> ExecutorConfig {
        self.executor
    }

    /// Places one job on a shard and returns a handle on its result.
    ///
    /// Placement is fingerprint-affine: the shard whose cache holds the
    /// job's graph gets it (least-loaded such shard on ties), otherwise the
    /// least-loaded shard with queue room.  Never blocks on the solve — nor
    /// on admission: after shutdown has begun the job is rejected with an
    /// already-completed handle carrying [`ServiceError::ShuttingDown`](crate::ServiceError::ShuttingDown),
    /// and when every shard's queue is full (see
    /// [`ServiceBuilder::max_queue_depth`]) with
    /// [`ServiceError::Overloaded`](crate::ServiceError::Overloaded) describing the least-loaded shard.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        self.registry.submit(spec)
    }

    /// Places a batch, returning one handle per job in order.
    ///
    /// The specs are collected **before** any placement work — a slow
    /// caller iterator cannot stall concurrent submitters or the workers —
    /// then placed one by one, so an N-shard service starts fanning out
    /// over the batch immediately.  Jobs that find every shard full reject
    /// individually with [`ServiceError::Overloaded`](crate::ServiceError::Overloaded); only jobs actually
    /// enqueued count as submitted.
    pub fn submit_batch(&self, specs: impl IntoIterator<Item = JobSpec>) -> Vec<JobHandle> {
        let specs: Vec<JobSpec> = specs.into_iter().collect();
        specs.into_iter().map(|spec| self.registry.submit(spec)).collect()
    }

    /// `true` iff the service caches graphs (built with a non-zero cache
    /// capacity).  When `false`, [`Service::put_graph`] is a no-op and only
    /// inline jobs can solve.
    pub fn cache_enabled(&self) -> bool {
        self.registry.shards[0].cache.lock().stats().capacity > 0
    }

    /// Registers `graph` in its home shard's cache without solving,
    /// returning its fingerprint for use in
    /// [`crate::GraphSource::Cached`] jobs.  The home shard —
    /// `active[fingerprint mod |active|]` — is the same one `rebalance`
    /// would move it to, so affinity routing is stable from the first
    /// upload.
    ///
    /// On a service built with `cache_capacity(0)` the graph is **not**
    /// retained (the fingerprint is still returned); check
    /// [`Service::cache_enabled`] first when that configuration is
    /// possible.
    pub fn put_graph(&self, graph: impl Into<Arc<BipartiteCsr>>) -> u64 {
        let graph = graph.into();
        // Hash outside the lock: the fingerprint walk is O(E).
        let fingerprint = graph.fingerprint();
        let home = self.registry.home_shard(fingerprint).unwrap_or(0);
        self.registry.shards[home].cache.lock().insert_keyed(fingerprint, graph);
        fingerprint
    }

    /// `true` iff a graph with this fingerprint is cached on any shard.
    pub fn contains_graph(&self, fingerprint: u64) -> bool {
        self.registry.shards.iter().any(|s| s.cache.lock().contains(fingerprint))
    }

    /// Applies `delta` to the cached graph with fingerprint `parent` and
    /// caches the patched child — no re-upload of the full graph.  Returns
    /// the lineage record; jobs may then solve against either fingerprint.
    ///
    /// The child is cached on the **chain's home shard** (the home of the
    /// chain's root fingerprint), together with the delta itself, so a
    /// subsequent solve of the child on that shard warm-starts from the
    /// parent's last matching ([`gpm_core::Solver::resolve`] semantics:
    /// repair, then finish; counted in [`ServiceStats::resolved`]).
    /// `rebalance` and `drain` keep whole chains together for the same
    /// reason.
    ///
    /// # Errors
    ///
    /// [`crate::ServiceError::UnknownGraph`] when no shard caches `parent`;
    /// [`crate::ServiceError::BadDelta`] when the delta does not apply (the
    /// parent is left untouched).  On a service built with
    /// `cache_capacity(0)` patching is pointless (nothing is retained);
    /// callers should check [`Service::cache_enabled`] first.
    pub fn patch_graph(
        &self,
        parent: u64,
        delta: &gpm_graph::GraphDelta,
    ) -> Result<gpm_graph::DeltaLineage, crate::ServiceError> {
        let graph = self
            .registry
            .shards
            .iter()
            .find_map(|s| s.cache.lock().peek(parent))
            .ok_or(crate::ServiceError::UnknownGraph { fingerprint: parent })?;
        let (child, lineage) = graph
            .apply_delta_lineage(delta)
            .map_err(|e| crate::ServiceError::BadDelta { reason: e.to_string() })?;
        // Record lineage BEFORE computing the home: the child homes with its
        // chain's root, keeping warm-start state and routing shard-local.
        self.registry.record_lineage(parent, lineage.child);
        let home = self.registry.home_shard(lineage.child).unwrap_or(0);
        let shard = &self.registry.shards[home];
        shard.cache.lock().insert_keyed(lineage.child, Arc::new(child));
        shard.warm.lock().store_delta(lineage.child, parent, Arc::new(delta.clone()));
        shard.counters.patched.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(lineage)
    }

    /// A point-in-time snapshot of the whole service: the fold of every
    /// shard's counters (see [`ServiceStats`] for the fold rules).
    /// Lock-free against admission and solving — only per-shard cache and
    /// per-algorithm mutexes are touched, never a queue mutex.
    pub fn stats(&self) -> ServiceStats {
        let shards = &self.registry.shards;
        let mut total = ServiceStats {
            shards: shards.len(),
            workers: self.worker_count(),
            submitted: 0,
            completed: 0,
            failed: 0,
            rejected: 0,
            cancelled: 0,
            deadline_exceeded: 0,
            patched: 0,
            resolved: 0,
            queue_depth: 0,
            peak_queue_depth: 0,
            queue_wait: LatencyAgg::default(),
            cache: CacheStats::default(),
            per_algorithm: BTreeMap::new(),
        };
        for shard in shards.iter() {
            let s = shard.stats(self.workers_per_shard);
            total.submitted += s.submitted;
            total.completed += s.completed;
            total.failed += s.failed;
            total.rejected += s.rejected;
            total.cancelled += s.cancelled;
            total.deadline_exceeded += s.deadline_exceeded;
            total.patched += s.patched;
            total.resolved += s.resolved;
            total.queue_depth += s.queue_depth;
            total.peak_queue_depth = total.peak_queue_depth.max(s.peak_queue_depth);
            total.queue_wait.merge(&s.queue_wait);
            total.cache.merge(&s.cache);
            for (algorithm, stats) in &s.per_algorithm {
                total.per_algorithm.entry(algorithm.clone()).or_default().merge(stats);
            }
        }
        total
    }

    /// Stops admission without consuming the service: subsequent submits
    /// reject with [`ServiceError::ShuttingDown`](crate::ServiceError::ShuttingDown), already-accepted jobs
    /// still drain.  Idempotent.  Workers are joined by the eventual drop
    /// (or [`Service::shutdown`]); this only flips the flag, so it is safe
    /// to call from another thread racing live submitters.
    pub fn begin_shutdown(&self) {
        self.registry.begin_shutdown();
    }

    /// Stops accepting jobs, drains every shard's queue, and joins the
    /// workers.  Equivalent to dropping the service, but explicit at call
    /// sites.
    pub fn shutdown(self) {}
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            // A worker that panicked already completed no further jobs;
            // propagating the panic out of Drop would abort, so swallow it.
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("shards", &self.registry.shards.len())
            .field("workers", &self.worker_count())
            .field("queue_depth", &self.stats().queue_depth)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServiceError;
    use crate::job::GraphSource;
    use crate::shard::panic_message;
    use gpm_core::{Algorithm, InitHeuristic, SolveError};
    use gpm_graph::gen;
    use gpm_graph::verify::maximum_matching_cardinality;
    use std::time::{Duration, Instant};

    #[test]
    fn submit_solves_and_reports() {
        let service = Service::builder().workers(2).build();
        let g = gen::uniform_random(60, 60, 300, 11).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let outcome = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
        assert_eq!(outcome.report.cardinality, opt);
        assert!(!outcome.cache_hit);
        assert!(outcome.queue_seconds >= 0.0);
        assert!(outcome.service_seconds >= 0.0);
        assert!(outcome.worker < 2);
        assert_eq!(outcome.shard, 0);
        let stats = service.stats();
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.per_algorithm["HK"].completed, 1);
    }

    #[test]
    fn cached_jobs_hit_after_put_graph() {
        let service = Service::builder().workers(1).build();
        let g = gen::planted_perfect(50, 200, 3).unwrap();
        let fp = service.put_graph(g);
        assert!(service.contains_graph(fp));
        let outcome = service
            .submit(JobSpec::new(GraphSource::Cached(fp), Algorithm::PothenFan))
            .wait()
            .unwrap();
        assert_eq!(outcome.report.cardinality, 50);
        assert!(outcome.cache_hit);
        assert_eq!(service.stats().cache.hits, 1);
    }

    #[test]
    fn unknown_fingerprint_fails_the_job_not_the_pool() {
        let service = Service::builder().workers(1).build();
        let err = service
            .submit(JobSpec::new(GraphSource::Cached(0xdead_beef), Algorithm::HopcroftKarp))
            .wait()
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownGraph { fingerprint: 0xdead_beef });
        // The worker survives and keeps serving.
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let ok = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
        assert_eq!(ok.report.cardinality, opt);
        let stats = service.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn invalid_algorithms_and_gpu_without_device_fail_structurally() {
        let service = Service::builder().workers(1).device_policy(DevicePolicy::CpuOnly).build();
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        let err = service.submit(JobSpec::new(g.clone(), Algorithm::Pdbfs(0))).wait().unwrap_err();
        assert!(matches!(err, ServiceError::Solve(SolveError::InvalidConfig { .. })));
        let err = service.submit(JobSpec::new(g, Algorithm::gpr_default())).wait().unwrap_err();
        assert!(matches!(err, ServiceError::Solve(SolveError::DeviceRequired { .. })));
    }

    #[test]
    fn batch_fans_out_and_preserves_order() {
        let service = Service::builder().workers(4).build();
        let graphs: Vec<_> =
            (0..8).map(|i| gen::uniform_random(40, 40, 180, 100 + i).unwrap()).collect();
        let expected: Vec<_> = graphs.iter().map(maximum_matching_cardinality).collect();
        let handles = service
            .submit_batch(graphs.iter().map(|g| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        assert_eq!(handles.len(), 8);
        for (handle, want) in handles.into_iter().zip(expected) {
            assert_eq!(handle.wait().unwrap().report.cardinality, want);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert!(stats.peak_queue_depth >= 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn init_heuristic_is_honored_per_job() {
        let service = Service::builder().workers(1).build();
        let g = gen::uniform_random(50, 50, 240, 9).unwrap();
        let outcome = service
            .submit(JobSpec::new(g, Algorithm::HopcroftKarp).with_init(InitHeuristic::Empty))
            .wait()
            .unwrap();
        assert_eq!(outcome.report.initial_cardinality, 0);
    }

    #[test]
    fn drop_drains_accepted_jobs() {
        let service = Service::builder().workers(2).build();
        let g = gen::uniform_random(80, 80, 400, 21).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let handles =
            service.submit_batch((0..16).map(|_| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        drop(service); // begins shutdown; queued jobs must still complete
        for handle in handles {
            assert_eq!(handle.wait().unwrap().report.cardinality, opt);
        }
    }

    #[test]
    fn panic_payloads_become_messages() {
        let p = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p = std::panic::catch_unwind(|| panic!("{} {}", "boom", 2)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom 2");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    /// A job that keeps a single worker busy until the returned handle is
    /// cancelled: a Table-I-scale RMAT instance solved from an empty
    /// initial matching takes far longer than the test's enqueue work.
    fn blocker(service: &Service) -> crate::JobHandle {
        submit_blocker(service, blocker_graph(29))
    }

    /// A blocker's graph, by RMAT seed.  Multi-shard tests need *distinct*
    /// blocker graphs: two blockers on the same graph share a fingerprint,
    /// and affinity would route the second onto the first's shard instead
    /// of spreading one per shard.  They also generate both graphs *before*
    /// submitting either — generation is slow enough that the first blocker
    /// could otherwise finish before the second is submitted.
    fn blocker_graph(seed: u64) -> gpm_graph::BipartiteCsr {
        gen::rmat(gen::RmatParams::graph500(15, 16), seed).unwrap()
    }

    fn submit_blocker(service: &Service, g: gpm_graph::BipartiteCsr) -> crate::JobHandle {
        service.submit(JobSpec::new(g, Algorithm::HopcroftKarp).with_init(InitHeuristic::Empty))
    }

    #[test]
    fn full_queue_rejects_with_overloaded_without_blocking() {
        let service = Service::builder().workers(1).max_queue_depth(2).build();
        let big = blocker(&service);
        // Flood far more jobs than the cap while the worker chews on the
        // blocker; submission is lock-push only, so the worker cannot drain
        // the tiny backlog faster than we refill it.
        let g = gen::uniform_random(10, 10, 40, 7).unwrap();
        let handles =
            service.submit_batch((0..30).map(|_| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        let overloaded: Vec<_> = handles
            .iter()
            .filter(|h| {
                h.is_done() // only rejected handles are complete mid-flood
            })
            .collect();
        assert!(!overloaded.is_empty(), "expected rejections at depth cap 2");
        big.cancel();
        let mut rejected = 0u64;
        for handle in handles {
            match handle.wait() {
                Ok(outcome) => assert!(outcome.report.cardinality > 0),
                Err(ServiceError::Overloaded { queue_depth, retry_after_hint }) => {
                    assert_eq!(queue_depth, 2);
                    assert!(retry_after_hint > Duration::ZERO);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let _ = big.wait();
        let stats = service.stats();
        assert_eq!(stats.rejected, rejected);
        assert!(rejected > 0);
        // Rejected jobs are not "submitted": the ledger still balances.
        assert_eq!(stats.submitted, 1 + 30 - rejected);
        assert_eq!(stats.submitted, stats.completed + stats.failed);
    }

    #[test]
    fn queued_jobs_past_their_deadline_fail_fast_without_a_solver() {
        let service = Service::builder().workers(1).build();
        let big = blocker(&service);
        // An already-expired deadline: by the time any worker can look at
        // this job its deadline has passed, whatever the blocker does.
        let g = gen::uniform_random(10, 10, 40, 7).unwrap();
        let doomed =
            service.submit(JobSpec::new(g, Algorithm::HopcroftKarp).with_deadline(Duration::ZERO));
        big.cancel();
        let err = doomed.wait().unwrap_err();
        assert_eq!(
            err,
            ServiceError::DeadlineExceeded { rounds_completed: 0, partial_cardinality: 0 }
        );
        let _ = big.wait();
        let stats = service.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.failed, stats.cancelled + stats.deadline_exceeded);
    }

    #[test]
    fn cancelled_while_queued_never_touches_a_solver() {
        let service = Service::builder().workers(1).build();
        let g = gen::uniform_random(10, 10, 40, 7).unwrap();
        let spec = JobSpec::new(g, Algorithm::HopcroftKarp);
        spec.cancel.cancel(); // cancelled before the pool ever sees it
        let err = service.submit(spec).wait().unwrap_err();
        assert_eq!(err, ServiceError::Cancelled { rounds_completed: 0, partial_cardinality: 0 });
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn cancelling_a_running_solve_stops_it_within_rounds() {
        let service = Service::builder().workers(1).build();
        let handle = blocker(&service);
        std::thread::sleep(Duration::from_millis(5));
        handle.cancel();
        match handle.wait() {
            Err(ServiceError::Cancelled { .. }) => {
                assert_eq!(service.stats().cancelled, 1);
            }
            // The solve can win the race; it must then be a clean success.
            Ok(outcome) => assert!(outcome.report.cardinality > 0),
            Err(other) => panic!("unexpected error: {other}"),
        }
        // The worker survives cancellation and keeps serving.
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let ok = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
        assert_eq!(ok.report.cardinality, opt);
    }

    #[test]
    fn higher_priority_jobs_dequeue_first_fifo_within_a_priority() {
        let service = Service::builder().workers(1).build();
        let big = blocker(&service);
        // Order probe via the cache: the low-priority inline job registers
        // the graph; a by-fingerprint job only succeeds if it runs AFTER it.
        // The high-priority fingerprint job must therefore fail
        // (UnknownGraph — it jumped the queue), while the equal-priority
        // one submitted later succeeds (FIFO within priority 0).
        let g = gen::uniform_random(30, 30, 120, 17).unwrap();
        let fp = g.fingerprint();
        let low_inline = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp));
        let high_cached = service.submit(
            JobSpec::new(GraphSource::Cached(fp), Algorithm::HopcroftKarp).with_priority(9),
        );
        let low_cached =
            service.submit(JobSpec::new(GraphSource::Cached(fp), Algorithm::HopcroftKarp));
        big.cancel();
        assert_eq!(
            high_cached.wait().unwrap_err(),
            ServiceError::UnknownGraph { fingerprint: fp },
            "priority 9 job should have run before the inline upload"
        );
        assert!(low_inline.wait().is_ok());
        assert!(low_cached.wait().unwrap().cache_hit);
        let _ = big.wait();
    }

    #[test]
    fn shutdown_rejections_do_not_count_as_submitted() {
        let service = Service::builder().workers(1).build();
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        service.submit(JobSpec::new(g.clone(), Algorithm::HopcroftKarp)).wait().unwrap();
        service.begin_shutdown();
        // Regression (submit_batch used to count these): rejected batches
        // must leave `submitted` untouched on both submit paths.
        let handles =
            service.submit_batch((0..4).map(|_| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        assert_eq!(handles.len(), 4);
        for handle in handles {
            assert_eq!(handle.wait().unwrap_err(), ServiceError::ShuttingDown);
        }
        assert_eq!(
            service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap_err(),
            ServiceError::ShuttingDown
        );
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.submitted, stats.completed + stats.failed + stats.queue_depth as u64);
    }

    #[test]
    fn slow_batch_iterators_do_not_stall_concurrent_submitters() {
        let service = Arc::new(Service::builder().workers(1).build());
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        // While the batch iterator dawdles (3 × 150 ms), a concurrent
        // submitter must get in and out quickly: the specs are collected
        // before any placement work happens.
        let concurrent = {
            let service = Arc::clone(&service);
            let g = g.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                let started = Instant::now();
                service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
                started.elapsed()
            })
        };
        let batch_started = Instant::now();
        let handles = service.submit_batch((0..3).map(|_| {
            std::thread::sleep(Duration::from_millis(150));
            JobSpec::new(g.clone(), Algorithm::HopcroftKarp)
        }));
        let batch_elapsed = batch_started.elapsed();
        let concurrent_elapsed = concurrent.join().unwrap();
        assert!(
            concurrent_elapsed < batch_elapsed / 2,
            "concurrent submit took {concurrent_elapsed:?} against a {batch_elapsed:?} batch"
        );
        for handle in handles {
            let outcome = handle.wait().unwrap();
            // Regression: `enqueued` used to be stamped before the iterator
            // was drained, charging the iterator's dawdling (≥ 300 ms for
            // the first job) to queue wait.
            assert!(
                outcome.queue_seconds < 0.140,
                "queue wait {:.3}s includes iterator time",
                outcome.queue_seconds
            );
        }
    }

    #[test]
    fn warm_workers_reuse_engines_across_jobs() {
        // Same algorithm on one worker: the second job must not re-create
        // the engine (observable through identical results and a fast path,
        // here just correctness under repetition).
        let service = Service::builder().workers(1).build();
        let g = gen::planted_perfect(64, 256, 13).unwrap();
        let fp = service.put_graph(g);
        for _ in 0..3 {
            let outcome = service
                .submit(JobSpec::new(GraphSource::Cached(fp), Algorithm::gpr_default()))
                .wait()
                .unwrap();
            assert_eq!(outcome.report.cardinality, 64);
            assert!(outcome.cache_hit);
        }
        assert_eq!(service.stats().cache.hits, 3);
    }

    // ---- dynamic graphs ---------------------------------------------------

    #[test]
    fn patch_graph_caches_the_child_and_warm_starts_its_solve() {
        let service = Service::builder().workers(1).build();
        let g = gen::uniform_random(40, 40, 200, 19).unwrap();
        let parent = service.put_graph(g.clone());
        // Solve the parent first so its matching is on file for warm starts.
        let outcome = service
            .submit(JobSpec::new(GraphSource::Cached(parent), Algorithm::HopcroftKarp))
            .wait()
            .unwrap();
        assert_eq!(outcome.report.cardinality, maximum_matching_cardinality(&g));
        // Patch: drop a real edge (possibly matched), add a fresh vertex
        // with one edge.
        let (r, c) = g.edges().next().unwrap();
        let mut delta = gpm_graph::GraphDelta::new();
        delta.remove_edge(r, c);
        delta.add_rows(1);
        delta.insert_edge(40, 0);
        let lineage = service.patch_graph(parent, &delta).unwrap();
        assert_eq!(lineage.parent, parent);
        assert!(service.contains_graph(lineage.child), "patched child must be cached");
        assert!(service.contains_graph(parent), "parent stays cached too");
        let child_opt = maximum_matching_cardinality(&g.apply_delta(&delta).unwrap());
        // Both fingerprints in the chain are solvable; the child's solve
        // warm-starts from the parent's matching.
        let child_outcome = service
            .submit(JobSpec::new(GraphSource::Cached(lineage.child), Algorithm::HopcroftKarp))
            .wait()
            .unwrap();
        assert_eq!(child_outcome.report.cardinality, child_opt);
        let again = service
            .submit(JobSpec::new(GraphSource::Cached(parent), Algorithm::PothenFan))
            .wait()
            .unwrap();
        assert_eq!(again.report.cardinality, maximum_matching_cardinality(&g));
        let stats = service.stats();
        assert_eq!(stats.patched, 1);
        assert_eq!(stats.resolved, 1, "the child's solve must have warm-started");
    }

    #[test]
    fn patch_graph_rejects_unknown_parents_and_bad_deltas() {
        let service = Service::builder().workers(1).build();
        let g = gen::planted_perfect(20, 80, 3).unwrap();
        let parent = service.put_graph(g);
        let delta = gpm_graph::GraphDelta::new();
        assert_eq!(
            service.patch_graph(0xdead_beef, &delta).unwrap_err(),
            ServiceError::UnknownGraph { fingerprint: 0xdead_beef }
        );
        // Out-of-bounds insert: rejected, parent untouched, nothing counted.
        let mut bad = gpm_graph::GraphDelta::new();
        bad.insert_edge(1_000, 0);
        assert!(matches!(
            service.patch_graph(parent, &bad).unwrap_err(),
            ServiceError::BadDelta { .. }
        ));
        assert!(service.contains_graph(parent));
        assert_eq!(service.stats().patched, 0);
    }

    #[test]
    fn patch_chains_home_together_and_survive_rebalance() {
        let service = Service::builder().shards(3).workers(1).build();
        let g = gen::uniform_random(30, 30, 150, 23).unwrap();
        let parent = service.put_graph(g.clone());
        // Grow a chain of patches; every link must home with the root.
        let mut fingerprints = vec![parent];
        let mut current = g;
        for step in 0..4u32 {
            let mut delta = gpm_graph::GraphDelta::new();
            let (r, c) = current.edges().nth(step as usize).unwrap();
            delta.remove_edge(r, c);
            let lineage = service.patch_graph(*fingerprints.last().unwrap(), &delta).unwrap();
            current = current.apply_delta(&delta).unwrap();
            fingerprints.push(lineage.child);
        }
        let root_home = service.registry().home_shard(parent).unwrap();
        for &fp in &fingerprints {
            assert_eq!(
                service.registry().home_shard(fp),
                Some(root_home),
                "chain member {fp:#x} homed away from its root"
            );
            let holder: Vec<usize> = service
                .registry()
                .shards
                .iter()
                .filter(|s| s.cache.lock().contains(fp))
                .map(|s| s.id)
                .collect();
            assert_eq!(holder, vec![root_home], "chain member {fp:#x} cached off-home");
        }
        // Rebalance finds nothing to move: the chain is already home.
        assert_eq!(service.rebalance().moved, 0);
        // Drain the home shard: the whole chain re-homes together, and the
        // newest child still solves (warm state travels via rebalance).
        service.drain_shard(root_home).unwrap();
        let new_home = service.registry().home_shard(parent).unwrap();
        assert_ne!(new_home, root_home);
        service.rebalance();
        for &fp in &fingerprints {
            assert_eq!(service.registry().home_shard(fp), Some(new_home));
        }
        let tail = *fingerprints.last().unwrap();
        let outcome = service
            .submit(JobSpec::new(GraphSource::Cached(tail), Algorithm::HopcroftKarp))
            .wait()
            .unwrap();
        assert_eq!(outcome.shard, new_home);
        assert_eq!(outcome.report.cardinality, maximum_matching_cardinality(&current));
        assert_eq!(service.stats().patched, 4);
    }

    // ---- sharded behaviour ------------------------------------------------

    /// Polls until `predicate` holds or the timeout expires.
    fn wait_until(timeout: Duration, mut predicate: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if predicate() {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn cached_jobs_follow_their_graph_to_one_shard() {
        let service = Service::builder().shards(4).workers(1).build();
        assert_eq!(service.shard_count(), 4);
        assert_eq!(service.worker_count(), 4);
        let g = gen::planted_perfect(40, 160, 5).unwrap();
        let fp = service.put_graph(g);
        let home = service.registry().home_shard(fp).unwrap();
        for _ in 0..6 {
            let outcome = service
                .submit(JobSpec::new(GraphSource::Cached(fp), Algorithm::HopcroftKarp))
                .wait()
                .unwrap();
            assert_eq!(outcome.shard, home, "affinity should pin the job to the holder");
            assert!(outcome.cache_hit);
        }
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 6);
        assert_eq!(stats.cache.misses, 0);
        let per_shard = service.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard[home].stats.completed, 6);
        for s in per_shard.iter().filter(|s| s.id != home) {
            assert_eq!(s.stats.completed, 0, "shard {} ran a misrouted job", s.id);
        }
    }

    #[test]
    fn hot_shard_full_spills_to_empty_shard_and_hint_names_the_least_loaded() {
        let service = Service::builder().shards(2).workers(1).max_queue_depth(1).build();
        // Occupy both workers so queued jobs stay queued.
        let (bg0, bg1) = (blocker_graph(29), blocker_graph(31));
        let b0 = submit_blocker(&service, bg0);
        let b1 = submit_blocker(&service, bg1);
        assert!(
            wait_until(Duration::from_secs(20), || {
                service.shard_stats().iter().all(|s| s.running == 1)
            }),
            "blockers never started running"
        );
        let g = gen::uniform_random(10, 10, 40, 7).unwrap();
        // Queue slot 1 of 1 on the first shard…
        let c1 = service.submit(JobSpec::new(g.clone(), Algorithm::HopcroftKarp));
        assert!(!c1.is_done(), "first small job must queue, not reject");
        // …so this one MUST spill to the other (empty-queued) shard rather
        // than reject: one hot shard being full is not "overloaded".
        let c2 = service.submit(JobSpec::new(g.clone(), Algorithm::HopcroftKarp));
        assert!(!c2.is_done(), "second small job must spill to the empty shard, not reject");
        // Now every queue is full: rejection, with the least-loaded depth.
        let c3 = service.submit(JobSpec::new(g.clone(), Algorithm::HopcroftKarp));
        match c3.wait() {
            Err(ServiceError::Overloaded { queue_depth, retry_after_hint }) => {
                assert_eq!(queue_depth, 1, "hint must describe the least-loaded shard");
                assert!(retry_after_hint > Duration::ZERO);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        b0.cancel();
        b1.cancel();
        assert!(c1.wait().is_ok());
        assert!(c2.wait().is_ok());
        // The blockers either succumbed to the cancel or won the race with
        // a clean solve; either way the ledger must balance.
        for b in [b0, b1] {
            match b.wait() {
                Ok(_) | Err(ServiceError::Cancelled { .. }) => {}
                Err(other) => panic!("unexpected blocker error: {other}"),
            }
        }
        let stats = service.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, stats.completed + stats.failed);
        assert_eq!(stats.completed + stats.failed, 4);
    }

    #[test]
    fn drained_shard_requeues_queued_jobs_and_finishes_in_flight() {
        let service = Service::builder().shards(2).workers(1).build();
        let (bg0, bg1) = (blocker_graph(29), blocker_graph(31));
        let b0 = submit_blocker(&service, bg0);
        let b1 = submit_blocker(&service, bg1);
        assert!(
            wait_until(Duration::from_secs(20), || {
                service.shard_stats().iter().all(|s| s.running == 1)
            }),
            "blockers never started running"
        );
        // Queue small jobs; placement alternates by load, so both shards
        // hold some.
        let g = gen::uniform_random(20, 20, 80, 5).unwrap();
        let opt = maximum_matching_cardinality(&g);
        let handles =
            service.submit_batch((0..6).map(|_| JobSpec::new(g.clone(), Algorithm::HopcroftKarp)));
        let queued_on_0 = service.shard_stats()[0].stats.queue_depth;
        assert!(queued_on_0 > 0, "expected jobs queued on shard 0");
        let outcome = service.drain_shard(0).unwrap();
        assert_eq!(outcome.shard, 0);
        assert_eq!(outcome.requeued, queued_on_0);
        assert_eq!(outcome.kept, 0);
        assert_eq!(outcome.in_flight, 1, "the blocker is still running on shard 0");
        assert_eq!(service.shard_stats()[0].stats.queue_depth, 0);
        // New submissions go to shard 1 only.
        let extra = service.submit(JobSpec::new(g.clone(), Algorithm::HopcroftKarp));
        b0.cancel();
        b1.cancel();
        // Every accepted job completes exactly once, nothing lost.
        for handle in handles {
            assert_eq!(handle.wait().unwrap().report.cardinality, opt);
        }
        let extra_outcome = extra.wait().unwrap();
        assert_eq!(extra_outcome.shard, 1, "draining shard must not receive placements");
        let _ = b0.wait();
        let _ = b1.wait();
        let stats = service.stats();
        assert_eq!(stats.submitted, stats.completed + stats.failed);
        // The drained shard finished its in-flight blocker itself (the
        // cancel may lose the race to a clean solve; either way it ends on
        // shard 0 and nowhere else).
        let s0 = service.shard_stats()[0].stats.clone();
        assert_eq!(s0.completed + s0.failed, 1, "shard 0's blocker finished on shard 0");
        // Draining the last shard quiesces the service.
        service.drain_shard(1).unwrap();
        let err = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap_err();
        assert_eq!(err, ServiceError::ShuttingDown);
        assert!(matches!(
            service.drain_shard(7),
            Err(crate::control::ControlError::UnknownShard { shard: 7, shards: 2 })
        ));
    }

    #[test]
    fn rebalance_moves_graphs_to_their_home_shards() {
        let service = Service::builder().shards(3).workers(1).build();
        // Upload via inline solves so the graphs land wherever their job
        // ran, not at their home shard.
        let graphs: Vec<_> =
            (0..9).map(|i| gen::uniform_random(15, 15, 50, 40 + i).unwrap()).collect();
        for g in &graphs {
            service.submit(JobSpec::new(g.clone(), Algorithm::HopcroftKarp)).wait().unwrap();
        }
        let outcome = service.rebalance();
        assert_eq!(outcome.active_shards, 3);
        // Every graph now sits exactly on its home shard.
        for g in &graphs {
            let fp = g.fingerprint();
            let home = service.registry().home_shard(fp).unwrap();
            for shard in &service.registry().shards {
                let holds = shard.cache.lock().contains(fp);
                assert_eq!(
                    holds,
                    shard.id == home,
                    "fingerprint {fp:#x} misplaced relative to shard {}",
                    shard.id
                );
            }
        }
        // A second rebalance is a no-op: the invariant already holds.
        assert_eq!(service.rebalance().moved, 0);
        // Cached solves still hit after the shuffle (remote peeks are not
        // needed once placement follows the graph).
        for g in &graphs {
            let outcome = service
                .submit(JobSpec::new(GraphSource::Cached(g.fingerprint()), Algorithm::PothenFan))
                .wait()
                .unwrap();
            assert!(outcome.cache_hit);
        }
    }

    #[test]
    fn remote_peek_resolves_graphs_cached_on_a_sibling_shard() {
        let service = Service::builder().shards(2).workers(1).build();
        let g = gen::planted_perfect(30, 120, 11).unwrap();
        let fp = g.fingerprint();
        let home = service.registry().home_shard(fp).unwrap();
        let away = 1 - home;
        // Plant the graph on the wrong shard, bypassing put_graph.
        service.registry().shards[away].cache.lock().insert_keyed(fp, Arc::new(g));
        // Drain the holder so placement must send the job to the other
        // shard — wait: drain the *home* is unnecessary; affinity already
        // routes to the actual holder.  Instead drain the holder to force a
        // remote peek.
        service.drain_shard(away).unwrap();
        let outcome = service
            .submit(JobSpec::new(GraphSource::Cached(fp), Algorithm::HopcroftKarp))
            .wait()
            .unwrap();
        assert_eq!(outcome.shard, home, "only the non-draining shard may run the job");
        assert_eq!(outcome.report.cardinality, 30);
        assert!(outcome.cache_hit, "remote peek should still resolve the graph");
        // The local miss stays visible in the running shard's stats.
        let per_shard = service.shard_stats();
        assert_eq!(per_shard[home].stats.cache.misses, 1);
        assert_eq!(per_shard[away].stats.cache.hits, 0, "peek must not count on the owner");
    }
}
