//! The control plane: per-shard introspection, draining, and cache
//! rebalancing.
//!
//! These operations are exposed three ways — on [`Service`] directly
//! ([`Service::shard_stats`], [`Service::drain_shard`],
//! [`Service::rebalance`]), as the `shards` / `drain` / `rebalance` ops of
//! the wire protocol, and on the [`crate::Client`].  They are *management*
//! operations: none of them sits on the job hot path, and none of them can
//! lose or duplicate an admitted job.
//!
//! ## Shard lifecycle
//!
//! A shard is **active** from service start: placement may pick it, its
//! workers pull from its queue.  `drain` moves it to **draining**: placement
//! skips it permanently, its queued jobs are re-homed onto active shards
//! (capacity ignored — they were already admitted), and its in-flight jobs
//! finish where they run.  Its workers stay alive but idle once the queue
//! is empty, and its cache keeps answering sibling peeks.  Draining the
//! last active shard quiesces the service: new submissions are rejected
//! with [`crate::ServiceError::ShuttingDown`], and a drain's displaced jobs
//! stay put (the draining shard's own workers finish them).  Service
//! shutdown is the separate, terminal state that ends the workers.

use crate::service::Service;
use crate::stats::ServiceStats;
use serde::{Serialize, Value};
use std::fmt;

/// One shard's control-plane view: identity, lifecycle, and a
/// [`ServiceStats`]-shaped snapshot of just this shard.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// The shard's index (0-based, stable for the service's lifetime).
    pub id: usize,
    /// `true` once the shard has been drained: it finishes its work but
    /// receives no new placements.
    pub draining: bool,
    /// Jobs currently executing on this shard's workers.
    pub running: usize,
    /// The shard's snapshot (its `shards` field is 1; `workers` is this
    /// shard's worker count).
    pub stats: ServiceStats,
}

impl Serialize for ShardStats {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("id".to_string(), Value::U64(self.id as u64)),
            ("draining".to_string(), Value::Bool(self.draining)),
            ("running".to_string(), Value::U64(self.running as u64)),
            ("stats".to_string(), self.stats.to_value()),
        ])
    }
}

/// What a drain accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct DrainOutcome {
    /// The drained shard.
    pub shard: usize,
    /// Queued jobs re-homed onto other shards.
    pub requeued: usize,
    /// Queued jobs that had nowhere to go (every shard draining) and will
    /// be finished by the drained shard's own workers.
    pub kept: usize,
    /// Jobs that were mid-solve on the shard when the drain ran; they
    /// finish there.
    pub in_flight: usize,
}

/// What a rebalance accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct RebalanceOutcome {
    /// Cached graphs moved to their home shard.
    pub moved: usize,
    /// Active (non-draining) shards the fingerprint space was spread over.
    pub active_shards: usize,
}

/// Failure modes of control-plane operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlError {
    /// The request named a shard the service does not have.
    UnknownShard {
        /// The shard index asked for.
        shard: usize,
        /// How many shards the service runs (valid ids are `0..shards`).
        shards: usize,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::UnknownShard { shard, shards } => {
                write!(f, "no shard {shard}: this service runs {shards} shard(s), ids 0..{shards}")
            }
        }
    }
}

impl std::error::Error for ControlError {}

impl Service {
    /// Per-shard snapshots, ascending by shard id.  Purely observational:
    /// reads atomics and per-shard cache/per-algorithm locks, never a queue
    /// mutex, so it cannot stall admission or workers.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let registry = self.registry();
        registry
            .shards
            .iter()
            .map(|shard| ShardStats {
                id: shard.id,
                draining: shard.draining.load(std::sync::atomic::Ordering::Relaxed),
                running: shard.running.load(std::sync::atomic::Ordering::Relaxed),
                stats: shard.stats(self.workers_per_shard()),
            })
            .collect()
    }

    /// Drains one shard: placement stops immediately, queued jobs are
    /// re-homed onto the least-loaded active shards (capacity ignored —
    /// they were already admitted, so they must not be lost or
    /// re-rejected), in-flight jobs finish where they run.  Idempotent:
    /// draining a draining shard just re-homes whatever queued since.
    ///
    /// Ordering guarantee: the draining flag is set *before* the queue is
    /// flushed, so a submission racing the drain either placed its job
    /// before the flush (and is re-homed with the rest) or re-decides onto
    /// another shard.  Either way the job runs exactly once.
    pub fn drain_shard(&self, shard: usize) -> Result<DrainOutcome, ControlError> {
        let registry = self.registry();
        let Some(target) = registry.shards.get(shard) else {
            return Err(ControlError::UnknownShard { shard, shards: registry.shards.len() });
        };
        registry.mark_draining(shard);
        let displaced = target.take_queued();
        let mut requeued = 0;
        let mut kept = 0;
        for job in displaced {
            if registry.requeue(shard, job) {
                requeued += 1;
            } else {
                kept += 1;
            }
        }
        // Wake the drained shard's workers: with `kept` jobs they have work,
        // otherwise they go back to sleep having observed an empty queue.
        target.available.notify_all();
        Ok(DrainOutcome {
            shard,
            requeued,
            kept,
            in_flight: target.running.load(std::sync::atomic::Ordering::Relaxed),
        })
    }

    /// Moves every cached graph to its home shard
    /// (`active[fingerprint mod |active|]` over the non-draining shards),
    /// so affinity placement converges to an even spread of the cached
    /// fingerprint space after shards were drained or caches grew lopsided.
    ///
    /// Each move inserts at the destination *before* removing from the
    /// origin, so a concurrent job resolving that fingerprint always finds
    /// the graph in at least one cache.
    pub fn rebalance(&self) -> RebalanceOutcome {
        let registry = self.registry();
        let active = registry.active_shards();
        if active.is_empty() {
            return RebalanceOutcome { moved: 0, active_shards: 0 };
        }
        let mut moved = 0;
        for shard in &registry.shards {
            // Collect first: a `for` over `lock().fingerprints()` would keep
            // the guard alive across the body, deadlocking on the re-locks.
            let fingerprints = shard.cache.lock().fingerprints();
            for fingerprint in fingerprints {
                // Home on the patch chain's root, not the fingerprint
                // itself: a whole lineage chain re-homes together so
                // warm-start state stays shard-local.
                let root = registry.lineage_root(fingerprint);
                let home = active[(root % active.len() as u64) as usize];
                if home == shard.id {
                    continue;
                }
                let Some(graph) = shard.cache.lock().peek(fingerprint) else {
                    continue; // moved or evicted under us
                };
                registry.shards[home].cache.lock().insert_keyed(fingerprint, graph);
                shard.cache.lock().remove(fingerprint);
                // Warm-start state travels with the graph: the matching and
                // delta are useless on a shard jobs are no longer routed to.
                let (matching, delta) = shard.warm.lock().take(fingerprint);
                if matching.is_some() || delta.is_some() {
                    registry.shards[home].warm.lock().absorb(fingerprint, matching, delta);
                }
                moved += 1;
            }
        }
        RebalanceOutcome { moved, active_shards: active.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_errors_and_outcomes_render() {
        let e = ControlError::UnknownShard { shard: 9, shards: 4 };
        assert!(e.to_string().contains("no shard 9"));
        assert!(e.to_string().contains("0..4"));
        let json =
            serde_json::to_string(&DrainOutcome { shard: 1, requeued: 3, kept: 0, in_flight: 2 })
                .unwrap();
        assert!(json.contains("\"requeued\":3"), "{json}");
        let json = serde_json::to_string(&RebalanceOutcome { moved: 5, active_shards: 3 }).unwrap();
        assert!(json.contains("\"moved\":5"), "{json}");
    }
}
