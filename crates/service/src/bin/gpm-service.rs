//! The `gpm-service` server binary: a JSON-lines matching service over TCP.
//!
//! ```text
//! gpm-service [--addr HOST:PORT] [--shards M] [--workers N] [--cache N]
//!             [--device POLICY] [--max-queue-depth N]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:7878`; port 0 picks a
//!   free port, printed on startup).
//! * `--shards` — device shards; each owns its own worker pool, queue, and
//!   graph cache, and jobs are placed by fingerprint affinity (default 1).
//! * `--workers` — pool size **per shard**; each worker owns a warm solver
//!   (default 2).
//! * `--cache` — graph-cache capacity **per shard**, in graphs (default
//!   32).
//! * `--device` — `cpu-only`, `sequential`, `parallel:N`, or `auto`
//!   (default `sequential`).
//! * `--max-queue-depth` — bound each shard's queue; submissions finding
//!   every shard full are rejected with an `overloaded` error instead of
//!   queuing (default: unbounded).
//!
//! The process exits after a client sends `{"op":"shutdown"}`.

use gpm_core::DevicePolicy;
use gpm_service::{serve, Service};
use std::net::TcpListener;
use std::process::ExitCode;

fn parse_device(s: &str) -> Result<DevicePolicy, String> {
    match s {
        "cpu-only" => Ok(DevicePolicy::CpuOnly),
        "sequential" => Ok(DevicePolicy::Sequential),
        "auto" => Ok(DevicePolicy::Auto),
        other => match other.strip_prefix("parallel:") {
            Some(n) => n
                .parse::<usize>()
                .map(DevicePolicy::Parallel)
                .map_err(|_| format!("bad worker count in '{other}'")),
            None => Err(format!(
                "bad device policy '{other}': expected cpu-only, sequential, parallel:N, or auto"
            )),
        },
    }
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut shards = 1usize;
    let mut workers = 2usize;
    let mut cache = 32usize;
    let mut device = DevicePolicy::Sequential;
    let mut max_queue_depth: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards requires an integer".to_string())?;
            }
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers requires an integer".to_string())?;
            }
            "--cache" => {
                cache = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache requires an integer".to_string())?;
            }
            "--device" => device = parse_device(&value("--device")?)?,
            "--max-queue-depth" => {
                max_queue_depth = Some(
                    value("--max-queue-depth")?
                        .parse()
                        .map_err(|_| "--max-queue-depth requires an integer".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "gpm-service [--addr HOST:PORT] [--shards M] [--workers N] [--cache N] \
                     [--device POLICY] [--max-queue-depth N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}' (see --help)")),
        }
    }

    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    let mut builder = Service::builder()
        .shards(shards)
        .workers(workers)
        .cache_capacity(cache)
        .device_policy(device);
    if let Some(depth) = max_queue_depth {
        builder = builder.max_queue_depth(depth);
    }
    let service = builder.build();
    // Scripts (and the CI smoke test) wait for this line before connecting.
    println!(
        "gpm-service listening on {local} ({} shard(s), {workers} workers/shard, \
         cache {cache}/shard)",
        service.shard_count()
    );
    serve(listener, service).map_err(|e| format!("server error: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gpm-service: {message}");
            ExitCode::FAILURE
        }
    }
}
