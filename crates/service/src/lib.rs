//! # gpm-service — a concurrent matching service
//!
//! The paper's workload (conf_icpp_DeveciKUC13) is batch sweeps over many
//! instances; this crate turns the single-threaded [`gpm_core::Solver`]
//! session into a multi-client service that amortizes warm solver state
//! across a stream of jobs:
//!
//! * [`service::Service`] — a pool of N worker threads, each owning a warm
//!   `Solver` (device + per-algorithm workspaces), pulling from a shared
//!   MPMC priority queue (highest [`JobSpec::priority`] first, FIFO within
//!   a priority).  [`Service::submit`] / [`Service::submit_batch`] never
//!   block on the solve — nor on admission: with
//!   [`ServiceBuilder::max_queue_depth`] set, a full queue rejects with
//!   [`ServiceError::Overloaded`].  Clients hold a [`job::JobHandle`] and
//!   `wait()`, or `cancel()` it; jobs may also carry a deadline.  Both
//!   signals reach running engines at worklist-round granularity and
//!   surface as [`ServiceError::Cancelled`] /
//!   [`ServiceError::DeadlineExceeded`] with the rounds completed and the
//!   partial matching cardinality at the stop.
//! * [`job::JobSpec`] — algorithm (round-trippable label), init heuristic,
//!   a graph **by value or by cache key**, plus priority, deadline, and a
//!   [`CancelToken`].
//! * [`cache::GraphCache`] — content-addressed by
//!   [`gpm_graph::BipartiteCsr::fingerprint`], LRU-evicted, hit/miss
//!   counted: repeated solves on the same instance skip re-upload.
//! * [`stats::ServiceStats`] — per-algorithm job counts, queue depth, and
//!   latency aggregates, serialized as JSON.
//! * [`server`]/[`client`] — a JSON-lines protocol over
//!   `std::net::TcpListener` (see [`proto`] for the grammar) and the
//!   matching blocking client; the `gpm-service` binary serves it.
//!
//! ```
//! use gpm_core::Algorithm;
//! use gpm_service::{JobSpec, Service};
//! use gpm_graph::gen;
//!
//! let service = Service::builder().workers(4).build();
//! let graph = gen::planted_perfect(200, 800, 7).unwrap();
//! let fingerprint = service.put_graph(graph);
//!
//! // Eight jobs fan out over four warm solvers; the graph is fetched from
//! // the cache by key each time.
//! let handles = service.submit_batch((0..8).map(|_| {
//!     JobSpec::new(gpm_service::GraphSource::Cached(fingerprint), Algorithm::HopcroftKarp)
//! }));
//! for handle in handles {
//!     assert_eq!(handle.wait().unwrap().report.cardinality, 200);
//! }
//! assert_eq!(service.stats().cache.hits, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod error;
pub mod job;
pub mod proto;
pub mod server;
pub mod service;
pub mod stats;

pub use cache::{CacheStats, GraphCache};
pub use client::{Client, SolveOptions};
pub use error::ServiceError;
pub use gpm_core::CancelToken;
pub use job::{GraphSource, JobHandle, JobOutcome, JobSpec};
pub use server::{serve, ServerState};
pub use service::{Service, ServiceBuilder};
pub use stats::{AlgorithmStats, LatencyAgg, ServiceStats};
