//! # gpm-service — a sharded concurrent matching service
//!
//! The paper's workload (conf_icpp_DeveciKUC13) is batch sweeps over many
//! instances; this crate turns the single-threaded [`gpm_core::Solver`]
//! session into a multi-client, multi-device service that amortizes warm
//! solver state across a stream of jobs:
//!
//! * Shard-per-device execution — the service runs M independent
//!   **device shards** ([`ServiceBuilder::shards`], default 1).  Each shard
//!   owns its own worker pool (each worker a warm `Solver`: device +
//!   per-algorithm workspaces, kernel pool threads tagged with the shard
//!   id), its own bounded priority queue (highest [`JobSpec::priority`]
//!   first, FIFO within a priority), its own private
//!   [`cache::GraphCache`], and its own lock-free statistics.  There is no
//!   global queue and no global cache lock: submissions contend only on
//!   the shard they are placed on.
//! * [`placement`] — jobs are routed by graph-fingerprint **affinity**: a
//!   fast path admits a job straight onto its *home shard*
//!   (`fingerprint mod active shards`) when that shard holds the graph and
//!   has room — O(1) in the shard count; otherwise the shard whose cache
//!   holds the job's graph gets the job, misses spill to the least-loaded
//!   shard with queue room, and ties break to the lowest shard id, so
//!   placement is deterministic given a load snapshot.
//!   [`Service::submit`] / [`Service::submit_batch`] never block on the
//!   solve — nor on admission: with [`ServiceBuilder::max_queue_depth`]
//!   set, a service whose every shard is full rejects with
//!   [`ServiceError::Overloaded`] describing the *least-loaded* shard.
//! * [`control`] — the control plane: per-shard snapshots
//!   ([`Service::shard_stats`]), [`Service::drain_shard`] (queued jobs
//!   re-homed, in-flight jobs finish in place, nothing lost or
//!   duplicated), and [`Service::rebalance`] (cached graphs move to their
//!   home shard `active[fingerprint mod |active|]`).
//! * [`job::JobSpec`] — algorithm (round-trippable label), init heuristic,
//!   a graph **by value or by cache key**, plus priority, deadline, and a
//!   [`CancelToken`].  Cancellation and deadlines reach running engines at
//!   worklist-round granularity and surface as [`ServiceError::Cancelled`]
//!   / [`ServiceError::DeadlineExceeded`] with the rounds completed and
//!   the partial matching cardinality at the stop.
//! * [`cache::GraphCache`] — content-addressed by
//!   [`gpm_graph::BipartiteCsr::fingerprint`], LRU-evicted, hit/miss
//!   counted: repeated solves on the same instance skip re-upload, and the
//!   per-shard hit rate doubles as a placement-quality metric.
//! * [`stats::ServiceStats`] — per-algorithm job counts, queue depth, and
//!   latency aggregates, kept in per-shard atomics and folded on demand,
//!   serialized as JSON.
//! * [`Service::patch_graph`] — dynamic graphs: applies a
//!   [`gpm_graph::GraphDelta`] to a cached parent server-side, caches the
//!   child under its own fingerprint on the **lineage's home shard**
//!   (placement keys descendants by their root fingerprint, so patch
//!   chains stay with their warm state, and drain/rebalance re-home
//!   chains together).  A later solve of the child warm-starts from the
//!   parent's last matching via [`gpm_core::Solver::resolve_prepared_ctx`]
//!   when both the delta and that matching are on the shard; the
//!   `patched` / `resolved` stats counters report how often.
//! * [`server`]/[`client`] — a JSON-lines protocol over
//!   `std::net::TcpListener` (see [`proto`] for the grammar, including the
//!   `patch_graph` op and the `shards`/`drain`/`rebalance` control ops)
//!   and the matching blocking client; the `gpm-service` binary serves it
//!   (`--shards M`).
//!
//! ```
//! use gpm_core::Algorithm;
//! use gpm_service::{JobSpec, Service};
//! use gpm_graph::gen;
//!
//! let service = Service::builder().workers(4).build();
//! let graph = gen::planted_perfect(200, 800, 7).unwrap();
//! let fingerprint = service.put_graph(graph);
//!
//! // Eight jobs fan out over four warm solvers; the graph is fetched from
//! // the cache by key each time.
//! let handles = service.submit_batch((0..8).map(|_| {
//!     JobSpec::new(gpm_service::GraphSource::Cached(fingerprint), Algorithm::HopcroftKarp)
//! }));
//! for handle in handles {
//!     assert_eq!(handle.wait().unwrap().report.cardinality, 200);
//! }
//! assert_eq!(service.stats().cache.hits, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod control;
pub mod error;
pub mod job;
pub mod placement;
pub mod proto;
pub mod server;
pub mod service;
pub(crate) mod shard;
pub mod stats;

pub use cache::{CacheStats, GraphCache};
pub use client::{Client, SolveOptions};
pub use control::{ControlError, DrainOutcome, RebalanceOutcome, ShardStats};
pub use error::ServiceError;
pub use gpm_core::CancelToken;
pub use gpm_graph::{DeltaLineage, GraphDelta};
pub use job::{GraphSource, JobHandle, JobOutcome, JobSpec};
pub use placement::{decide, decide_requeue, Placement, ShardLoad};
pub use server::{serve, ServerState};
pub use service::{Service, ServiceBuilder};
pub use stats::{AlgorithmStats, LatencyAgg, ServiceStats};
