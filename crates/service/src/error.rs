//! Failure modes of the matching service, layered over [`SolveError`].

use gpm_core::SolveError;
use std::fmt;

/// Everything a job submitted to the service can fail with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The solve itself failed (invalid algorithm parameters, no device for
    /// a GPU algorithm under a CPU-only policy, shape mismatch, …).
    Solve(SolveError),
    /// The job referenced a graph by fingerprint, but the cache holds no
    /// graph with that fingerprint (never uploaded, or evicted).
    UnknownGraph {
        /// The fingerprint the job asked for.
        fingerprint: u64,
    },
    /// The job was submitted after the service began shutting down.
    ShuttingDown,
    /// The solve panicked inside a pool worker.  The worker survives (its
    /// session is rebuilt from scratch), the job reports the panic payload.
    JobPanicked {
        /// The panic message, when it was a string.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
            ServiceError::UnknownGraph { fingerprint } => write!(
                f,
                "no cached graph with fingerprint {fingerprint:#018x} \
                 (never uploaded, or evicted — re-upload and retry)"
            ),
            ServiceError::ShuttingDown => f.write_str("service is shutting down"),
            ServiceError::JobPanicked { message } => {
                write!(f, "solve panicked in the worker: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ServiceError {
    fn from(e: SolveError) -> Self {
        ServiceError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ServiceError::UnknownGraph { fingerprint: 0xabcd };
        assert!(e.to_string().contains("0x000000000000abcd"));
        let e = ServiceError::Solve(SolveError::DeviceRequired { algorithm: "G-PR-Shr".into() });
        assert!(e.to_string().contains("G-PR-Shr"));
        assert!(ServiceError::ShuttingDown.to_string().contains("shutting down"));
    }

    #[test]
    fn solve_errors_convert_and_chain() {
        let e: ServiceError =
            SolveError::InvalidConfig { algorithm: "PR".into(), reason: "NaN".into() }.into();
        assert!(matches!(e, ServiceError::Solve(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServiceError::ShuttingDown).is_none());
    }
}
