//! Failure modes of the matching service, layered over [`SolveError`].

use gpm_core::SolveError;
use std::fmt;
use std::time::Duration;

/// Everything a job submitted to the service can fail with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The solve itself failed (invalid algorithm parameters, no device for
    /// a GPU algorithm under a CPU-only policy, shape mismatch, …).
    Solve(SolveError),
    /// The job referenced a graph by fingerprint, but the cache holds no
    /// graph with that fingerprint (never uploaded, or evicted).
    UnknownGraph {
        /// The fingerprint the job asked for.
        fingerprint: u64,
    },
    /// A `patch_graph` request carried a delta that does not apply to its
    /// parent graph (out-of-bounds endpoint, duplicate insert of an existing
    /// edge, …).  The parent graph is left untouched.
    BadDelta {
        /// Why the delta was rejected.
        reason: String,
    },
    /// The job was submitted after the service began shutting down.
    ShuttingDown,
    /// The solve panicked inside a pool worker.  The worker survives (its
    /// session is rebuilt from scratch), the job reports the panic payload.
    JobPanicked {
        /// The panic message, when it was a string.
        message: String,
    },
    /// The job was rejected at admission because the queue was full
    /// (`ServiceBuilder::max_queue_depth`).  Submission never blocks;
    /// resubmit after roughly `retry_after_hint`.
    Overloaded {
        /// Queue depth observed at rejection time (== the configured cap).
        queue_depth: usize,
        /// A backoff hint derived from the queue's recent drain rate.
        retry_after_hint: Duration,
    },
    /// The job was cancelled through its [`crate::JobHandle`] (or the
    /// protocol's `cancel` request).  Zero rounds/cardinality means it was
    /// cancelled while still queued, without touching a solver.
    Cancelled {
        /// Worklist rounds the engine finished before honouring the signal.
        rounds_completed: u64,
        /// Cardinality of the consistent partial matching at the stop.
        partial_cardinality: usize,
    },
    /// The job's deadline expired — while queued (zero rounds, never touched
    /// a solver) or mid-solve (stopped at the next worklist round).
    DeadlineExceeded {
        /// Worklist rounds the engine finished before the deadline fired.
        rounds_completed: u64,
        /// Cardinality of the consistent partial matching at the stop.
        partial_cardinality: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
            ServiceError::UnknownGraph { fingerprint } => write!(
                f,
                "no cached graph with fingerprint {fingerprint:#018x} \
                 (never uploaded, or evicted — re-upload and retry)"
            ),
            ServiceError::BadDelta { reason } => {
                write!(f, "delta does not apply to its parent graph: {reason}")
            }
            ServiceError::ShuttingDown => f.write_str("service is shutting down"),
            ServiceError::JobPanicked { message } => {
                write!(f, "solve panicked in the worker: {message}")
            }
            ServiceError::Overloaded { queue_depth, retry_after_hint } => write!(
                f,
                "service overloaded: queue is full at {queue_depth} jobs \
                 (retry after ~{} ms)",
                retry_after_hint.as_millis()
            ),
            ServiceError::Cancelled { rounds_completed, partial_cardinality } => write!(
                f,
                "job cancelled after {rounds_completed} rounds \
                 (partial matching of cardinality {partial_cardinality})"
            ),
            ServiceError::DeadlineExceeded { rounds_completed, partial_cardinality } => write!(
                f,
                "job deadline exceeded after {rounds_completed} rounds \
                 (partial matching of cardinality {partial_cardinality})"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ServiceError {
    fn from(e: SolveError) -> Self {
        // Cancellation and deadline expiry are first-class at the service
        // boundary: clients match on ServiceError::Cancelled, never on a
        // nested Solve(SolveError::Cancelled).
        match e {
            SolveError::Cancelled { rounds_completed, partial_cardinality } => {
                ServiceError::Cancelled { rounds_completed, partial_cardinality }
            }
            SolveError::DeadlineExceeded { rounds_completed, partial_cardinality } => {
                ServiceError::DeadlineExceeded { rounds_completed, partial_cardinality }
            }
            other => ServiceError::Solve(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ServiceError::UnknownGraph { fingerprint: 0xabcd };
        assert!(e.to_string().contains("0x000000000000abcd"));
        let e = ServiceError::Solve(SolveError::DeviceRequired { algorithm: "G-PR-Shr".into() });
        assert!(e.to_string().contains("G-PR-Shr"));
        assert!(ServiceError::ShuttingDown.to_string().contains("shutting down"));
        let e = ServiceError::BadDelta { reason: "row 9 out of bounds".into() };
        assert!(e.to_string().contains("row 9 out of bounds"));
        let e = ServiceError::Overloaded {
            queue_depth: 64,
            retry_after_hint: Duration::from_millis(250),
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("250 ms"));
        let e = ServiceError::Cancelled { rounds_completed: 5, partial_cardinality: 40 };
        assert!(e.to_string().contains("cancelled after 5 rounds"));
        let e = ServiceError::DeadlineExceeded { rounds_completed: 0, partial_cardinality: 0 };
        assert!(e.to_string().contains("deadline exceeded"));
    }

    #[test]
    fn solver_stop_errors_surface_as_service_variants_not_nested() {
        let e: ServiceError =
            SolveError::Cancelled { rounds_completed: 3, partial_cardinality: 12 }.into();
        assert_eq!(e, ServiceError::Cancelled { rounds_completed: 3, partial_cardinality: 12 });
        let e: ServiceError =
            SolveError::DeadlineExceeded { rounds_completed: 9, partial_cardinality: 1 }.into();
        assert_eq!(
            e,
            ServiceError::DeadlineExceeded { rounds_completed: 9, partial_cardinality: 1 }
        );
    }

    #[test]
    fn solve_errors_convert_and_chain() {
        let e: ServiceError =
            SolveError::InvalidConfig { algorithm: "PR".into(), reason: "NaN".into() }.into();
        assert!(matches!(e, ServiceError::Solve(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServiceError::ShuttingDown).is_none());
    }
}
