//! Job placement across device shards: fingerprint affinity with
//! least-loaded spill, deterministic and capacity-respecting.
//!
//! The decision itself is a pure function over per-shard load snapshots
//! ([`decide`]), so it is directly property-testable; the
//! `ShardRegistry` (crate-private) wraps it with the lock discipline that makes the
//! decision stick under concurrency (decide from lock-free snapshots, then
//! re-check capacity under the one target shard's queue lock, retrying
//! against a corrected snapshot on a race).
//!
//! ## Placement rules
//!
//! Given a job keyed by its graph's content fingerprint:
//!
//! 1. Only non-draining shards are candidates.  No candidates at all means
//!    the whole service is quiesced ([`Placement::NoActiveShards`]).
//! 2. **Affinity first**: among candidates *with room* whose cache holds
//!    the fingerprint, pick the least-loaded (`queue_depth + running`);
//!    ties break to the lowest shard id.
//! 3. **Spill**: otherwise, the least-loaded candidate with room, same
//!    tie-break.
//! 4. **Reject**: if every candidate is full, reject — reporting the depth
//!    and identity of the *least-loaded* shard, so the `Overloaded` error's
//!    queue depth and retry hint describe where a retry would actually
//!    land, not whichever hot shard happened to be probed.
//!
//! "Room" is `queue_depth < capacity`; running jobs do not count against
//! the cap (they occupy a worker, not a queue slot), exactly as in the
//! single-pool service.

use crate::error::ServiceError;
use crate::job::{GraphSource, JobHandle, JobSlot, JobSpec};
use crate::shard::{lock, DeviceShard, QueuedJob};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// One shard's load snapshot, as seen by [`decide`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard's index.
    pub id: usize,
    /// `true` while the control plane is draining the shard: it finishes
    /// its work but receives no new placements.
    pub draining: bool,
    /// Jobs waiting in the shard's queue.
    pub queue_depth: usize,
    /// Jobs currently executing on the shard's workers.
    pub running: usize,
    /// The shard's admission cap (`None` = unbounded).
    pub capacity: Option<usize>,
    /// `true` iff the shard's cache holds the job's graph.
    pub holds_graph: bool,
}

impl ShardLoad {
    fn load(&self) -> usize {
        self.queue_depth + self.running
    }

    fn has_room(&self) -> bool {
        self.capacity.is_none_or(|cap| self.queue_depth < cap)
    }
}

/// What [`decide`] concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Place the job on this shard.
    Shard(usize),
    /// Every active shard is full; reject with the least-loaded shard's
    /// numbers.
    Reject {
        /// The least-loaded active shard (where a retry would land).
        least_loaded: usize,
        /// Its queue depth at decision time.
        queue_depth: usize,
    },
    /// Every shard is draining: the service is quiesced and accepts no new
    /// jobs.
    NoActiveShards,
}

/// Places one job given per-shard load snapshots.  Pure and deterministic:
/// equal inputs give equal outputs, and ties always break to the lowest
/// shard id (see the module docs for the full rules).
pub fn decide(loads: &[ShardLoad]) -> Placement {
    let candidates = || loads.iter().filter(|l| !l.draining);
    if candidates().count() == 0 {
        return Placement::NoActiveShards;
    }
    // Affinity: least-loaded non-full holder of the graph.
    let affinity =
        candidates().filter(|l| l.holds_graph && l.has_room()).min_by_key(|l| (l.load(), l.id));
    if let Some(shard) = affinity {
        return Placement::Shard(shard.id);
    }
    // Spill: least-loaded non-full candidate.
    let spill = candidates().filter(|l| l.has_room()).min_by_key(|l| (l.load(), l.id));
    if let Some(shard) = spill {
        return Placement::Shard(shard.id);
    }
    // All full: report the least-loaded candidate's depth.
    let least = candidates()
        .min_by_key(|l| (l.queue_depth, l.id))
        .expect("candidates is non-empty: checked above");
    Placement::Reject { least_loaded: least.id, queue_depth: least.queue_depth }
}

/// Picks the destination for a job displaced by a drain: the least-loaded
/// non-draining shard (lowest id on ties), **ignoring capacity** — the job
/// was already admitted and must not be lost or re-rejected.  `None` means
/// every shard is draining and the job stays where it is.
pub fn decide_requeue(loads: &[ShardLoad]) -> Option<usize> {
    loads.iter().filter(|l| !l.draining).min_by_key(|l| (l.load(), l.id)).map(|l| l.id)
}

/// The shard set plus the admission logic over it.  This is the service's
/// spine: submission, the control plane, and the stats fold all go through
/// here, and nothing in it is shared mutable state beyond the shards
/// themselves.
pub(crate) struct ShardRegistry {
    pub(crate) shards: Vec<Arc<DeviceShard>>,
    /// Service-wide shutdown (distinct from per-shard draining).
    shutdown: AtomicBool,
    /// How many shards are draining.  Kept by [`ShardRegistry::mark_draining`]
    /// so the admission fast path can skip the per-shard draining scan in
    /// the common all-active case.
    draining_count: AtomicUsize,
    /// Delta lineage: child fingerprint → the fingerprint of its chain's
    /// *root* (the originally uploaded graph).  Home-shard placement keys on
    /// the root, so a whole patch chain shares one home and `rebalance` /
    /// `drain` move it together — the warm-start state a child needs (its
    /// parent's matching) is always on its own shard.
    lineage: parking_lot::Mutex<HashMap<u64, u64>>,
    /// Entry count of `lineage`, kept in step so the admission fast path
    /// can skip the lock entirely while no graph was ever patched.
    lineage_len: AtomicUsize,
}

impl ShardRegistry {
    pub(crate) fn new(shards: Vec<Arc<DeviceShard>>) -> Self {
        Self {
            shards,
            shutdown: AtomicBool::new(false),
            draining_count: AtomicUsize::new(0),
            lineage: parking_lot::Mutex::new(HashMap::new()),
            lineage_len: AtomicUsize::new(0),
        }
    }

    /// The root fingerprint of `fingerprint`'s patch chain — itself when it
    /// was never produced by `patch_graph`.  Lock-free while no lineage was
    /// ever recorded (the common, patch-free workload).
    pub(crate) fn lineage_root(&self, fingerprint: u64) -> u64 {
        if self.lineage_len.load(Ordering::Relaxed) == 0 {
            return fingerprint;
        }
        self.lineage.lock().get(&fingerprint).copied().unwrap_or(fingerprint)
    }

    /// Records that `child` was patched out of `parent`, collapsing the
    /// chain: `child` maps straight to `parent`'s root, so lookups stay one
    /// hop no matter how long the chain grows.
    pub(crate) fn record_lineage(&self, parent: u64, child: u64) {
        let mut lineage = self.lineage.lock();
        let root = lineage.get(&parent).copied().unwrap_or(parent);
        if lineage.insert(child, root).is_none() {
            self.lineage_len.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Flips one shard to draining, keeping the drained-shard count in
    /// step.  All draining transitions must go through here.  Idempotent.
    pub(crate) fn mark_draining(&self, shard: usize) {
        if !self.shards[shard].draining.swap(true, Ordering::SeqCst) {
            self.draining_count.fetch_add(1, Ordering::SeqCst);
        }
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the service-wide shutdown flag and wakes every worker so it
    /// can observe it.  Idempotent.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            lock(&shard.queue).shutdown = true;
            shard.available.notify_all();
        }
    }

    /// Snapshots every shard's load for a job keyed by `fingerprint`
    /// (`None` when the fingerprint was not computed — no affinity, pure
    /// load balancing).  Lock-free except for the `contains` probe of each
    /// shard's cache.
    pub(crate) fn loads(&self, fingerprint: Option<u64>) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .map(|s| ShardLoad {
                id: s.id,
                draining: s.draining.load(Ordering::Relaxed),
                queue_depth: s.depth.load(Ordering::Relaxed),
                running: s.running.load(Ordering::Relaxed),
                capacity: s.capacity,
                holds_graph: fingerprint.is_some_and(|fp| s.cache.lock().contains(fp)),
            })
            .collect()
    }

    /// Admits one job: decide from snapshots, then confirm under the target
    /// shard's queue lock (capacity and shutdown re-checked where they are
    /// authoritative).  On a lost race the snapshot is corrected and the
    /// decision retried; the retry count is bounded by the shard count, so
    /// admission can degrade to a rejection but never to a livelock.
    pub(crate) fn submit(&self, spec: JobSpec) -> JobHandle {
        if self.is_shutdown() {
            return JobHandle::completed(Err(ServiceError::ShuttingDown));
        }
        // The O(E) fingerprint of inline graphs is computed here, outside
        // every lock, by the submitting thread — and only when placement
        // can use it: on a single-shard service there is no affinity
        // decision to inform, so the hash is deferred to the worker and
        // inline submission stays O(1).
        let fingerprint = match &spec.graph {
            GraphSource::Inline(_) if self.shards.len() == 1 => None,
            GraphSource::Inline(graph) => Some(graph.fingerprint()),
            GraphSource::Cached(fp) => Some(*fp),
        };
        let slot = Arc::new(JobSlot::default());
        let handle = JobHandle { slot: Arc::clone(&slot), cancel: spec.cancel.clone() };
        // Home-first fast path: `put_graph` and `rebalance` keep every
        // cached graph on its home shard, so in the steady state a keyed
        // job needs exactly one cache probe and one queue push — both on
        // its home shard.  Admission stays O(1) in the shard count and
        // touches no shared lock, instead of probing every shard's cache.
        // Any miss (graph elsewhere, home full or draining) falls through
        // to the general decision.
        if let Some(fp) = fingerprint {
            if let Some(id) = self.home_shard(fp) {
                let shard = &self.shards[id];
                if !shard.draining.load(Ordering::Relaxed) && shard.cache.lock().contains(fp) {
                    let mut queue = lock(&shard.queue);
                    if queue.shutdown {
                        return JobHandle::completed(Err(ServiceError::ShuttingDown));
                    }
                    let full = shard.capacity.is_some_and(|cap| queue.jobs.len() >= cap);
                    if !full && !shard.draining.load(Ordering::Relaxed) {
                        shard.push_new(&mut queue, spec, slot, fingerprint);
                        drop(queue);
                        shard.counters.submitted.fetch_add(1, Ordering::Relaxed);
                        shard.available.notify_one();
                        return handle;
                    }
                }
            }
        }
        let mut loads = self.loads(fingerprint);
        // One attempt per shard plus one: each failed attempt marks that
        // shard full in the local snapshot, so the loop strictly shrinks
        // its candidate set.
        for _ in 0..=self.shards.len() {
            match decide(&loads) {
                Placement::NoActiveShards => {
                    return JobHandle::completed(Err(ServiceError::ShuttingDown));
                }
                Placement::Reject { least_loaded, queue_depth } => {
                    let shard = &self.shards[least_loaded];
                    shard.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return JobHandle::completed(Err(ServiceError::Overloaded {
                        queue_depth,
                        retry_after_hint: shard.retry_after_hint(),
                    }));
                }
                Placement::Shard(id) => {
                    let shard = &self.shards[id];
                    let mut queue = lock(&shard.queue);
                    if queue.shutdown {
                        return JobHandle::completed(Err(ServiceError::ShuttingDown));
                    }
                    let full = shard.capacity.is_some_and(|cap| queue.jobs.len() >= cap);
                    let draining = shard.draining.load(Ordering::Relaxed);
                    if full || draining {
                        // Lost a race (a burst filled the shard, or the
                        // control plane started draining it): correct the
                        // snapshot and re-decide.
                        drop(queue);
                        for l in loads.iter_mut().filter(|l| l.id == id) {
                            l.queue_depth = shard.depth.load(Ordering::Relaxed);
                            l.draining = draining;
                        }
                        continue;
                    }
                    shard.push_new(&mut queue, spec, slot, fingerprint);
                    drop(queue);
                    shard.counters.submitted.fetch_add(1, Ordering::Relaxed);
                    shard.available.notify_one();
                    return handle;
                }
            }
        }
        // Every retry lost its race: the service really is saturated.
        let least = loads
            .iter()
            .filter(|l| !l.draining)
            .min_by_key(|l| (l.queue_depth, l.id))
            .map(|l| l.id)
            .unwrap_or(0);
        let shard = &self.shards[least];
        shard.counters.rejected.fetch_add(1, Ordering::Relaxed);
        JobHandle::completed(Err(ServiceError::Overloaded {
            queue_depth: shard.depth.load(Ordering::Relaxed),
            retry_after_hint: shard.retry_after_hint(),
        }))
    }

    /// Requeues a drained job onto the least-loaded active shard, or back
    /// onto `origin` when every shard is draining (its own workers then
    /// finish it).  Returns `true` iff the job left `origin`.
    pub(crate) fn requeue(&self, origin: usize, job: QueuedJob) -> bool {
        let loads: Vec<ShardLoad> = self
            .shards
            .iter()
            .map(|s| ShardLoad {
                id: s.id,
                draining: s.draining.load(Ordering::Relaxed),
                queue_depth: s.depth.load(Ordering::Relaxed),
                running: s.running.load(Ordering::Relaxed),
                capacity: s.capacity,
                holds_graph: false,
            })
            .collect();
        match decide_requeue(&loads) {
            Some(dest) if dest != origin => {
                self.shards[dest].push_requeued(job);
                true
            }
            _ => {
                self.shards[origin].push_requeued(job);
                false
            }
        }
    }

    /// The active (non-draining) shard ids, ascending.
    pub(crate) fn active_shards(&self) -> Vec<usize> {
        self.shards.iter().filter(|s| !s.draining.load(Ordering::Relaxed)).map(|s| s.id).collect()
    }

    /// The home shard of a fingerprint among the currently active shards:
    /// `active[root mod |active|]`, where `root` is the fingerprint's patch
    /// chain root ([`ShardRegistry::lineage_root`]) — so every graph in a
    /// chain homes with its ancestor and warm-start state stays local.
    /// This is the invariant `rebalance` restores and `put_graph`
    /// establishes.  Allocation-free: it sits on the admission fast path.
    pub(crate) fn home_shard(&self, fingerprint: u64) -> Option<usize> {
        let root = self.lineage_root(fingerprint);
        // Common case: nothing draining, the home is a plain modulo.
        if self.draining_count.load(Ordering::Relaxed) == 0 {
            return Some((root % self.shards.len() as u64) as usize);
        }
        let active = || self.shards.iter().filter(|s| !s.draining.load(Ordering::Relaxed));
        let count = active().count() as u64;
        if count == 0 {
            return None;
        }
        active().nth((root % count) as usize).map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: usize) -> ShardLoad {
        ShardLoad {
            id,
            draining: false,
            queue_depth: 0,
            running: 0,
            capacity: None,
            holds_graph: false,
        }
    }

    #[test]
    fn affinity_wins_over_emptier_spill_targets() {
        // Shard 2 holds the graph but is busier; affinity still wins.
        let mut loads = vec![load(0), load(1), load(2)];
        loads[2].holds_graph = true;
        loads[2].queue_depth = 3;
        assert_eq!(decide(&loads), Placement::Shard(2));
    }

    #[test]
    fn full_affinity_holder_spills_to_least_loaded() {
        let mut loads = vec![load(0), load(1), load(2)];
        loads[1].holds_graph = true;
        loads[1].capacity = Some(2);
        loads[1].queue_depth = 2; // full
        loads[0].queue_depth = 1;
        assert_eq!(decide(&loads), Placement::Shard(2));
    }

    #[test]
    fn ties_break_to_the_lowest_id() {
        assert_eq!(decide(&[load(0), load(1), load(2)]), Placement::Shard(0));
        let mut loads = vec![load(0), load(1), load(2)];
        loads[1].holds_graph = true;
        loads[2].holds_graph = true;
        assert_eq!(decide(&loads), Placement::Shard(1));
    }

    #[test]
    fn running_jobs_count_toward_load_but_not_capacity() {
        let mut loads = vec![load(0), load(1)];
        loads[0].running = 5;
        assert_eq!(decide(&loads), Placement::Shard(1));
        // A shard whose queue is empty but whose workers are busy still has
        // room.
        loads[0].capacity = Some(1);
        loads[1].capacity = Some(1);
        loads[1].queue_depth = 1;
        assert_eq!(decide(&loads), Placement::Shard(0));
    }

    #[test]
    fn all_full_rejects_with_the_least_loaded_depth() {
        let mut loads = vec![load(0), load(1)];
        loads[0].capacity = Some(8);
        loads[0].queue_depth = 8;
        loads[1].capacity = Some(2);
        loads[1].queue_depth = 2;
        assert_eq!(decide(&loads), Placement::Reject { least_loaded: 1, queue_depth: 2 });
    }

    #[test]
    fn draining_shards_are_invisible_to_placement() {
        let mut loads = vec![load(0), load(1)];
        loads[0].holds_graph = true;
        loads[0].draining = true;
        assert_eq!(decide(&loads), Placement::Shard(1));
        loads[1].draining = true;
        assert_eq!(decide(&loads), Placement::NoActiveShards);
        // Requeue ignores capacity but not draining.
        loads[1].draining = false;
        loads[1].capacity = Some(1);
        loads[1].queue_depth = 9;
        assert_eq!(decide_requeue(&loads), Some(1));
        loads[1].draining = true;
        assert_eq!(decide_requeue(&loads), None);
    }
}
