//! Jobs: what clients submit ([`JobSpec`]) and what they wait on
//! ([`JobHandle`] → [`JobOutcome`]).

use crate::error::ServiceError;
use gpm_core::{Algorithm, CancelToken, InitHeuristic, SolveReport};
use gpm_graph::BipartiteCsr;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How a job names its graph.
#[derive(Clone, Debug)]
pub enum GraphSource {
    /// The graph travels with the job.  The worker also registers it in the
    /// service's cache, so follow-up jobs can refer to it by fingerprint.
    Inline(Arc<BipartiteCsr>),
    /// The graph is expected in the cache under this
    /// [`BipartiteCsr::fingerprint`]; the job fails with
    /// [`ServiceError::UnknownGraph`] if it is absent.
    Cached(u64),
}

impl From<BipartiteCsr> for GraphSource {
    fn from(graph: BipartiteCsr) -> Self {
        GraphSource::Inline(Arc::new(graph))
    }
}

impl From<Arc<BipartiteCsr>> for GraphSource {
    fn from(graph: Arc<BipartiteCsr>) -> Self {
        GraphSource::Inline(graph)
    }
}

/// One unit of work for the pool: an algorithm, an initialization
/// heuristic, and a graph (by value or by cache key), plus the scheduling
/// attributes the admission-controlled queue acts on.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The algorithm to run (parsed from its round-trippable label on the
    /// wire; see [`Algorithm`]'s `FromStr`).
    pub algorithm: Algorithm,
    /// The initialization heuristic the starting matching is built with.
    pub init: InitHeuristic,
    /// The graph to solve.
    pub graph: GraphSource,
    /// Scheduling priority: higher values dequeue first; equal priorities
    /// keep submission order.  Defaults to 0.
    pub priority: u8,
    /// Deadline relative to submission.  A job whose deadline expires while
    /// queued fails fast with [`ServiceError::DeadlineExceeded`] without
    /// touching a solver; an expiry mid-solve stops the engine at the next
    /// worklist round.
    pub deadline: Option<Duration>,
    /// The job's cancellation token, shared with the [`JobHandle`] the
    /// submit returns (and with anything else holding a clone).  Fresh per
    /// [`JobSpec::new`]; override with [`JobSpec::with_cancel_token`] to
    /// pre-register the token elsewhere (the TCP server does this so a
    /// second connection can cancel by job id).
    pub cancel: CancelToken,
}

impl JobSpec {
    /// A job with the default (cheap greedy) initialization, priority 0,
    /// no deadline, and a fresh cancellation token.
    pub fn new(graph: impl Into<GraphSource>, algorithm: Algorithm) -> Self {
        Self {
            algorithm,
            init: InitHeuristic::default(),
            graph: graph.into(),
            priority: 0,
            deadline: None,
            cancel: CancelToken::new(),
        }
    }

    /// Replaces the initialization heuristic.
    pub fn with_init(mut self, init: InitHeuristic) -> Self {
        self.init = init;
        self
    }

    /// Sets the scheduling priority (higher dequeues first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deadline, measured from the moment the job is submitted.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the cancellation token (e.g. with one registered in a
    /// server-side job registry before submission).
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// What a finished job yields: the solve report plus service-side
/// observations.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The solver's report (matching, cardinality, timings).
    pub report: SolveReport,
    /// The shard the job ran on (0 on a single-shard service).
    pub shard: usize,
    /// Index of the worker within that shard's pool that ran the job.
    pub worker: usize,
    /// `true` iff the graph came out of the cache (a `Cached` source that
    /// hit); inline graphs are `false`.
    pub cache_hit: bool,
    /// Seconds the job sat in the queue before a worker picked it up.
    pub queue_seconds: f64,
    /// Seconds the worker spent resolving the graph, building the initial
    /// matching, and solving.
    pub service_seconds: f64,
}

/// Completion slot shared between a worker and the client holding the
/// [`JobHandle`]: a mutex-guarded `Option` plus a condvar to wake waiters.
#[derive(Debug, Default)]
pub(crate) struct JobSlot {
    result: Mutex<Option<Result<JobOutcome, ServiceError>>>,
    ready: Condvar,
}

impl JobSlot {
    pub(crate) fn complete(&self, result: Result<JobOutcome, ServiceError>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(slot.is_none(), "job completed twice");
        *slot = Some(result);
        self.ready.notify_all();
    }
}

/// A claim on the result of one submitted job.
///
/// `JobHandle` is `Send`, so a client can fan handles out to other threads;
/// [`JobHandle::wait`] consumes the handle and blocks until a pool worker
/// completes the job.  [`JobHandle::cancel`] requests cancellation without
/// consuming the handle — the job then completes with
/// [`ServiceError::Cancelled`] (immediately if still queued, at the next
/// worklist round if already solving).
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) slot: Arc<JobSlot>,
    pub(crate) cancel: CancelToken,
}

impl JobHandle {
    /// A handle that is already complete (used for jobs rejected at submit
    /// time, e.g. after shutdown or on a full queue).
    pub(crate) fn completed(result: Result<JobOutcome, ServiceError>) -> Self {
        let slot = Arc::new(JobSlot::default());
        slot.complete(result);
        JobHandle { slot, cancel: CancelToken::new() }
    }

    /// Requests cancellation of this job.  Sticky and non-blocking: a queued
    /// job fails fast without touching a solver, a running solve stops at
    /// its next worklist round, and a finished job is unaffected.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the job's cancellation token, for cancelling from
    /// elsewhere after [`JobHandle::wait`] has consumed the handle.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks until the job finishes and returns its outcome.
    pub fn wait(self) -> Result<JobOutcome, ServiceError> {
        let mut slot = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.slot.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// `true` iff the job has finished (successfully or not); never blocks.
    pub fn is_done(&self) -> bool {
        self.slot.result.lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::gen;

    #[test]
    fn completed_handles_resolve_immediately() {
        let h = JobHandle::completed(Err(ServiceError::ShuttingDown));
        assert!(h.is_done());
        assert_eq!(h.wait().unwrap_err(), ServiceError::ShuttingDown);
    }

    #[test]
    fn wait_blocks_until_a_worker_completes() {
        let slot = Arc::new(JobSlot::default());
        let handle = JobHandle { slot: Arc::clone(&slot), cancel: CancelToken::new() };
        assert!(!handle.is_done());
        let worker = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            slot.complete(Err(ServiceError::UnknownGraph { fingerprint: 7 }));
        });
        assert_eq!(handle.wait().unwrap_err(), ServiceError::UnknownGraph { fingerprint: 7 });
        worker.join().unwrap();
    }

    #[test]
    fn handle_cancel_trips_the_spec_token() {
        let g = gen::uniform_random(5, 5, 10, 2).unwrap();
        let spec = JobSpec::new(g, Algorithm::HopcroftKarp)
            .with_priority(7)
            .with_deadline(Duration::from_millis(250));
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.deadline, Some(Duration::from_millis(250)));
        let handle = JobHandle { slot: Arc::new(JobSlot::default()), cancel: spec.cancel.clone() };
        assert!(!spec.cancel.is_cancelled());
        handle.cancel();
        assert!(spec.cancel.is_cancelled());
        assert!(handle.cancel_token().is_cancelled());
        // A replacement token swaps the shared flag.
        let other = CancelToken::new();
        let spec = spec.with_cancel_token(other.clone());
        assert!(!spec.cancel.is_cancelled());
        assert!(spec.cancel.same_token(&other));
    }

    #[test]
    fn graph_sources_convert_from_owned_and_shared() {
        let g = gen::uniform_random(5, 5, 10, 1).unwrap();
        let fp = g.fingerprint();
        let spec =
            JobSpec::new(g.clone(), Algorithm::HopcroftKarp).with_init(InitHeuristic::KarpSipser);
        assert_eq!(spec.init, InitHeuristic::KarpSipser);
        match &spec.graph {
            GraphSource::Inline(arc) => assert_eq!(arc.fingerprint(), fp),
            other => panic!("expected inline source, got {other:?}"),
        }
        let shared: GraphSource = Arc::new(g).into();
        assert!(matches!(shared, GraphSource::Inline(_)));
        let cached = JobSpec::new(GraphSource::Cached(fp), Algorithm::PothenFan);
        assert!(matches!(cached.graph, GraphSource::Cached(f) if f == fp));
    }
}
