//! The JSON-lines wire protocol: one JSON object per line, request in,
//! response out.
//!
//! Requests (`op` selects the operation):
//!
//! * `{"op":"put_graph","rows":M,"cols":N,"edges":[[r,c],…]}` — upload a
//!   graph (0-based endpoints) into the cache.  Response carries its
//!   `fingerprint` as a `0x…` hex string (JSON numbers cannot hold all
//!   64-bit values exactly).
//! * `{"op":"solve","algorithm":"G-PR-Shr@adaptive:0.7","init":"cheap",
//!   "fingerprint":"0x…"}` — solve a cached graph; or inline the graph with
//!   `rows`/`cols`/`edges` instead of `fingerprint`.  `init` is optional
//!   (default `cheap`); `"include_matching":true` adds the row-mate array.
//!   Scheduling fields, all optional: `"priority"` (0–255, higher dequeues
//!   first), `"deadline_ms"` (queue + solve budget in milliseconds), and
//!   `"tag"` (a client-chosen label the job can be cancelled by from any
//!   connection).  The response — success or error — carries the
//!   server-assigned `job_id` for correlation.
//! * `{"op":"cancel","job_id":7}` or `{"op":"cancel","tag":"batch-3"}` —
//!   request cancellation of in-flight solves; the response reports how many
//!   jobs were signalled.  Engines stop at worklist-round granularity, so
//!   the cancelled solve fails promptly with a `cancelled` error.
//! * `{"op":"patch_graph","parent":"0x…","insert":[[r,c],…],
//!   "remove":[[r,c],…],"add_rows":n,"add_cols":n,"clear_rows":[r,…],
//!   "clear_cols":[c,…]}` — apply a delta to the cached graph `parent`
//!   without re-uploading it; every delta field is optional.  The response
//!   echoes `parent` and carries the patched child's `fingerprint` — solve
//!   against either.  The child is cached on its chain's home shard
//!   together with the delta, so solving it warm-starts from the parent's
//!   last matching when one is on file.
//! * `{"op":"stats"}` — service counters snapshot (the fold across all
//!   shards).
//! * `{"op":"shards"}` — control plane: one entry per shard with its id,
//!   lifecycle (`draining`), `running` count, and per-shard stats.
//! * `{"op":"drain","shard":2}` — control plane: stop placing jobs on
//!   shard 2, re-home its queued jobs onto active shards, let its in-flight
//!   jobs finish.  Response reports `requeued`/`kept`/`in_flight`.
//! * `{"op":"rebalance"}` — control plane: move every cached graph to its
//!   home shard (`active[fingerprint mod |active|]`); response reports how
//!   many graphs `moved` across how many `active_shards`.
//! * `{"op":"shutdown"}` — acknowledge, then stop the server.
//!
//! Responses always carry `"ok"`: `{"ok":true,…}` or
//! `{"ok":false,"error":"…"}` (plus `job_id` on solve errors).

use gpm_core::{Algorithm, InitHeuristic};
use gpm_graph::{BipartiteCsr, GraphDelta, VertexId};
use serde::Value;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Upload a graph into the cache.
    PutGraph(BipartiteCsr),
    /// Solve a graph (cached or inline).
    Solve {
        /// The algorithm, parsed from its round-trippable label.
        algorithm: Algorithm,
        /// Initialization heuristic (wire default: `cheap`).
        init: InitHeuristic,
        /// Cached fingerprint or inline graph.
        graph: RequestGraph,
        /// Include the row-mate array in the response.
        include_matching: bool,
        /// Scheduling priority (wire default: 0; higher dequeues first).
        priority: u8,
        /// Optional queue + solve budget in milliseconds.
        deadline_ms: Option<u64>,
        /// Optional client-chosen label for cross-connection cancellation.
        tag: Option<String>,
    },
    /// Cancel in-flight solves by server-assigned id or client tag (at
    /// least one is present).
    Cancel {
        /// The `job_id` a solve response reported.
        job_id: Option<u64>,
        /// The `tag` the solve request carried.
        tag: Option<String>,
    },
    /// Apply a delta to a cached graph, caching the patched child.
    PatchGraph {
        /// Fingerprint of the cached graph the delta applies to.
        parent: u64,
        /// The batched mutation.
        delta: GraphDelta,
    },
    /// Snapshot the service counters.
    Stats,
    /// Snapshot every shard (control plane).
    Shards,
    /// Drain one shard (control plane).
    Drain {
        /// The shard id to drain.
        shard: usize,
    },
    /// Move cached graphs to their home shards (control plane).
    Rebalance,
    /// Stop the server after acknowledging.
    Shutdown,
}

/// How a solve request names its graph.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestGraph {
    /// By cache key.
    Fingerprint(u64),
    /// By value.
    Inline(BipartiteCsr),
}

/// Renders a fingerprint the way the protocol ships it: `0x` + 16 hex
/// digits.
pub fn fingerprint_to_hex(fingerprint: u64) -> String {
    format!("{fingerprint:#018x}")
}

/// Parses a `0x…` fingerprint produced by [`fingerprint_to_hex`] (plain
/// hex without the prefix is accepted too).
pub fn fingerprint_from_hex(s: &str) -> Result<u64, String> {
    let digits = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(digits, 16).map_err(|_| format!("bad fingerprint '{s}': expected hex"))
}

/// Parses one request line.  Errors are human-readable strings ready to be
/// wrapped in an error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field 'op'".to_string())?;
    match op {
        "put_graph" => Ok(Request::PutGraph(parse_graph(&value)?)),
        "solve" => {
            let algorithm_label = value
                .get("algorithm")
                .and_then(Value::as_str)
                .ok_or_else(|| "solve: missing string field 'algorithm'".to_string())?;
            let algorithm: Algorithm =
                algorithm_label.parse().map_err(|e| format!("solve: {e}"))?;
            let init = match value.get("init").and_then(Value::as_str) {
                Some(label) => label.parse().map_err(|e| format!("solve: {e}"))?,
                None => InitHeuristic::default(),
            };
            let graph = match value.get("fingerprint").and_then(Value::as_str) {
                Some(hex) => RequestGraph::Fingerprint(fingerprint_from_hex(hex)?),
                None => RequestGraph::Inline(parse_graph(&value)?),
            };
            let include_matching =
                value.get("include_matching").and_then(Value::as_bool).unwrap_or(false);
            let priority = match value.get("priority") {
                None => 0,
                Some(v) => v
                    .as_u64()
                    .and_then(|n| u8::try_from(n).ok())
                    .ok_or_else(|| "solve: 'priority' must be an integer in 0..=255".to_string())?,
            };
            let deadline_ms = match value.get("deadline_ms") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    "solve: 'deadline_ms' must be a non-negative integer".to_string()
                })?),
            };
            let tag = value.get("tag").and_then(Value::as_str).map(str::to_string);
            Ok(Request::Solve {
                algorithm,
                init,
                graph,
                include_matching,
                priority,
                deadline_ms,
                tag,
            })
        }
        "cancel" => {
            let job_id = match value.get("job_id") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    "cancel: 'job_id' must be a non-negative integer".to_string()
                })?),
            };
            let tag = value.get("tag").and_then(Value::as_str).map(str::to_string);
            if job_id.is_none() && tag.is_none() {
                return Err("cancel: provide 'job_id' and/or 'tag'".to_string());
            }
            Ok(Request::Cancel { job_id, tag })
        }
        "patch_graph" => {
            let parent = value
                .get("parent")
                .and_then(Value::as_str)
                .ok_or_else(|| "patch_graph: missing string field 'parent'".to_string())?;
            Ok(Request::PatchGraph {
                parent: fingerprint_from_hex(parent)?,
                delta: parse_delta(&value)?,
            })
        }
        "stats" => Ok(Request::Stats),
        "shards" => Ok(Request::Shards),
        "drain" => {
            let shard = value
                .get("shard")
                .and_then(Value::as_u64)
                .ok_or_else(|| "drain: missing non-negative integer field 'shard'".to_string())?;
            Ok(Request::Drain { shard: shard as usize })
        }
        "rebalance" => Ok(Request::Rebalance),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op '{other}': expected put_graph, patch_graph, solve, cancel, stats, shards, \
             drain, rebalance, or shutdown"
        )),
    }
}

/// Extracts `rows`/`cols`/`edges` fields into a validated graph.
fn parse_graph(value: &Value) -> Result<BipartiteCsr, String> {
    let dim = |field: &str| -> Result<usize, String> {
        value
            .get(field)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("missing non-negative integer field '{field}'"))
    };
    let rows = dim("rows")?;
    let cols = dim("cols")?;
    let edges_value = value
        .get("edges")
        .and_then(Value::as_seq)
        .ok_or_else(|| "missing array field 'edges'".to_string())?;
    let mut edges = Vec::with_capacity(edges_value.len());
    for (i, pair) in edges_value.iter().enumerate() {
        let pair = pair.as_seq().filter(|p| p.len() == 2).ok_or_else(|| {
            format!("edges[{i}]: expected a [row, col] pair of non-negative integers")
        })?;
        let endpoint = |v: &Value, which: &str| -> Result<VertexId, String> {
            v.as_u64()
                .and_then(|n| VertexId::try_from(n).ok())
                .ok_or_else(|| format!("edges[{i}]: bad {which} endpoint"))
        };
        edges.push((endpoint(&pair[0], "row")?, endpoint(&pair[1], "column")?));
    }
    BipartiteCsr::from_edges(rows, cols, &edges).map_err(|e| format!("bad graph: {e}"))
}

/// Extracts the (all-optional) delta fields of a `patch_graph` request:
/// `insert`/`remove` (arrays of `[row, col]` pairs), `add_rows`/`add_cols`
/// (non-negative integers), `clear_rows`/`clear_cols` (arrays of vertex
/// ids).
fn parse_delta(value: &Value) -> Result<GraphDelta, String> {
    let id = |v: &Value, what: &str| -> Result<VertexId, String> {
        v.as_u64()
            .and_then(|n| VertexId::try_from(n).ok())
            .ok_or_else(|| format!("{what}: expected a non-negative vertex id"))
    };
    let pairs = |field: &str| -> Result<Vec<(VertexId, VertexId)>, String> {
        let Some(seq) = value.get(field) else { return Ok(Vec::new()) };
        let seq = seq
            .as_seq()
            .ok_or_else(|| format!("patch_graph: '{field}' must be an array of [row, col]"))?;
        seq.iter()
            .enumerate()
            .map(|(i, pair)| {
                let pair = pair.as_seq().filter(|p| p.len() == 2).ok_or_else(|| {
                    format!("{field}[{i}]: expected a [row, col] pair of non-negative integers")
                })?;
                Ok((
                    id(&pair[0], &format!("{field}[{i}] row"))?,
                    id(&pair[1], &format!("{field}[{i}] column"))?,
                ))
            })
            .collect()
    };
    let ids = |field: &str| -> Result<Vec<VertexId>, String> {
        let Some(seq) = value.get(field) else { return Ok(Vec::new()) };
        let seq = seq
            .as_seq()
            .ok_or_else(|| format!("patch_graph: '{field}' must be an array of vertex ids"))?;
        seq.iter().enumerate().map(|(i, v)| id(v, &format!("{field}[{i}]"))).collect()
    };
    let count = |field: &str| -> Result<usize, String> {
        match value.get(field) {
            None => Ok(0),
            Some(v) => v
                .as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| format!("patch_graph: '{field}' must be a non-negative integer")),
        }
    };
    let mut delta = GraphDelta::new();
    delta.add_rows(count("add_rows")?).add_cols(count("add_cols")?);
    delta.extend_inserts(pairs("insert")?);
    delta.extend_removes(pairs("remove")?);
    for r in ids("clear_rows")? {
        delta.clear_row(r);
    }
    for c in ids("clear_cols")? {
        delta.clear_col(c);
    }
    Ok(delta)
}

/// Serializes a delta the way `patch_graph` requests carry it (used by the
/// client).  Empty lists and zero counts are omitted — every field is
/// optional on the wire.
pub fn delta_to_fields(delta: &GraphDelta) -> Vec<(String, Value)> {
    let pair_seq = |edges: &[(VertexId, VertexId)]| {
        Value::Seq(
            edges
                .iter()
                .map(|&(r, c)| Value::Seq(vec![Value::U64(u64::from(r)), Value::U64(u64::from(c))]))
                .collect(),
        )
    };
    let id_seq =
        |ids: &[VertexId]| Value::Seq(ids.iter().map(|&v| Value::U64(u64::from(v))).collect());
    let mut fields = Vec::new();
    if !delta.inserts().is_empty() {
        fields.push(("insert".to_string(), pair_seq(delta.inserts())));
    }
    if !delta.removes().is_empty() {
        fields.push(("remove".to_string(), pair_seq(delta.removes())));
    }
    if delta.added_rows() > 0 {
        fields.push(("add_rows".to_string(), Value::U64(delta.added_rows() as u64)));
    }
    if delta.added_cols() > 0 {
        fields.push(("add_cols".to_string(), Value::U64(delta.added_cols() as u64)));
    }
    if !delta.cleared_rows().is_empty() {
        fields.push(("clear_rows".to_string(), id_seq(delta.cleared_rows())));
    }
    if !delta.cleared_cols().is_empty() {
        fields.push(("clear_cols".to_string(), id_seq(delta.cleared_cols())));
    }
    fields
}

/// Serializes a graph the way requests inline it (used by the client).
pub fn graph_to_fields(graph: &BipartiteCsr) -> Vec<(String, Value)> {
    vec![
        ("rows".to_string(), Value::U64(graph.num_rows() as u64)),
        ("cols".to_string(), Value::U64(graph.num_cols() as u64)),
        (
            "edges".to_string(),
            Value::Seq(
                graph
                    .edges()
                    .map(|(r, c)| {
                        Value::Seq(vec![Value::U64(u64::from(r)), Value::U64(u64::from(c))])
                    })
                    .collect(),
            ),
        ),
    ]
}

/// Builds a `{"ok":true, …}` response line (no trailing newline).
pub fn ok_response(fields: Vec<(String, Value)>) -> String {
    let mut entries = vec![("ok".to_string(), Value::Bool(true))];
    entries.extend(fields);
    render(Value::Map(entries))
}

/// Builds a `{"ok":false,"error":…}` response line (no trailing newline).
pub fn error_response(message: &str) -> String {
    error_response_with(message, Vec::new())
}

/// Builds a `{"ok":false,"error":…, …}` response line carrying extra
/// fields (e.g. the `job_id` of a failed solve, so a client can correlate
/// the error with what it cancelled).
pub fn error_response_with(message: &str, fields: Vec<(String, Value)>) -> String {
    let mut entries = vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(message.to_string())),
    ];
    entries.extend(fields);
    render(Value::Map(entries))
}

fn render(value: Value) -> String {
    serde_json::to_string(&value).expect("JSON emission cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::gen;

    #[test]
    fn fingerprints_round_trip_through_hex() {
        for fp in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(fingerprint_from_hex(&fingerprint_to_hex(fp)).unwrap(), fp);
        }
        assert_eq!(fingerprint_from_hex("ff").unwrap(), 255);
        assert!(fingerprint_from_hex("xyz").is_err());
    }

    #[test]
    fn parses_put_graph_and_round_trips_inline_graphs() {
        let g = gen::uniform_random(6, 7, 20, 3).unwrap();
        let mut fields = vec![("op".to_string(), Value::Str("put_graph".to_string()))];
        fields.extend(graph_to_fields(&g));
        let line = serde_json::to_string(&Value::Map(fields)).unwrap();
        match parse_request(&line).unwrap() {
            Request::PutGraph(parsed) => assert_eq!(parsed, g),
            other => panic!("expected PutGraph, got {other:?}"),
        }
    }

    #[test]
    fn parses_solve_with_defaults_and_options() {
        let r = parse_request(r#"{"op":"solve","algorithm":"HK","fingerprint":"0xff"}"#).unwrap();
        match r {
            Request::Solve {
                algorithm,
                init,
                graph,
                include_matching,
                priority,
                deadline_ms,
                tag,
            } => {
                assert_eq!(algorithm, Algorithm::HopcroftKarp);
                assert_eq!(init, InitHeuristic::Cheap);
                assert_eq!(graph, RequestGraph::Fingerprint(255));
                assert!(!include_matching);
                assert_eq!(priority, 0);
                assert_eq!(deadline_ms, None);
                assert_eq!(tag, None);
            }
            other => panic!("{other:?}"),
        }
        let r = parse_request(
            r#"{"op":"solve","algorithm":"PFP","init":"karp-sipser","rows":2,"cols":2,
               "edges":[[0,0],[1,1]],"include_matching":true}"#,
        )
        .unwrap();
        match r {
            Request::Solve { init, graph, include_matching, .. } => {
                assert_eq!(init, InitHeuristic::KarpSipser);
                assert!(matches!(graph, RequestGraph::Inline(g) if g.num_edges() == 2));
                assert!(include_matching);
            }
            other => panic!("{other:?}"),
        }
        // Wire labels carry the whole algorithm grammar, including the
        // persistent execution-mode suffix.
        let r = parse_request(
            r#"{"op":"solve","algorithm":"G-PR-Shr@adaptive:0.7+blocked@resident","fingerprint":"0x1"}"#,
        )
        .unwrap();
        match r {
            Request::Solve { algorithm, .. } => {
                assert_eq!(
                    algorithm,
                    Algorithm::gpr_default()
                        .with_worklist(gpm_core::WorklistMode::BlockedQueue)
                        .with_exec(gpm_core::ExecMode::Persistent)
                );
                assert_eq!(algorithm.to_string(), "G-PR-Shr@adaptive:0.7+blocked@resident");
            }
            other => panic!("{other:?}"),
        }
        // CPU algorithms reject the suffix at the wire boundary.
        assert!(parse_request(r#"{"op":"solve","algorithm":"HK@resident","fingerprint":"0x1"}"#)
            .unwrap_err()
            .contains("execution mode"));
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#).unwrap(), Request::Shutdown);
        assert_eq!(parse_request(r#"{"op":"shards"}"#).unwrap(), Request::Shards);
        assert_eq!(parse_request(r#"{"op":"rebalance"}"#).unwrap(), Request::Rebalance);
        assert_eq!(
            parse_request(r#"{"op":"drain","shard":2}"#).unwrap(),
            Request::Drain { shard: 2 }
        );
        assert!(parse_request(r#"{"op":"drain"}"#).unwrap_err().contains("'shard'"));
    }

    #[test]
    fn parses_patch_graph_and_round_trips_deltas() {
        let mut delta = GraphDelta::new();
        delta.insert_edge(3, 4).remove_edge(0, 1).add_rows(2).clear_col(5);
        let mut fields = vec![
            ("op".to_string(), Value::Str("patch_graph".to_string())),
            ("parent".to_string(), Value::Str(fingerprint_to_hex(0xabcd))),
        ];
        fields.extend(delta_to_fields(&delta));
        let line = serde_json::to_string(&Value::Map(fields)).unwrap();
        match parse_request(&line).unwrap() {
            Request::PatchGraph { parent, delta: parsed } => {
                assert_eq!(parent, 0xabcd);
                assert_eq!(parsed, delta);
            }
            other => panic!("expected PatchGraph, got {other:?}"),
        }
        // Every delta field is optional: a bare patch is the empty delta.
        match parse_request(r#"{"op":"patch_graph","parent":"0x1"}"#).unwrap() {
            Request::PatchGraph { parent, delta } => {
                assert_eq!(parent, 1);
                assert!(delta.is_empty());
            }
            other => panic!("{other:?}"),
        }
        for (line, want) in [
            (r#"{"op":"patch_graph"}"#, "'parent'"),
            (r#"{"op":"patch_graph","parent":"xyz"}"#, "bad fingerprint"),
            (r#"{"op":"patch_graph","parent":"0x1","insert":[[0]]}"#, "insert[0]"),
            (r#"{"op":"patch_graph","parent":"0x1","clear_rows":[-1]}"#, "clear_rows[0]"),
            (r#"{"op":"patch_graph","parent":"0x1","add_rows":-2}"#, "add_rows"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(want), "{line} → {err}");
        }
    }

    #[test]
    fn parses_scheduling_fields_and_cancel() {
        let r = parse_request(
            r#"{"op":"solve","algorithm":"HK","fingerprint":"0x1",
               "priority":9,"deadline_ms":2500,"tag":"batch-3"}"#,
        )
        .unwrap();
        match r {
            Request::Solve { priority, deadline_ms, tag, .. } => {
                assert_eq!(priority, 9);
                assert_eq!(deadline_ms, Some(2500));
                assert_eq!(tag.as_deref(), Some("batch-3"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op":"cancel","job_id":7}"#).unwrap(),
            Request::Cancel { job_id: Some(7), tag: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"cancel","tag":"batch-3"}"#).unwrap(),
            Request::Cancel { job_id: None, tag: Some("batch-3".to_string()) }
        );
        for (line, want) in [
            (r#"{"op":"solve","algorithm":"HK","fingerprint":"0x1","priority":256}"#, "0..=255"),
            (
                r#"{"op":"solve","algorithm":"HK","fingerprint":"0x1","deadline_ms":-3}"#,
                "deadline_ms",
            ),
            (r#"{"op":"cancel"}"#, "'job_id' and/or 'tag'"),
            (r#"{"op":"cancel","job_id":"seven"}"#, "job_id"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(want), "{line} → {err}");
        }
    }

    #[test]
    fn error_responses_can_carry_extra_fields() {
        let e = error_response_with(
            "job cancelled after 3 rounds",
            vec![("job_id".to_string(), Value::U64(12))],
        );
        assert!(e.starts_with(r#"{"ok":false"#), "{e}");
        assert!(e.contains(r#""job_id":12"#), "{e}");
    }

    #[test]
    fn rejects_malformed_requests_with_explanations() {
        let cases = [
            ("not json", "bad JSON"),
            (r#"{"no_op":1}"#, "missing string field 'op'"),
            (r#"{"op":"fly"}"#, "unknown op 'fly'"),
            (r#"{"op":"solve","algorithm":"G-XX","fingerprint":"0x1"}"#, "cannot parse"),
            (r#"{"op":"solve","algorithm":"HK","init":"magic","fingerprint":"0x1"}"#, "magic"),
            (r#"{"op":"solve","algorithm":"HK"}"#, "missing non-negative integer field 'rows'"),
            (r#"{"op":"put_graph","rows":2,"cols":2,"edges":[[0]]}"#, "edges[0]"),
            (r#"{"op":"put_graph","rows":2,"cols":2,"edges":[[0,9]]}"#, "bad graph"),
        ];
        for (line, want) in cases {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(want), "{line} → {err}");
        }
    }

    #[test]
    fn responses_have_the_ok_envelope() {
        let ok = ok_response(vec![("op".to_string(), Value::Str("stats".to_string()))]);
        assert!(ok.starts_with(r#"{"ok":true"#), "{ok}");
        let err = error_response("boom \"quoted\"");
        assert!(err.starts_with(r#"{"ok":false"#), "{err}");
        assert!(err.contains(r#"\"quoted\""#), "{err}");
        // Response lines must be single-line (JSON-lines framing).
        assert!(!ok.contains('\n'));
        assert!(!err.contains('\n'));
    }
}
