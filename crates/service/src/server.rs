//! JSON-lines TCP front-end over a [`Service`].
//!
//! Each accepted connection gets its own thread reading request lines and
//! writing response lines; the actual solving happens on the service's
//! worker pool, so N connections share the warm solvers and the graph
//! cache.  A `shutdown` request stops the accept loop and joins every
//! connection.

use crate::job::{GraphSource, JobSpec};
use crate::proto::{
    error_response, fingerprint_to_hex, ok_response, parse_request, Request, RequestGraph,
};
use crate::service::Service;
use gpm_core::SolveReport;
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Serves `service` on `listener` until a client sends
/// `{"op":"shutdown"}`.  Blocks the calling thread; returns once every
/// connection thread has been joined.
pub fn serve(listener: TcpListener, service: Service) -> std::io::Result<()> {
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));
    let local_addr = listener.local_addr()?;
    let mut connections: Vec<(std::thread::JoinHandle<()>, TcpStream)> = Vec::new();
    let mut consecutive_accept_errors = 0u32;
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                consecutive_accept_errors = 0;
                stream
            }
            // A transient accept failure (client RST before accept, fd
            // pressure) must not kill the server and every in-flight
            // connection; only a persistently failing listener is fatal.
            Err(e) => {
                consecutive_accept_errors += 1;
                if consecutive_accept_errors >= 100 {
                    return Err(e);
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Prune finished connections so a long-running server does not
        // accumulate one fd + join handle per connection ever accepted.
        connections.retain(|(handle, _)| !handle.is_finished());
        let conn = stream.try_clone()?;
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // A failed connection only loses that client.
            let _ = handle_connection(stream, &service, &stop, local_addr);
        });
        connections.push((handle, conn));
    }
    for (handle, conn) in connections {
        // Unblock handlers still reading an idle connection: without this a
        // lingering client would keep the server alive past shutdown.
        let _ = conn.shutdown(std::net::Shutdown::Both);
        let _ = handle.join();
    }
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
    local_addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = handle_request_line(service, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if is_shutdown {
            stop.store(true, Ordering::SeqCst);
            // The accept loop is blocked in `accept`; poke it awake so it
            // observes the stop flag and exits.  A wildcard bind address
            // (0.0.0.0 / ::) is not connectable everywhere — aim the poke
            // at the loopback of the same family instead.
            let mut poke = local_addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke.ip() {
                    std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            let _ = TcpStream::connect(poke);
            break;
        }
    }
    Ok(())
}

/// Handles one request line, returning the response line (no newline) and
/// whether the server should stop.  Pure apart from the service calls, so
/// tests drive it without sockets.
pub fn handle_request_line(service: &Service, line: &str) -> (String, bool) {
    match parse_request(line) {
        Err(message) => (error_response(&message), false),
        Ok(Request::PutGraph(graph)) => {
            if !service.cache_enabled() {
                // Without a cache the upload would be silently discarded and
                // every later solve-by-fingerprint would fail; tell the
                // client now instead.
                return (
                    error_response(
                        "graph caching is disabled on this server (cache capacity 0); \
                         ship graphs inline with each solve request",
                    ),
                    false,
                );
            }
            let fingerprint = service.put_graph(graph);
            (
                ok_response(vec![
                    ("op".to_string(), Value::Str("put_graph".to_string())),
                    ("fingerprint".to_string(), Value::Str(fingerprint_to_hex(fingerprint))),
                ]),
                false,
            )
        }
        Ok(Request::Solve { algorithm, init, graph, include_matching }) => {
            let source = match graph {
                RequestGraph::Fingerprint(fp) => GraphSource::Cached(fp),
                RequestGraph::Inline(g) => GraphSource::Inline(Arc::new(g)),
            };
            let spec = JobSpec { algorithm, init, graph: source };
            match service.submit(spec).wait() {
                Err(e) => (error_response(&e.to_string()), false),
                Ok(outcome) => {
                    let mut fields = vec![
                        ("op".to_string(), Value::Str("solve".to_string())),
                        ("report".to_string(), outcome.report.to_value()),
                        ("worker".to_string(), Value::U64(outcome.worker as u64)),
                        ("cache_hit".to_string(), Value::Bool(outcome.cache_hit)),
                        ("queue_seconds".to_string(), Value::F64(outcome.queue_seconds)),
                        ("service_seconds".to_string(), Value::F64(outcome.service_seconds)),
                    ];
                    if include_matching {
                        fields.push(("row_mates".to_string(), row_mates_value(&outcome.report)));
                    }
                    (ok_response(fields), false)
                }
            }
        }
        Ok(Request::Stats) => (
            ok_response(vec![
                ("op".to_string(), Value::Str("stats".to_string())),
                ("stats".to_string(), service.stats().to_value()),
            ]),
            false,
        ),
        Ok(Request::Shutdown) => {
            (ok_response(vec![("op".to_string(), Value::Str("shutdown".to_string()))]), true)
        }
    }
}

/// The matching as a row-mate array: `row_mates[r]` is the matched column
/// of row `r`, or -1 when unmatched.
fn row_mates_value(report: &SolveReport) -> Value {
    Value::Seq(report.matching.row_mates().iter().map(|&m| Value::I64(m)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::fingerprint_from_hex;
    use gpm_graph::gen;
    use gpm_graph::verify::maximum_matching_cardinality;

    fn parsed_ok(response: &str) -> Value {
        let v = serde_json::from_str(response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{response}");
        v
    }

    #[test]
    fn put_solve_stats_flow_without_sockets() {
        let service = Service::builder().workers(2).build();
        let g = gen::planted_perfect(30, 120, 5).unwrap();
        let mut put_line = format!(
            r#"{{"op":"put_graph","rows":{},"cols":{},"edges":["#,
            g.num_rows(),
            g.num_cols()
        );
        let edges: Vec<String> = g.edges().map(|(r, c)| format!("[{r},{c}]")).collect();
        put_line.push_str(&edges.join(","));
        put_line.push_str("]}");
        let (response, stop) = handle_request_line(&service, &put_line);
        assert!(!stop);
        let fp_hex =
            parsed_ok(&response).get("fingerprint").and_then(Value::as_str).unwrap().to_string();
        assert_eq!(fingerprint_from_hex(&fp_hex).unwrap(), g.fingerprint());

        let solve_line = format!(
            r#"{{"op":"solve","algorithm":"HK","fingerprint":"{fp_hex}","include_matching":true}}"#
        );
        let (response, stop) = handle_request_line(&service, &solve_line);
        assert!(!stop);
        let v = parsed_ok(&response);
        let report = v.get("report").unwrap();
        assert_eq!(report.get("cardinality").and_then(Value::as_u64), Some(30));
        assert_eq!(v.get("cache_hit").and_then(Value::as_bool), Some(true));
        let mates = v.get("row_mates").and_then(Value::as_seq).unwrap();
        assert_eq!(mates.len(), 30);
        assert!(mates.iter().all(|m| m.as_i64().is_some()));

        let (response, _) = handle_request_line(&service, r#"{"op":"stats"}"#);
        let v = parsed_ok(&response);
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(1));
        assert_eq!(stats.get("cache").unwrap().get("hits").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn inline_solve_and_error_envelopes() {
        let service = Service::builder().workers(1).build();
        let g = gen::uniform_random(10, 10, 40, 2).unwrap();
        let opt = maximum_matching_cardinality(&g) as u64;
        let edges: Vec<String> = g.edges().map(|(r, c)| format!("[{r},{c}]")).collect();
        let line = format!(
            r#"{{"op":"solve","algorithm":"PFP","rows":10,"cols":10,"edges":[{}]}}"#,
            edges.join(",")
        );
        let (response, _) = handle_request_line(&service, &line);
        let v = parsed_ok(&response);
        assert_eq!(v.get("report").unwrap().get("cardinality").and_then(Value::as_u64), Some(opt));

        // Unknown fingerprint: an error envelope, not a dead server.
        let (response, stop) = handle_request_line(
            &service,
            r#"{"op":"solve","algorithm":"HK","fingerprint":"0x1234"}"#,
        );
        assert!(!stop);
        let v = serde_json::from_str(&response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("error").and_then(Value::as_str).unwrap().contains("0x0000000000001234"));

        // Garbage line: ditto.
        let (response, stop) = handle_request_line(&service, "garbage");
        assert!(!stop);
        assert!(response.starts_with(r#"{"ok":false"#));
    }

    #[test]
    fn put_graph_on_cacheless_server_is_rejected_up_front() {
        let service = Service::builder().workers(1).cache_capacity(0).build();
        let (response, stop) = handle_request_line(
            &service,
            r#"{"op":"put_graph","rows":1,"cols":1,"edges":[[0,0]]}"#,
        );
        assert!(!stop);
        let v = serde_json::from_str(&response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("error").and_then(Value::as_str).unwrap().contains("caching is disabled"));
        // Inline solving still works without a cache.
        let (response, _) = handle_request_line(
            &service,
            r#"{"op":"solve","algorithm":"HK","rows":1,"cols":1,"edges":[[0,0]]}"#,
        );
        let v = parsed_ok(&response);
        assert_eq!(v.get("report").unwrap().get("cardinality").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn shutdown_request_signals_stop() {
        let service = Service::builder().workers(1).build();
        let (response, stop) = handle_request_line(&service, r#"{"op":"shutdown"}"#);
        assert!(stop);
        parsed_ok(&response);
    }
}
