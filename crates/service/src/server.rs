//! JSON-lines TCP front-end over a [`Service`].
//!
//! Each accepted connection gets its own thread reading request lines and
//! writing response lines; the actual solving happens on the service's
//! worker pool, so N connections share the warm solvers and the graph
//! cache.  A shared job registry maps server-assigned job ids and
//! client-chosen tags to cancellation tokens, so a `cancel` request on one
//! connection stops a solve running on behalf of another.  A `shutdown`
//! request stops the accept loop and joins every connection; a fatal accept
//! failure exits through the same teardown, so handler threads are never
//! leaked.

use crate::job::{GraphSource, JobSpec};
use crate::proto::{
    error_response, error_response_with, fingerprint_to_hex, ok_response, parse_request, Request,
    RequestGraph,
};
use crate::service::Service;
use gpm_core::{CancelToken, SolveReport};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the server shares across connection handlers: the solver pool and
/// the id/tag → cancellation-token registry.
#[derive(Debug)]
pub struct ServerState {
    service: Service,
    registry: JobRegistry,
}

impl ServerState {
    /// Wraps a service for serving.
    pub fn new(service: Service) -> Self {
        ServerState { service, registry: JobRegistry::default() }
    }

    /// The wrapped service (e.g. for submitting outside the protocol).
    pub fn service(&self) -> &Service {
        &self.service
    }
}

/// In-flight solves addressable for cancellation: server-assigned id →
/// (token, optional client tag).  Entries live exactly as long as the solve
/// — registered before submit, deregistered after the handle resolves — so
/// cancelling a finished or unknown job is a harmless no-op.
#[derive(Debug, Default)]
struct JobRegistry {
    next_id: AtomicU64,
    active: Mutex<HashMap<u64, RegisteredJob>>,
}

#[derive(Debug)]
struct RegisteredJob {
    token: CancelToken,
    tag: Option<String>,
}

impl JobRegistry {
    fn register(&self, tag: Option<String>) -> (u64, CancelToken) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let token = CancelToken::new();
        let job = RegisteredJob { token: token.clone(), tag };
        self.active.lock().unwrap_or_else(|e| e.into_inner()).insert(id, job);
        (id, token)
    }

    fn deregister(&self, id: u64) {
        self.active.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
    }

    /// Trips every active job matching the id or the tag; returns how many.
    fn cancel(&self, job_id: Option<u64>, tag: Option<&str>) -> u64 {
        let active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        let mut cancelled = 0;
        for (id, job) in active.iter() {
            let by_id = job_id == Some(*id);
            let by_tag = tag.is_some() && job.tag.as_deref() == tag;
            if by_id || by_tag {
                job.token.cancel();
                cancelled += 1;
            }
        }
        cancelled
    }
}

/// What the accept loop needs from a listener; real servers use
/// [`TcpListener`], tests inject failures to exercise the fatal-error path.
trait Accept {
    fn accept_stream(&self) -> std::io::Result<TcpStream>;
    fn local_addr(&self) -> std::io::Result<SocketAddr>;
}

impl Accept for TcpListener {
    fn accept_stream(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(stream, _)| stream)
    }

    fn local_addr(&self) -> std::io::Result<SocketAddr> {
        TcpListener::local_addr(self)
    }
}

/// Serves `service` on `listener` until a client sends
/// `{"op":"shutdown"}`.  Blocks the calling thread; returns once every
/// connection thread has been joined.
pub fn serve(listener: TcpListener, service: Service) -> std::io::Result<()> {
    serve_inner(&listener, Arc::new(ServerState::new(service)), 100, Duration::from_millis(10))
}

/// The accept loop behind [`serve`].  Every exit — client-requested
/// shutdown, a persistently failing listener, a failed stream clone — falls
/// through to the same teardown that unblocks and joins the connection
/// handlers; an early `return` here would leak them blocked on idle
/// clients.
fn serve_inner<A: Accept>(
    listener: &A,
    state: Arc<ServerState>,
    max_accept_errors: u32,
    accept_retry_delay: Duration,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let local_addr = listener.local_addr()?;
    let mut connections: Vec<(std::thread::JoinHandle<()>, TcpStream)> = Vec::new();
    let mut consecutive_accept_errors = 0u32;
    let mut fatal: Option<std::io::Error> = None;
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept_stream() {
            Ok(stream) => {
                consecutive_accept_errors = 0;
                stream
            }
            // A transient accept failure (client RST before accept, fd
            // pressure) must not kill the server and every in-flight
            // connection; only a persistently failing listener is fatal.
            Err(e) => {
                consecutive_accept_errors += 1;
                if consecutive_accept_errors >= max_accept_errors {
                    fatal = Some(e);
                    break;
                }
                std::thread::sleep(accept_retry_delay);
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Prune finished connections so a long-running server does not
        // accumulate one fd + join handle per connection ever accepted.
        connections.retain(|(handle, _)| !handle.is_finished());
        let conn = match stream.try_clone() {
            Ok(conn) => conn,
            Err(e) => {
                fatal = Some(e);
                break;
            }
        };
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // A failed connection only loses that client.
            let _ = handle_connection(stream, &state, &stop, local_addr);
        });
        connections.push((handle, conn));
    }
    for (handle, conn) in connections {
        // Unblock handlers still reading an idle connection: without this a
        // lingering client would keep the server alive past shutdown.
        let _ = conn.shutdown(std::net::Shutdown::Both);
        let _ = handle.join();
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &ServerState,
    stop: &AtomicBool,
    local_addr: SocketAddr,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = handle_request_line(state, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if is_shutdown {
            stop.store(true, Ordering::SeqCst);
            // The accept loop is blocked in `accept`; poke it awake so it
            // observes the stop flag and exits.  A wildcard bind address
            // (0.0.0.0 / ::) is not connectable everywhere — aim the poke
            // at the loopback of the same family instead.
            let mut poke = local_addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke.ip() {
                    std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            let _ = TcpStream::connect(poke);
            break;
        }
    }
    Ok(())
}

/// Handles one request line, returning the response line (no newline) and
/// whether the server should stop.  Pure apart from the service calls, so
/// tests drive it without sockets.
pub fn handle_request_line(state: &ServerState, line: &str) -> (String, bool) {
    let service = &state.service;
    match parse_request(line) {
        Err(message) => (error_response(&message), false),
        Ok(Request::PutGraph(graph)) => {
            if !service.cache_enabled() {
                // Without a cache the upload would be silently discarded and
                // every later solve-by-fingerprint would fail; tell the
                // client now instead.
                return (
                    error_response(
                        "graph caching is disabled on this server (cache capacity 0); \
                         ship graphs inline with each solve request",
                    ),
                    false,
                );
            }
            let fingerprint = service.put_graph(graph);
            (
                ok_response(vec![
                    ("op".to_string(), Value::Str("put_graph".to_string())),
                    ("fingerprint".to_string(), Value::Str(fingerprint_to_hex(fingerprint))),
                ]),
                false,
            )
        }
        Ok(Request::Solve {
            algorithm,
            init,
            graph,
            include_matching,
            priority,
            deadline_ms,
            tag,
        }) => {
            let source = match graph {
                RequestGraph::Fingerprint(fp) => GraphSource::Cached(fp),
                RequestGraph::Inline(g) => GraphSource::Inline(Arc::new(g)),
            };
            // Register before submit so a concurrent `cancel` (by tag, from
            // any connection) can already reach the job while it is queued.
            let (job_id, token) = state.registry.register(tag);
            let mut spec = JobSpec::new(source, algorithm)
                .with_init(init)
                .with_priority(priority)
                .with_cancel_token(token);
            if let Some(ms) = deadline_ms {
                spec = spec.with_deadline(Duration::from_millis(ms));
            }
            let result = service.submit(spec).wait();
            state.registry.deregister(job_id);
            match result {
                Err(e) => (
                    error_response_with(
                        &e.to_string(),
                        vec![("job_id".to_string(), Value::U64(job_id))],
                    ),
                    false,
                ),
                Ok(outcome) => {
                    let mut fields = vec![
                        ("op".to_string(), Value::Str("solve".to_string())),
                        ("job_id".to_string(), Value::U64(job_id)),
                        ("report".to_string(), outcome.report.to_value()),
                        ("shard".to_string(), Value::U64(outcome.shard as u64)),
                        ("worker".to_string(), Value::U64(outcome.worker as u64)),
                        ("cache_hit".to_string(), Value::Bool(outcome.cache_hit)),
                        ("queue_seconds".to_string(), Value::F64(outcome.queue_seconds)),
                        ("service_seconds".to_string(), Value::F64(outcome.service_seconds)),
                    ];
                    if include_matching {
                        fields.push(("row_mates".to_string(), row_mates_value(&outcome.report)));
                    }
                    (ok_response(fields), false)
                }
            }
        }
        Ok(Request::Cancel { job_id, tag }) => {
            let cancelled = state.registry.cancel(job_id, tag.as_deref());
            (
                ok_response(vec![
                    ("op".to_string(), Value::Str("cancel".to_string())),
                    ("cancelled".to_string(), Value::U64(cancelled)),
                ]),
                false,
            )
        }
        Ok(Request::PatchGraph { parent, delta }) => {
            if !service.cache_enabled() {
                return (
                    error_response(
                        "graph caching is disabled on this server (cache capacity 0); \
                         there is no cached parent to patch",
                    ),
                    false,
                );
            }
            match service.patch_graph(parent, &delta) {
                Err(e) => (error_response(&e.to_string()), false),
                Ok(lineage) => (
                    ok_response(vec![
                        ("op".to_string(), Value::Str("patch_graph".to_string())),
                        ("parent".to_string(), Value::Str(fingerprint_to_hex(lineage.parent))),
                        ("fingerprint".to_string(), Value::Str(fingerprint_to_hex(lineage.child))),
                    ]),
                    false,
                ),
            }
        }
        Ok(Request::Stats) => (
            ok_response(vec![
                ("op".to_string(), Value::Str("stats".to_string())),
                ("stats".to_string(), service.stats().to_value()),
            ]),
            false,
        ),
        Ok(Request::Shards) => (
            ok_response(vec![
                ("op".to_string(), Value::Str("shards".to_string())),
                (
                    "shards".to_string(),
                    Value::Seq(service.shard_stats().iter().map(Serialize::to_value).collect()),
                ),
            ]),
            false,
        ),
        Ok(Request::Drain { shard }) => match service.drain_shard(shard) {
            Err(e) => (error_response(&e.to_string()), false),
            Ok(outcome) => (
                ok_response(vec![
                    ("op".to_string(), Value::Str("drain".to_string())),
                    ("shard".to_string(), Value::U64(outcome.shard as u64)),
                    ("requeued".to_string(), Value::U64(outcome.requeued as u64)),
                    ("kept".to_string(), Value::U64(outcome.kept as u64)),
                    ("in_flight".to_string(), Value::U64(outcome.in_flight as u64)),
                ]),
                false,
            ),
        },
        Ok(Request::Rebalance) => {
            let outcome = service.rebalance();
            (
                ok_response(vec![
                    ("op".to_string(), Value::Str("rebalance".to_string())),
                    ("moved".to_string(), Value::U64(outcome.moved as u64)),
                    ("active_shards".to_string(), Value::U64(outcome.active_shards as u64)),
                ]),
                false,
            )
        }
        Ok(Request::Shutdown) => {
            (ok_response(vec![("op".to_string(), Value::Str("shutdown".to_string()))]), true)
        }
    }
}

/// The matching as a row-mate array: `row_mates[r]` is the matched column
/// of row `r`, or -1 when unmatched.
fn row_mates_value(report: &SolveReport) -> Value {
    Value::Seq(report.matching.row_mates().iter().map(|&m| Value::I64(m)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::fingerprint_from_hex;
    use gpm_graph::gen;
    use gpm_graph::verify::maximum_matching_cardinality;

    fn parsed_ok(response: &str) -> Value {
        let v = serde_json::from_str(response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{response}");
        v
    }

    #[test]
    fn put_solve_stats_flow_without_sockets() {
        let state = ServerState::new(Service::builder().workers(2).build());
        let g = gen::planted_perfect(30, 120, 5).unwrap();
        let mut put_line = format!(
            r#"{{"op":"put_graph","rows":{},"cols":{},"edges":["#,
            g.num_rows(),
            g.num_cols()
        );
        let edges: Vec<String> = g.edges().map(|(r, c)| format!("[{r},{c}]")).collect();
        put_line.push_str(&edges.join(","));
        put_line.push_str("]}");
        let (response, stop) = handle_request_line(&state, &put_line);
        assert!(!stop);
        let fp_hex =
            parsed_ok(&response).get("fingerprint").and_then(Value::as_str).unwrap().to_string();
        assert_eq!(fingerprint_from_hex(&fp_hex).unwrap(), g.fingerprint());

        let solve_line = format!(
            r#"{{"op":"solve","algorithm":"HK","fingerprint":"{fp_hex}","include_matching":true}}"#
        );
        let (response, stop) = handle_request_line(&state, &solve_line);
        assert!(!stop);
        let v = parsed_ok(&response);
        let report = v.get("report").unwrap();
        assert_eq!(report.get("cardinality").and_then(Value::as_u64), Some(30));
        assert_eq!(v.get("cache_hit").and_then(Value::as_bool), Some(true));
        assert!(v.get("job_id").and_then(Value::as_u64).is_some());
        let mates = v.get("row_mates").and_then(Value::as_seq).unwrap();
        assert_eq!(mates.len(), 30);
        assert!(mates.iter().all(|m| m.as_i64().is_some()));

        let (response, _) = handle_request_line(&state, r#"{"op":"stats"}"#);
        let v = parsed_ok(&response);
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(1));
        assert_eq!(stats.get("cache").unwrap().get("hits").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn inline_solve_and_error_envelopes() {
        let state = ServerState::new(Service::builder().workers(1).build());
        let g = gen::uniform_random(10, 10, 40, 2).unwrap();
        let opt = maximum_matching_cardinality(&g) as u64;
        let edges: Vec<String> = g.edges().map(|(r, c)| format!("[{r},{c}]")).collect();
        let line = format!(
            r#"{{"op":"solve","algorithm":"PFP","rows":10,"cols":10,"edges":[{}]}}"#,
            edges.join(",")
        );
        let (response, _) = handle_request_line(&state, &line);
        let v = parsed_ok(&response);
        assert_eq!(v.get("report").unwrap().get("cardinality").and_then(Value::as_u64), Some(opt));

        // Unknown fingerprint: an error envelope (still carrying the
        // assigned job id), not a dead server.
        let (response, stop) = handle_request_line(
            &state,
            r#"{"op":"solve","algorithm":"HK","fingerprint":"0x1234"}"#,
        );
        assert!(!stop);
        let v = serde_json::from_str(&response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("error").and_then(Value::as_str).unwrap().contains("0x0000000000001234"));
        assert!(v.get("job_id").and_then(Value::as_u64).is_some());

        // Garbage line: ditto.
        let (response, stop) = handle_request_line(&state, "garbage");
        assert!(!stop);
        assert!(response.starts_with(r#"{"ok":false"#));
    }

    #[test]
    fn put_graph_on_cacheless_server_is_rejected_up_front() {
        let state = ServerState::new(Service::builder().workers(1).cache_capacity(0).build());
        let (response, stop) =
            handle_request_line(&state, r#"{"op":"put_graph","rows":1,"cols":1,"edges":[[0,0]]}"#);
        assert!(!stop);
        let v = serde_json::from_str(&response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("error").and_then(Value::as_str).unwrap().contains("caching is disabled"));
        // Inline solving still works without a cache.
        let (response, _) = handle_request_line(
            &state,
            r#"{"op":"solve","algorithm":"HK","rows":1,"cols":1,"edges":[[0,0]]}"#,
        );
        let v = parsed_ok(&response);
        assert_eq!(v.get("report").unwrap().get("cardinality").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn control_ops_flow_without_sockets() {
        let state = ServerState::new(Service::builder().shards(3).workers(1).build());
        let (response, stop) = handle_request_line(&state, r#"{"op":"shards"}"#);
        assert!(!stop);
        let v = parsed_ok(&response);
        let shards = v.get("shards").and_then(Value::as_seq).unwrap();
        assert_eq!(shards.len(), 3);
        for (i, entry) in shards.iter().enumerate() {
            assert_eq!(entry.get("id").and_then(Value::as_u64), Some(i as u64));
            assert_eq!(entry.get("draining").and_then(Value::as_bool), Some(false));
            assert!(entry.get("stats").unwrap().get("submitted").is_some());
        }

        let (response, _) = handle_request_line(&state, r#"{"op":"drain","shard":1}"#);
        let v = parsed_ok(&response);
        assert_eq!(v.get("shard").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("requeued").and_then(Value::as_u64), Some(0));
        let (response, _) = handle_request_line(&state, r#"{"op":"shards"}"#);
        let v = parsed_ok(&response);
        let shards = v.get("shards").and_then(Value::as_seq).unwrap();
        assert_eq!(shards[1].get("draining").and_then(Value::as_bool), Some(true));

        let (response, _) = handle_request_line(&state, r#"{"op":"drain","shard":9}"#);
        let v = serde_json::from_str(&response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("error").and_then(Value::as_str).unwrap().contains("no shard 9"));

        let (response, _) = handle_request_line(&state, r#"{"op":"rebalance"}"#);
        let v = parsed_ok(&response);
        assert_eq!(v.get("active_shards").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("moved").and_then(Value::as_u64), Some(0));

        // Solve responses name the shard that ran the job.
        let (response, _) = handle_request_line(
            &state,
            r#"{"op":"solve","algorithm":"HK","rows":1,"cols":1,"edges":[[0,0]]}"#,
        );
        let v = parsed_ok(&response);
        let shard = v.get("shard").and_then(Value::as_u64).unwrap();
        assert_ne!(shard, 1, "draining shard must not run new jobs");
    }

    #[test]
    fn shutdown_request_signals_stop() {
        let state = ServerState::new(Service::builder().workers(1).build());
        let (response, stop) = handle_request_line(&state, r#"{"op":"shutdown"}"#);
        assert!(stop);
        parsed_ok(&response);
    }

    #[test]
    fn cancel_by_tag_reaches_a_solve_on_another_thread() {
        let state = Arc::new(ServerState::new(Service::builder().workers(1).build()));
        // A big instance so the solve is still running when the cancel
        // lands; the assertion tolerates the race where it finished first.
        let g = gen::rmat(gen::RmatParams::graph500(12, 8), 3).unwrap();
        let edges: Vec<String> = g.edges().map(|(r, c)| format!("[{r},{c}]")).collect();
        let line = format!(
            r#"{{"op":"solve","algorithm":"HK","tag":"victim","rows":{},"cols":{},"edges":[{}]}}"#,
            g.num_rows(),
            g.num_cols(),
            edges.join(",")
        );
        let solver_state = Arc::clone(&state);
        let solve = std::thread::spawn(move || handle_request_line(&solver_state, &line).0);
        // Second "connection": spin until the tag is registered, then cancel.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let cancelled = loop {
            let (response, stop) = handle_request_line(&state, r#"{"op":"cancel","tag":"victim"}"#);
            assert!(!stop);
            let n = parsed_ok(&response).get("cancelled").and_then(Value::as_u64).unwrap();
            if n > 0 || std::time::Instant::now() > deadline {
                break n;
            }
            std::thread::yield_now();
        };
        let response = solve.join().unwrap();
        let v = serde_json::from_str(&response).unwrap();
        if cancelled > 0 && v.get("ok").and_then(Value::as_bool) == Some(false) {
            assert!(v.get("error").and_then(Value::as_str).unwrap().contains("cancelled"));
            assert!(v.get("job_id").and_then(Value::as_u64).is_some());
        } else {
            // The solve beat the cancel (or finished before registration
            // was observed): it must then be a normal success.
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{response}");
        }
        // Either way the registry is drained and the pool still serves.
        assert_eq!(state.registry.active.lock().unwrap().len(), 0);
        let (response, _) = handle_request_line(
            &state,
            r#"{"op":"solve","algorithm":"HK","rows":1,"cols":1,"edges":[[0,0]]}"#,
        );
        parsed_ok(&response);
    }

    /// Regression: a fatal accept failure used to `return Err` straight out
    /// of the accept loop, leaking every connection handler blocked on an
    /// idle client.  The fatal path must run the same teardown as a normal
    /// shutdown: connections get shut down and joined, so `serve_inner`
    /// returning implies the handler is gone and the client sees EOF.
    #[test]
    fn fatal_accept_error_still_tears_down_live_connections() {
        use std::io::Read;

        struct FailingAcceptor {
            streams: Mutex<Vec<TcpStream>>,
            addr: SocketAddr,
        }

        impl Accept for FailingAcceptor {
            fn accept_stream(&self) -> std::io::Result<TcpStream> {
                match self.streams.lock().unwrap().pop() {
                    Some(stream) => Ok(stream),
                    None => Err(std::io::Error::other("listener broke")),
                }
            }

            fn local_addr(&self) -> std::io::Result<SocketAddr> {
                Ok(self.addr)
            }
        }

        // A real socket pair: the server side is handed out by the acceptor
        // once, the client side sits idle (never writes a request).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let acceptor = FailingAcceptor { streams: Mutex::new(vec![server_side]), addr };

        let state = Arc::new(ServerState::new(Service::builder().workers(1).build()));
        let err = serve_inner(&acceptor, state, 3, Duration::from_millis(1)).unwrap_err();
        assert_eq!(err.to_string(), "listener broke");

        // The handler was joined and its stream shut down, so the idle
        // client reads EOF instead of hanging forever.
        client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 16];
        let n = (&client).read(&mut buf).unwrap();
        assert_eq!(n, 0, "expected EOF from a torn-down connection");
    }
}
