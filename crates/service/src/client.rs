//! A minimal blocking client for the JSON-lines protocol, used by the
//! in-repo example, the TCP integration tests, and the CI smoke run.

use crate::proto::{delta_to_fields, fingerprint_from_hex, fingerprint_to_hex, graph_to_fields};
use gpm_core::{Algorithm, InitHeuristic};
use gpm_graph::{BipartiteCsr, GraphDelta};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client.  One request is in flight at a time (the protocol is
/// strictly request/response per connection); open more clients for
/// concurrency.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running `gpm-service` server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Sends one request object and returns the parsed response map.
    /// Protocol-level failures (`"ok":false`) become `io::Error`s carrying
    /// the server's message.
    pub fn request(&mut self, fields: Vec<(String, Value)>) -> std::io::Result<Value> {
        let line = serde_json::to_string(&Value::Map(fields)).expect("JSON emission cannot fail");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let value = serde_json::from_str(response.trim_end()).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad response: {e}"))
        })?;
        if value.get("ok").and_then(Value::as_bool) == Some(true) {
            Ok(value)
        } else {
            let message = value
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("malformed error response")
                .to_string();
            Err(std::io::Error::other(message))
        }
    }

    /// Uploads `graph` into the server's cache, returning its fingerprint.
    pub fn put_graph(&mut self, graph: &BipartiteCsr) -> std::io::Result<u64> {
        let mut fields = vec![("op".to_string(), Value::Str("put_graph".to_string()))];
        fields.extend(graph_to_fields(graph));
        let response = self.request(fields)?;
        let hex = response.get("fingerprint").and_then(Value::as_str).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no fingerprint")
        })?;
        fingerprint_from_hex(hex)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Applies `delta` to the cached graph `parent` on the server, without
    /// re-uploading it; returns the patched child's fingerprint.  Solves may
    /// then name either fingerprint, and a solve of the child warm-starts
    /// from the parent's last matching when the server has one on file.
    pub fn patch_graph(&mut self, parent: u64, delta: &GraphDelta) -> std::io::Result<u64> {
        let mut fields = vec![
            ("op".to_string(), Value::Str("patch_graph".to_string())),
            ("parent".to_string(), Value::Str(fingerprint_to_hex(parent))),
        ];
        fields.extend(delta_to_fields(delta));
        let response = self.request(fields)?;
        let hex = response.get("fingerprint").and_then(Value::as_str).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no fingerprint")
        })?;
        fingerprint_from_hex(hex)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Solves a previously uploaded graph by fingerprint.  Returns the full
    /// response map (`report`, `worker`, `cache_hit`, `job_id`, …).
    pub fn solve_cached(
        &mut self,
        fingerprint: u64,
        algorithm: Algorithm,
        init: InitHeuristic,
    ) -> std::io::Result<Value> {
        self.solve_cached_with(fingerprint, algorithm, init, &SolveOptions::default())
    }

    /// [`Client::solve_cached`] with explicit scheduling options.
    pub fn solve_cached_with(
        &mut self,
        fingerprint: u64,
        algorithm: Algorithm,
        init: InitHeuristic,
        options: &SolveOptions,
    ) -> std::io::Result<Value> {
        let mut fields = vec![
            ("op".to_string(), Value::Str("solve".to_string())),
            ("algorithm".to_string(), Value::Str(algorithm.to_string())),
            ("init".to_string(), Value::Str(init.to_string())),
            ("fingerprint".to_string(), Value::Str(fingerprint_to_hex(fingerprint))),
        ];
        options.extend_fields(&mut fields);
        self.request(fields)
    }

    /// Solves a graph shipped inline with the request.
    pub fn solve_inline(
        &mut self,
        graph: &BipartiteCsr,
        algorithm: Algorithm,
        init: InitHeuristic,
    ) -> std::io::Result<Value> {
        self.solve_inline_with(graph, algorithm, init, &SolveOptions::default())
    }

    /// [`Client::solve_inline`] with explicit scheduling options.
    pub fn solve_inline_with(
        &mut self,
        graph: &BipartiteCsr,
        algorithm: Algorithm,
        init: InitHeuristic,
        options: &SolveOptions,
    ) -> std::io::Result<Value> {
        let mut fields = vec![
            ("op".to_string(), Value::Str("solve".to_string())),
            ("algorithm".to_string(), Value::Str(algorithm.to_string())),
            ("init".to_string(), Value::Str(init.to_string())),
        ];
        options.extend_fields(&mut fields);
        fields.extend(graph_to_fields(graph));
        self.request(fields)
    }

    /// Cancels the in-flight solve with this server-assigned job id.
    /// Returns how many jobs were signalled (0 when already finished).
    pub fn cancel_job(&mut self, job_id: u64) -> std::io::Result<u64> {
        let response = self.request(vec![
            ("op".to_string(), Value::Str("cancel".to_string())),
            ("job_id".to_string(), Value::U64(job_id)),
        ])?;
        cancelled_count(&response)
    }

    /// Cancels every in-flight solve carrying this tag (submitted from any
    /// connection).  Returns how many jobs were signalled.
    pub fn cancel_tag(&mut self, tag: &str) -> std::io::Result<u64> {
        let response = self.request(vec![
            ("op".to_string(), Value::Str("cancel".to_string())),
            ("tag".to_string(), Value::Str(tag.to_string())),
        ])?;
        cancelled_count(&response)
    }

    /// Fetches the service stats snapshot (the `stats` sub-object).
    pub fn stats(&mut self) -> std::io::Result<Value> {
        let response = self.request(vec![("op".to_string(), Value::Str("stats".to_string()))])?;
        response.get("stats").cloned().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no stats in response")
        })
    }

    /// Fetches the per-shard control-plane snapshots (the `shards` array:
    /// one map per shard with `id`, `draining`, `running`, and `stats`).
    pub fn shard_stats(&mut self) -> std::io::Result<Vec<Value>> {
        let response = self.request(vec![("op".to_string(), Value::Str("shards".to_string()))])?;
        response.get("shards").and_then(Value::as_seq).map(<[Value]>::to_vec).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no shards in response")
        })
    }

    /// Drains one shard: placement stops, queued jobs are re-homed,
    /// in-flight jobs finish in place.  Returns the response map
    /// (`requeued`, `kept`, `in_flight`).
    pub fn drain(&mut self, shard: usize) -> std::io::Result<Value> {
        self.request(vec![
            ("op".to_string(), Value::Str("drain".to_string())),
            ("shard".to_string(), Value::U64(shard as u64)),
        ])
    }

    /// Moves every cached graph to its home shard; returns the response map
    /// (`moved`, `active_shards`).
    pub fn rebalance(&mut self) -> std::io::Result<Value> {
        self.request(vec![("op".to_string(), Value::Str("rebalance".to_string()))])
    }

    /// Asks the server to stop after acknowledging.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.request(vec![("op".to_string(), Value::Str("shutdown".to_string()))]).map(|_| ())
    }
}

/// Optional scheduling attributes of a solve request: priority, deadline,
/// and a tag for cross-connection cancellation.  The default is the
/// protocol default (priority 0, no deadline, no tag).
#[derive(Clone, Debug, Default)]
pub struct SolveOptions {
    /// Scheduling priority (0–255; higher dequeues first).
    pub priority: u8,
    /// Queue + solve budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Client-chosen label; `cancel` by tag reaches this solve from any
    /// connection.
    pub tag: Option<String>,
}

impl SolveOptions {
    fn extend_fields(&self, fields: &mut Vec<(String, Value)>) {
        if self.priority != 0 {
            fields.push(("priority".to_string(), Value::U64(u64::from(self.priority))));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::U64(ms)));
        }
        if let Some(tag) = &self.tag {
            fields.push(("tag".to_string(), Value::Str(tag.clone())));
        }
    }
}

fn cancelled_count(response: &Value) -> std::io::Result<u64> {
    response.get("cancelled").and_then(Value::as_u64).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no cancelled count in response")
    })
}
