//! Persistent-execution smoke test against a running `gpm-service` server
//! (CI runs this with a timeout guard):
//!
//! 1. Uploads a launch-bound road-network-style instance and solves it
//!    twice by fingerprint — once launch-per-round, once with the
//!    `@resident` persistent megakernel loop — and asserts both reach the
//!    same cardinality: the whole label grammar, execution-mode suffix
//!    included, works over the wire.
//! 2. Submits a deliberately huge, tagged `@resident` solve on a second
//!    connection and cancels it by tag mid-solve.  The persistent loop
//!    polls the stop signal at its software global barrier, so the cancel
//!    must land within one device round — not after the full solve.
//!
//! ```text
//! cargo run --release -p gpm-service &               # listens on 127.0.0.1:7878
//! cargo run --release -p gpm-service --example resident_smoke
//! ```
//!
//! Pass a different address as the first argument.  Set `KEEP_SERVER=1` to
//! skip the final shutdown request.

use gpm_core::{Algorithm, ExecMode, InitHeuristic, WorklistMode};
use gpm_graph::gen;
use gpm_service::{Client, SolveOptions};
use serde::Value;
use std::time::{Duration, Instant};

fn cardinality(response: &Value) -> u64 {
    response
        .get("report")
        .and_then(|r| r.get("cardinality"))
        .and_then(Value::as_u64)
        .expect("solve response carries report.cardinality")
}

fn main() -> std::io::Result<()> {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut client = Client::connect(&addr)?;
    println!("connected to gpm-service at {addr}");

    // Part 1: the persistent loop agrees with launch-per-round over the
    // wire.  A long-diameter mesh-like instance is the launch-bound regime
    // the resident mode exists for.
    let graph = gen::road_network(220, 220, 0.05, 11).expect("generate graph");
    let fingerprint = client.put_graph(&graph)?;
    let launch = Algorithm::gpr_default().with_worklist(WorklistMode::BlockedQueue);
    let resident = launch.with_exec(ExecMode::Persistent);
    println!(
        "solving {}x{} road grid with '{launch}' and '{resident}' …",
        graph.num_rows(),
        graph.num_cols()
    );
    let launch_response = client.solve_cached(fingerprint, launch, InitHeuristic::Cheap)?;
    let resident_response = client.solve_cached(fingerprint, resident, InitHeuristic::Cheap)?;
    let (launch_card, resident_card) =
        (cardinality(&launch_response), cardinality(&resident_response));
    assert_eq!(
        launch_card, resident_card,
        "persistent and launch-per-round must agree over the wire"
    );
    // The report echoes the paper's family label; the full spec (worklist
    // and exec suffixes included) lives in the request grammar.
    let echoed = resident_response
        .get("report")
        .and_then(|r| r.get("algorithm"))
        .and_then(Value::as_str)
        .map(str::to_string);
    assert_eq!(echoed.as_deref(), Some("G-PR-Shr"), "unexpected report label");
    println!("both execution modes matched {launch_card} pairs");

    // Part 2: cancellation stays round-granular under the megakernel.  One
    // entry launch keeps the device threads resident for the whole solve,
    // so only the stop poll at the global barrier can honour this cancel.
    let huge = gen::rmat(gen::RmatParams::graph500(17, 16), 7).expect("generate graph");
    println!(
        "submitting {}x{} RMAT '@resident' solve ({} edges) tagged 'resident-victim' …",
        huge.num_rows(),
        huge.num_cols(),
        huge.num_edges()
    );
    let solve_addr = addr.clone();
    let started = Instant::now();
    let solve = std::thread::spawn(move || -> std::io::Result<std::io::Error> {
        let mut a = Client::connect(&solve_addr)?;
        let options =
            SolveOptions { tag: Some("resident-victim".to_string()), ..Default::default() };
        let victim = Algorithm::gpr_default().with_exec(ExecMode::Persistent);
        match a.solve_inline_with(&huge, victim, InitHeuristic::Empty, &options) {
            Ok(_) => Err(std::io::Error::other("solve finished before the cancel landed")),
            Err(e) => Ok(e),
        }
    });

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let cancelled = client.cancel_tag("resident-victim")?;
        if cancelled > 0 {
            println!("cancel reached {cancelled} job(s) after {:?}", started.elapsed());
            break;
        }
        if Instant::now() > deadline {
            return Err(std::io::Error::other("cancel never found the tagged job"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let err = solve.join().expect("solve thread panicked")?;
    let message = err.to_string();
    assert!(message.contains("cancelled"), "expected a cancelled error, got: {message}");
    println!("resident solve failed as expected: {message}");
    println!("cancelled end-to-end in {:?}", started.elapsed());

    if std::env::var("KEEP_SERVER").is_err() {
        client.shutdown()?;
        println!("server shut down");
    }
    Ok(())
}
