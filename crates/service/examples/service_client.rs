//! End-to-end client for a running `gpm-service` server.
//!
//! Start the server, run this against it, and read the printed stats:
//!
//! ```text
//! cargo run --release -p gpm-service &               # listens on 127.0.0.1:7878
//! cargo run --release -p gpm-service --example service_client
//! ```
//!
//! Pass a different address as the first argument (`service_client
//! 127.0.0.1:7979`).  Set `KEEP_SERVER=1` to skip the final shutdown
//! request.  The example uploads a graph once, then solves it repeatedly by
//! fingerprint with three algorithms — the second and later solves are
//! cache hits, visible in the stats it prints before exiting.

use gpm_core::{Algorithm, InitHeuristic};
use gpm_graph::gen;
use gpm_service::Client;
use serde::Value;

fn main() -> std::io::Result<()> {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut client = Client::connect(&addr)?;
    println!("connected to gpm-service at {addr}");

    // One planted-perfect instance: the maximum matching is 300 by design.
    let graph = gen::planted_perfect(300, 1_200, 7).expect("generate graph");
    let fingerprint = client.put_graph(&graph)?;
    println!(
        "uploaded {}x{} graph ({} edges), fingerprint {fingerprint:#018x}",
        graph.num_rows(),
        graph.num_cols(),
        graph.num_edges()
    );

    let algorithms = [Algorithm::gpr_default(), Algorithm::HopcroftKarp, Algorithm::PothenFan];
    for algorithm in algorithms {
        let response = client.solve_cached(fingerprint, algorithm, InitHeuristic::Cheap)?;
        let report = response.get("report").expect("report");
        println!(
            "{:<24} cardinality {:>4}  cache_hit {}  worker {}  {:.1} ms in service",
            algorithm.to_string(),
            report.get("cardinality").and_then(Value::as_u64).unwrap_or(0),
            response.get("cache_hit").and_then(Value::as_bool).unwrap_or(false),
            response.get("worker").and_then(Value::as_u64).unwrap_or(0),
            response.get("service_seconds").and_then(Value::as_f64).unwrap_or(0.0) * 1e3,
        );
        let cardinality = report.get("cardinality").and_then(Value::as_u64);
        assert_eq!(cardinality, Some(300), "{algorithm} must find the planted matching");
    }

    // An inline solve (graph shipped with the request) for comparison.
    let small = gen::uniform_random(50, 50, 260, 4).expect("generate");
    let response = client.solve_inline(&small, Algorithm::Hkdw, InitHeuristic::KarpSipser)?;
    println!(
        "inline HKDW on 50x50        cardinality {:>4}",
        response.get("report").unwrap().get("cardinality").and_then(Value::as_u64).unwrap_or(0)
    );

    let stats = client.stats()?;
    let cache = stats.get("cache").expect("cache stats");
    println!(
        "server stats: {} completed, {} failed, cache {}/{} hits/misses, peak queue {}",
        stats.get("completed").and_then(Value::as_u64).unwrap_or(0),
        stats.get("failed").and_then(Value::as_u64).unwrap_or(0),
        cache.get("hits").and_then(Value::as_u64).unwrap_or(0),
        cache.get("misses").and_then(Value::as_u64).unwrap_or(0),
        stats.get("peak_queue_depth").and_then(Value::as_u64).unwrap_or(0),
    );
    assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(3), "cached solves must hit");

    if std::env::var_os("KEEP_SERVER").is_none() {
        client.shutdown()?;
        println!("sent shutdown; server is stopping");
    }
    Ok(())
}
