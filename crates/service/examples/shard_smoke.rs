//! End-to-end smoke test of the sharded control plane, driven over the
//! wire against a running multi-shard `gpm-service` server:
//!
//! ```text
//! cargo run --release -p gpm-service -- --shards 4 &
//! cargo run --release -p gpm-service --example shard_smoke
//! ```
//!
//! Pass a different address as the first argument.  The example uploads a
//! corpus of graphs, solves each by fingerprint (the responses say which
//! shard ran them), checks the per-shard counters fold to the aggregate
//! stats, drains one shard that did work, proves new jobs homed there now
//! land elsewhere, rebalances, and shuts the server down (set
//! `KEEP_SERVER=1` to leave it running).  Exits non-zero on any broken
//! invariant, so CI can gate on it.

use gpm_core::{Algorithm, InitHeuristic};
use gpm_graph::gen;
use gpm_service::Client;
use serde::Value;
use std::collections::BTreeMap;

fn shard_of(response: &Value) -> u64 {
    response.get("shard").and_then(Value::as_u64).expect("solve response names its shard")
}

fn main() -> std::io::Result<()> {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut client = Client::connect(&addr)?;
    println!("connected to gpm-service at {addr}");

    let shard_count = client.shard_stats()?.len();
    println!("server runs {shard_count} shard(s)");
    assert!(shard_count >= 2, "shard smoke needs a multi-shard server (got {shard_count})");

    // A corpus wide enough that fingerprint-affinity placement must spread
    // it over several shards.
    let corpus: Vec<_> = (0..8)
        .map(|i| gen::planted_perfect(40 + 4 * i, 320, 11 + i as u64).expect("generate graph"))
        .collect();
    let fingerprints: Vec<u64> =
        corpus.iter().map(|g| client.put_graph(g)).collect::<std::io::Result<_>>()?;

    // Two passes over the corpus by fingerprint: the second pass must ride
    // the caches, and each fingerprint must stick to one shard.
    let mut home: BTreeMap<u64, u64> = BTreeMap::new();
    let mut jobs = 0u64;
    for pass in 0..2 {
        for (graph, &fp) in corpus.iter().zip(&fingerprints) {
            let response =
                client.solve_cached(fp, Algorithm::HopcroftKarp, InitHeuristic::Cheap)?;
            let cardinality =
                response.get("report").and_then(|r| r.get("cardinality")).and_then(Value::as_u64);
            assert_eq!(
                cardinality,
                Some(graph.num_rows() as u64),
                "planted matching on fingerprint {fp:#x}"
            );
            let shard = shard_of(&response);
            let previous = home.insert(fp, shard);
            if pass > 0 {
                assert_eq!(previous, Some(shard), "fingerprint {fp:#x} hopped shards");
                assert_eq!(
                    response.get("cache_hit").and_then(Value::as_bool),
                    Some(true),
                    "second solve of {fp:#x} must hit its home shard's cache"
                );
            }
            jobs += 1;
        }
    }
    let used: Vec<u64> = {
        let mut shards: Vec<u64> = home.values().copied().collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    };
    println!("{jobs} jobs spread over shards {used:?}");
    assert!(used.len() >= 2, "affinity placement should use several shards, used only {used:?}");

    // Per-shard counters must fold to the aggregate stats.
    let stats = client.stats()?;
    let stats = stats.get("stats").unwrap_or(&stats).clone();
    let total_completed = stats.get("completed").and_then(Value::as_u64).expect("completed");
    let shards = client.shard_stats()?;
    assert_eq!(shards.len(), shard_count);
    let mut folded = 0u64;
    for entry in &shards {
        let id = entry.get("id").and_then(Value::as_u64).expect("shard id");
        let per_shard = entry.get("stats").expect("per-shard stats");
        let completed = per_shard.get("completed").and_then(Value::as_u64).unwrap_or(0);
        let submitted = per_shard.get("submitted").and_then(Value::as_u64).unwrap_or(0);
        println!("shard {id}: submitted {submitted}, completed {completed}");
        folded += completed;
    }
    assert_eq!(folded, total_completed, "per-shard completed must fold to the aggregate");
    assert!(total_completed >= jobs, "all {jobs} burst jobs must be accounted for");

    // Drain a shard that did work; its fingerprints must re-home elsewhere.
    let drained = used[0];
    let response = client.drain(drained as usize)?;
    assert_eq!(response.get("kept").and_then(Value::as_u64), Some(0), "idle drain keeps nothing");
    println!(
        "drained shard {drained} (requeued {}, in flight {})",
        response.get("requeued").and_then(Value::as_u64).unwrap_or(0),
        response.get("in_flight").and_then(Value::as_u64).unwrap_or(0),
    );
    let shards = client.shard_stats()?;
    let entry = &shards[drained as usize];
    assert_eq!(entry.get("draining").and_then(Value::as_bool), Some(true));
    for (&fp, &shard) in &home {
        if shard != drained {
            continue;
        }
        let response = client.solve_cached(fp, Algorithm::HopcroftKarp, InitHeuristic::Cheap)?;
        let landed = shard_of(&response);
        assert_ne!(landed, drained, "fingerprint {fp:#x} still placed on the drained shard");
        println!("fingerprint {fp:#018x} re-homed: shard {shard} -> {landed}");
    }

    let response = client.rebalance()?;
    let active = response.get("active_shards").and_then(Value::as_u64).expect("active_shards");
    assert_eq!(active, shard_count as u64 - 1, "one shard drained, the rest active");
    println!(
        "rebalance: {} graph(s) moved, {active} shard(s) active",
        response.get("moved").and_then(Value::as_u64).unwrap_or(0),
    );

    if std::env::var_os("KEEP_SERVER").is_none() {
        client.shutdown()?;
        println!("sent shutdown; server is stopping");
    }
    println!("shard smoke passed");
    Ok(())
}
