//! End-to-end smoke test of the dynamic-graph path, driven over the wire
//! against a running multi-shard `gpm-service` server:
//!
//! ```text
//! cargo run --release -p gpm-service -- --shards 2 &
//! cargo run --release -p gpm-service --example delta_smoke
//! ```
//!
//! Pass a different address as the first argument.  The example uploads one
//! root graph and then streams 100 `patch_graph` deltas at it — edge
//! removals with an occasional column addition — solving every child by its
//! new fingerprint as it goes.  It asserts that every child of the lineage
//! is placed on the root's home shard (chain affinity), that each solve hits
//! the cache the patch populated, that the answers match a client-side
//! oracle, and that the `patched`/`resolved` counters show the shard really
//! warm-started the solves instead of starting over.  Exits non-zero on any
//! broken invariant, so CI can gate on it (set `KEEP_SERVER=1` to leave the
//! server running).

use gpm_core::{Algorithm, InitHeuristic};
use gpm_graph::verify::maximum_matching_cardinality;
use gpm_graph::{gen, GraphDelta};
use gpm_service::Client;
use serde::Value;

const PATCHES: usize = 100;

fn main() -> std::io::Result<()> {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut client = Client::connect(&addr)?;
    println!("connected to gpm-service at {addr}");
    let shard_count = client.shard_stats()?.len();
    assert!(shard_count >= 2, "delta smoke needs a multi-shard server (got {shard_count})");

    // The root graph, mirrored client-side so each delta can name edges that
    // exist and the solves can be checked against a local oracle.
    let mut mirror = gen::planted_perfect(60, 240, 7).expect("generate graph");
    let root = client.put_graph(&mirror)?;
    let response = client.solve_cached(root, Algorithm::gpr_default(), InitHeuristic::Cheap)?;
    let home = response.get("shard").and_then(Value::as_u64).expect("solve names its shard");
    println!("root {root:#018x} solved on its home shard {home}");

    let mut parent = root;
    for step in 0..PATCHES {
        // Mostly single-edge removals, with a fresh column (plus an edge
        // reaching it) every tenth step so the shape changes too.
        let mut delta = GraphDelta::new();
        let (r, c) = mirror
            .edges()
            .nth(step * 7 % mirror.num_edges())
            .expect("the mirror never runs out of edges");
        delta.remove_edge(r, c);
        if step % 10 == 9 {
            delta.add_cols(1);
            delta.insert_edge(r, mirror.num_cols() as u32);
        }

        let child = client.patch_graph(parent, &delta)?;
        mirror = mirror.apply_delta(&delta).expect("mirror accepts its own delta");
        assert_eq!(child, mirror.fingerprint(), "server and mirror disagree after step {step}");

        let response =
            client.solve_cached(child, Algorithm::gpr_default(), InitHeuristic::Cheap)?;
        let cardinality =
            response.get("report").and_then(|r| r.get("cardinality")).and_then(Value::as_u64);
        assert_eq!(
            cardinality,
            Some(maximum_matching_cardinality(&mirror) as u64),
            "wrong cardinality after step {step}"
        );
        assert_eq!(
            response.get("cache_hit").and_then(Value::as_bool),
            Some(true),
            "child of step {step} must be served from the cache its patch populated"
        );
        let landed = response.get("shard").and_then(Value::as_u64).expect("shard");
        assert_eq!(landed, home, "step {step} left the lineage's home shard {home}");
        parent = child;
    }
    println!("{PATCHES} patches solved, all on shard {home}");

    let stats = client.stats()?;
    let patched = stats.get("patched").and_then(Value::as_u64).unwrap_or(0);
    let resolved = stats.get("resolved").and_then(Value::as_u64).unwrap_or(0);
    println!("stats: patched {patched}, resolved {resolved}");
    assert_eq!(patched, PATCHES as u64, "every patch_graph must be counted");
    // Each child's solve has its delta and its parent's matching on the
    // shard, so nearly every solve warm-starts; the slack allows for
    // warm-store eviction under small cache capacities.
    assert!(resolved as usize >= PATCHES * 9 / 10, "only {resolved}/{PATCHES} solves warm-started");

    if std::env::var_os("KEEP_SERVER").is_none() {
        client.shutdown()?;
        println!("sent shutdown; server is stopping");
    }
    println!("delta smoke passed");
    Ok(())
}
