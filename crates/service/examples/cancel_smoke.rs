//! Cross-connection cancellation smoke test against a running
//! `gpm-service` server (CI runs this with a timeout guard):
//!
//! 1. Connection A submits a deliberately huge, low-priority, tagged solve
//!    (a Table-I-scale RMAT instance from an empty initial matching).
//! 2. Connection B cancels it by tag, retrying until the registry has the
//!    job (the submit races the cancel) or a generous deadline passes.
//! 3. The solve must come back as a prompt `cancelled` error — engines
//!    honour the token at worklist-round granularity, so a cancel lands
//!    within one round, not after the full solve.
//!
//! ```text
//! cargo run --release -p gpm-service &               # listens on 127.0.0.1:7878
//! cargo run --release -p gpm-service --example cancel_smoke
//! ```
//!
//! Pass a different address as the first argument.  Set `KEEP_SERVER=1` to
//! skip the final shutdown request.

use gpm_core::{Algorithm, InitHeuristic};
use gpm_graph::gen;
use gpm_service::{Client, SolveOptions};
use std::time::{Duration, Instant};

fn main() -> std::io::Result<()> {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());

    // Connection A: a big tagged solve, run on its own thread because the
    // protocol is blocking request/response per connection.
    let graph = gen::rmat(gen::RmatParams::graph500(17, 16), 7).expect("generate graph");
    println!(
        "submitting {}x{} RMAT solve ({} edges) tagged 'smoke-victim' …",
        graph.num_rows(),
        graph.num_cols(),
        graph.num_edges()
    );
    let solve_addr = addr.clone();
    let started = Instant::now();
    let solve = std::thread::spawn(move || -> std::io::Result<std::io::Error> {
        let mut a = Client::connect(&solve_addr)?;
        let options = SolveOptions { tag: Some("smoke-victim".to_string()), ..Default::default() };
        // G-PR is a device engine: it polls the cancel token at worklist-round
        // granularity, unlike the CPU algorithms which only fail fast when the
        // token is already tripped before they start.
        match a.solve_inline_with(&graph, Algorithm::gpr_default(), InitHeuristic::Empty, &options)
        {
            // The whole point is that this must NOT complete normally.
            Ok(_) => Err(std::io::Error::other("solve finished before the cancel landed")),
            Err(e) => Ok(e),
        }
    });

    // Connection B: cancel by tag, retrying until the solve is registered.
    let mut b = Client::connect(&addr)?;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let cancelled = b.cancel_tag("smoke-victim")?;
        if cancelled > 0 {
            println!("cancel reached {cancelled} job(s) after {:?}", started.elapsed());
            break;
        }
        if Instant::now() > deadline {
            return Err(std::io::Error::other("cancel never found the tagged job"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let err = solve.join().expect("solve thread panicked")?;
    let message = err.to_string();
    assert!(message.contains("cancelled"), "expected a cancelled error, got: {message}");
    println!("solve failed as expected: {message}");
    println!("cancelled end-to-end in {:?}", started.elapsed());

    if std::env::var("KEEP_SERVER").is_err() {
        b.shutdown()?;
        println!("server shut down");
    }
    Ok(())
}
