//! End-to-end test of the JSON-lines protocol over a real localhost socket:
//! server thread, multiple client connections, graph upload → cached solve →
//! stats → shutdown.

use gpm_core::{Algorithm, InitHeuristic};
use gpm_graph::gen;
use gpm_graph::verify::maximum_matching_cardinality;
use gpm_service::{serve, Client, Service};
use serde::Value;
use std::net::TcpListener;

/// Compile-time `Send` guarantees for everything the service moves across
/// threads: a future non-`Send` field must fail this build.
#[test]
fn service_types_are_send() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<gpm_service::JobHandle>();
    assert_send::<gpm_service::JobSpec>();
    assert_send::<gpm_service::JobOutcome>();
    assert_send::<gpm_service::ServiceError>();
    assert_send_sync::<Service>();
    assert_send_sync::<gpm_service::CancelToken>();
    assert_send_sync::<gpm_service::ServerState>();
    assert_send::<gpm_service::SolveOptions>();
}

#[test]
fn full_protocol_round_trip_over_localhost() {
    // Port 0: the OS picks a free port, so parallel test runs never clash.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap();
    let service = Service::builder().workers(2).cache_capacity(8).build();
    let server = std::thread::spawn(move || serve(listener, service).expect("serve"));

    let graph = gen::planted_perfect(40, 160, 9).unwrap();
    let opt = maximum_matching_cardinality(&graph) as u64;

    // First connection: upload, then solve by fingerprint (cache hit) and
    // inline (no hit).
    let mut client = Client::connect(addr).expect("connect");
    let fingerprint = client.put_graph(&graph).expect("put_graph");
    assert_eq!(fingerprint, graph.fingerprint());

    let response =
        client.solve_cached(fingerprint, Algorithm::HopcroftKarp, InitHeuristic::Cheap).unwrap();
    let report = response.get("report").unwrap();
    assert_eq!(report.get("cardinality").and_then(Value::as_u64), Some(opt));
    assert_eq!(response.get("cache_hit").and_then(Value::as_bool), Some(true));

    let response =
        client.solve_inline(&graph, Algorithm::PothenFan, InitHeuristic::KarpSipser).unwrap();
    assert_eq!(
        response.get("report").unwrap().get("cardinality").and_then(Value::as_u64),
        Some(opt)
    );
    assert_eq!(response.get("cache_hit").and_then(Value::as_bool), Some(false));

    // Second, concurrent connection shares the same cache and pool.
    let mut other = Client::connect(addr).expect("second connect");
    let response =
        other.solve_cached(fingerprint, Algorithm::gpr_default(), InitHeuristic::Cheap).unwrap();
    assert_eq!(
        response.get("report").unwrap().get("cardinality").and_then(Value::as_u64),
        Some(opt)
    );

    // Bad requests surface as errors on the same connection, which stays up.
    let err = other.solve_cached(0xbad, Algorithm::HopcroftKarp, InitHeuristic::Cheap).unwrap_err();
    assert!(err.to_string().contains("0x0000000000000bad"), "{err}");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(3));
    assert_eq!(stats.get("failed").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("workers").and_then(Value::as_u64), Some(2));
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(2));
    let per_alg = stats.get("per_algorithm").unwrap();
    assert!(per_alg.get("HK").is_some());
    assert!(per_alg.get("G-PR-Shr@adaptive:0.7").is_some());

    // Scheduling fields ride along and the response correlates by job_id;
    // cancelling an already-finished job is a counted no-op.
    let options = gpm_service::SolveOptions {
        priority: 3,
        deadline_ms: Some(60_000),
        tag: Some("tcp-test".to_string()),
    };
    let response = other
        .solve_cached_with(fingerprint, Algorithm::HopcroftKarp, InitHeuristic::Cheap, &options)
        .unwrap();
    assert_eq!(
        response.get("report").unwrap().get("cardinality").and_then(Value::as_u64),
        Some(opt)
    );
    let job_id = response.get("job_id").and_then(Value::as_u64).expect("job_id in response");
    assert_eq!(client.cancel_job(job_id).unwrap(), 0, "finished job is no longer cancellable");
    assert_eq!(client.cancel_tag("tcp-test").unwrap(), 0);

    // patch_graph: mutate the cached graph server-side, solve the child by
    // its new fingerprint, and confirm the resolved counter ticked (the
    // parent was already solved above, so the child's solve warm-starts).
    let (r, c) = graph.edges().next().unwrap();
    let mut delta = gpm_service::GraphDelta::new();
    delta.remove_edge(r, c);
    delta.add_cols(1);
    delta.insert_edge(r, graph.num_cols() as u32);
    let child = client.patch_graph(fingerprint, &delta).expect("patch_graph");
    let patched = graph.apply_delta(&delta).unwrap();
    assert_eq!(child, patched.fingerprint());
    let child_opt = maximum_matching_cardinality(&patched) as u64;
    let response =
        client.solve_cached(child, Algorithm::HopcroftKarp, InitHeuristic::Cheap).unwrap();
    assert_eq!(
        response.get("report").unwrap().get("cardinality").and_then(Value::as_u64),
        Some(child_opt)
    );
    assert_eq!(response.get("cache_hit").and_then(Value::as_bool), Some(true));
    let stats = client.stats().expect("stats after patch");
    assert_eq!(stats.get("patched").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("resolved").and_then(Value::as_u64), Some(1));
    // A delta that does not apply is an error; the connection stays up.
    let mut bad = gpm_service::GraphDelta::new();
    bad.insert_edge(10_000, 0);
    let err = client.patch_graph(fingerprint, &bad).unwrap_err();
    assert!(err.to_string().contains("does not apply"), "{err}");

    // An impossible deadline surfaces as a deadline error over the wire.
    let strict = gpm_service::SolveOptions { deadline_ms: Some(0), ..Default::default() };
    let err = other
        .solve_cached_with(fingerprint, Algorithm::HopcroftKarp, InitHeuristic::Cheap, &strict)
        .unwrap_err();
    assert!(err.to_string().contains("deadline exceeded"), "{err}");

    // Shutdown stops the accept loop; serve() returns and the thread joins.
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}
