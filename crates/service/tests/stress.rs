//! Concurrency stress test: one shared [`Service`], 8 client threads
//! hammering the mixed `mini_suite()` corpus, every returned matching
//! verified against a single-threaded [`Solver`] oracle and
//! [`verify::check_matching`].
//!
//! This is the acceptance gate for the pool: concurrent results must be
//! *identical in cardinality* to the single-threaded session and must be
//! structurally valid matchings of their graph — a data race in the queue,
//! the cache, or a shared workspace shows up here as a corrupt or
//! sub-optimal matching.

use gpm_core::solver::{Algorithm, DevicePolicy, Solver};
use gpm_core::{ExecutorConfig, InitHeuristic};
use gpm_graph::gen;
use gpm_graph::instances::{mini_suite, Scale};
use gpm_graph::{verify, BipartiteCsr};
use gpm_service::{Client, GraphSource, JobSpec, Service, ServiceError};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::HopcroftKarp,
        Algorithm::PothenFan,
        Algorithm::Pdbfs(2),
        Algorithm::gpr_default(),
    ]
}

#[test]
fn eight_clients_agree_with_the_single_threaded_oracle() {
    // The corpus: every mini-suite family at tiny scale.
    let graphs: Vec<Arc<BipartiteCsr>> = mini_suite()
        .iter()
        .map(|spec| Arc::new(spec.generate(Scale::Tiny).expect("generate")))
        .collect();
    assert!(graphs.len() >= 8, "mini suite should cover all families");

    // Single-threaded oracle: one warm Solver session, same algorithms.
    let mut oracle = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let mut expected = Vec::new();
    for graph in &graphs {
        let mut per_graph = Vec::new();
        for &alg in algorithms().iter() {
            let report = oracle.solve(graph, alg).expect("oracle solve");
            verify::check_matching(graph, &report.matching).expect("oracle matching valid");
            per_graph.push(report.cardinality);
        }
        // All algorithms are exact: they must agree with each other.
        assert!(per_graph.windows(2).all(|w| w[0] == w[1]), "oracle disagreement");
        expected.push(per_graph[0]);
    }

    let service = Arc::new(Service::builder().workers(4).cache_capacity(graphs.len()).build());
    // Pre-register the corpus so clients can submit by fingerprint.
    let fingerprints: Vec<u64> = graphs.iter().map(|g| service.put_graph(Arc::clone(g))).collect();

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let service = Arc::clone(&service);
            let graphs = &graphs;
            let expected = &expected;
            let fingerprints = &fingerprints;
            scope.spawn(move || {
                // Each client interleaves differently: rotate the corpus by
                // its index and alternate cached/inline submission.
                for (offset, _) in graphs.iter().enumerate() {
                    let i = (offset + client) % graphs.len();
                    let algorithm = algorithms()[(offset + client) % algorithms().len()];
                    let source = if (client + offset) % 2 == 0 {
                        GraphSource::Cached(fingerprints[i])
                    } else {
                        GraphSource::Inline(Arc::clone(&graphs[i]))
                    };
                    let outcome = service
                        .submit(JobSpec::new(source, algorithm))
                        .wait()
                        .unwrap_or_else(|e| panic!("client {client} job {offset}: {e}"));
                    // The matching is a valid matching of *this* graph…
                    verify::check_matching(&graphs[i], &outcome.report.matching)
                        .unwrap_or_else(|e| panic!("client {client} graph {i} {algorithm}: {e}"));
                    // …and exactly as large as the single-threaded result.
                    assert_eq!(
                        outcome.report.cardinality, expected[i],
                        "client {client} graph {i} {algorithm}"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    let total = (CLIENTS * graphs.len()) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.cache.hits > 0, "cached submissions must hit");
    // Batch path under contention too: one big mixed batch from the main
    // thread, fanned over all workers.
    let batch = service.submit_batch(
        graphs
            .iter()
            .enumerate()
            .map(|(i, g)| JobSpec::new(Arc::clone(g), algorithms()[i % algorithms().len()])),
    );
    for (i, handle) in batch.into_iter().enumerate() {
        assert_eq!(handle.wait().unwrap().report.cardinality, expected[i], "batch job {i}");
    }
}

#[test]
fn oversubscribed_executor_config_is_honored_and_stays_correct() {
    // Deliberate oversubscription: 4 service workers, each owning a
    // 4-worker parallel device — 16 kernel threads however many cores the
    // host has — with an inline threshold low enough that even the tiny test
    // graphs actually dispatch to the persistent pools.  The plumbed-down
    // ExecutorConfig must reach every worker's device, and the results must
    // still pin to the single-threaded oracle.
    let exec = ExecutorConfig { parallel_threshold: 16, chunk_size: 32, ..Default::default() };
    let graphs: Vec<Arc<BipartiteCsr>> = mini_suite()
        .iter()
        .take(6)
        .map(|spec| Arc::new(spec.generate(Scale::Tiny).expect("generate")))
        .collect();
    let gpu_algorithms = [Algorithm::gpr_default(), Algorithm::ghk(gpm_core::GhkVariant::Hkdw)];

    let mut oracle = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let expected: Vec<usize> = graphs
        .iter()
        .map(|g| oracle.solve(g, Algorithm::HopcroftKarp).expect("oracle").cardinality)
        .collect();

    let service = Service::builder()
        .workers(4)
        .device_policy(DevicePolicy::Parallel(4))
        .executor_config(exec)
        .cache_capacity(graphs.len())
        .build();
    assert_eq!(service.executor_config(), exec);

    let specs: Vec<JobSpec> = graphs
        .iter()
        .flat_map(|g| {
            gpu_algorithms
                .iter()
                .map(|&alg| JobSpec::new(GraphSource::Inline(Arc::clone(g)), alg))
                .collect::<Vec<_>>()
        })
        .collect();
    let handles = service.submit_batch(specs);

    for (j, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait().unwrap_or_else(|e| panic!("job {j}: {e}"));
        let graph_index = j / gpu_algorithms.len();
        verify::check_matching(&graphs[graph_index], &outcome.report.matching)
            .unwrap_or_else(|e| panic!("job {j}: {e}"));
        assert_eq!(outcome.report.cardinality, expected[graph_index], "job {j}");
    }
    assert_eq!(service.stats().failed, 0);
}

#[test]
fn burst_admission_against_a_small_queue_rejects_cleanly() {
    // 8 threads burst 25 jobs each at a 2-worker pool capped at 4 queued
    // jobs.  Submission must never block, every accepted job must still
    // match the oracle, and the rejected/submitted ledger must balance.
    let graph = Arc::new(gen::uniform_random(300, 300, 3000, 41).unwrap());
    let opt = verify::maximum_matching_cardinality(&graph);
    let service = Arc::new(Service::builder().workers(2).max_queue_depth(4).build());

    let mut accepted_total = 0u64;
    let mut rejected_total = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client| {
                let service = Arc::clone(&service);
                let graph = Arc::clone(&graph);
                scope.spawn(move || {
                    let mut accepted = 0u64;
                    let mut rejected = 0u64;
                    for burst in 0..5 {
                        // Five back-to-back submissions, waited on only after
                        // the whole burst is in: 8 such threads keep far more
                        // jobs outstanding than cap + workers can absorb.
                        let burst_handles: Vec<_> = (0..5)
                            .map(|i| {
                                service.submit(
                                    JobSpec::new(Arc::clone(&graph), Algorithm::HopcroftKarp)
                                        .with_priority(((client + burst + i) % 3) as u8),
                                )
                            })
                            .collect();
                        for handle in burst_handles {
                            match handle.wait() {
                                Ok(outcome) => {
                                    assert_eq!(outcome.report.cardinality, opt);
                                    accepted += 1;
                                }
                                Err(ServiceError::Overloaded { queue_depth, retry_after_hint }) => {
                                    assert_eq!(queue_depth, 4);
                                    assert!(retry_after_hint > Duration::ZERO);
                                    rejected += 1;
                                }
                                Err(other) => panic!("client {client}: {other}"),
                            }
                        }
                    }
                    (accepted, rejected)
                })
            })
            .collect();
        for handle in handles {
            let (accepted, rejected) = handle.join().unwrap();
            accepted_total += accepted;
            rejected_total += rejected;
        }
    });

    assert_eq!(accepted_total + rejected_total, 8 * 25);
    assert!(rejected_total > 0, "a 40-deep burst against cap 4 must reject");
    let stats = service.stats();
    assert_eq!(stats.submitted, accepted_total);
    assert_eq!(stats.rejected, rejected_total);
    assert_eq!(stats.completed, accepted_total);
    assert_eq!(stats.failed, 0);
    assert!(stats.peak_queue_depth <= 4, "cap breached: {}", stats.peak_queue_depth);
}

#[test]
fn cancel_storm_leaves_the_pool_healthy() {
    // A dozen heavyweight solves, each cancelled from its own thread while
    // (probably) running.  Whatever the races resolve to, every handle must
    // complete, the counters must balance, and the pool must keep solving
    // correctly afterwards.
    let big = Arc::new(gen::rmat(gen::RmatParams::graph500(13, 8), 5).unwrap());
    let service = Arc::new(Service::builder().workers(2).build());

    let handles: Vec<_> = (0..12)
        .map(|_| {
            service.submit(
                JobSpec::new(Arc::clone(&big), Algorithm::HopcroftKarp)
                    .with_init(InitHeuristic::Empty),
            )
        })
        .collect();
    let cancellers: Vec<_> = handles
        .iter()
        .enumerate()
        .map(|(i, handle)| {
            let token = handle.cancel_token();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(i as u64));
                token.cancel();
            })
        })
        .collect();
    let mut cancelled = 0u64;
    let mut completed = 0u64;
    for handle in handles {
        match handle.wait() {
            Err(ServiceError::Cancelled { .. }) => cancelled += 1,
            Ok(outcome) => {
                assert!(outcome.report.cardinality > 0);
                completed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    for canceller in cancellers {
        canceller.join().unwrap();
    }
    assert_eq!(cancelled + completed, 12);
    assert!(cancelled > 0, "a storm of 12 cancels should catch at least one job");
    let stats = service.stats();
    assert_eq!(stats.cancelled, cancelled);
    assert_eq!(stats.submitted, stats.completed + stats.failed);

    // The pool survived: a fresh job still matches the oracle.
    let g = gen::uniform_random(100, 100, 600, 77).unwrap();
    let opt = verify::maximum_matching_cardinality(&g);
    let outcome = service.submit(JobSpec::new(g, Algorithm::HopcroftKarp)).wait().unwrap();
    assert_eq!(outcome.report.cardinality, opt);
}

#[test]
fn drain_mid_burst_keeps_the_ledger_balanced_and_results_exact() {
    // 4 shards × 1 worker each, 6 client threads bursting the mixed
    // mini-suite corpus while the control plane drains two shards
    // mid-flight.  The acceptance bar: no accepted job may be lost,
    // duplicated, or wrong — every handle resolves exactly once with the
    // single-threaded oracle's cardinality, and the per-shard ledgers fold
    // to the aggregate totals.
    let graphs: Vec<Arc<BipartiteCsr>> = mini_suite()
        .iter()
        .map(|spec| Arc::new(spec.generate(Scale::Tiny).expect("generate")))
        .collect();
    let mut oracle = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let expected: Vec<usize> = graphs
        .iter()
        .map(|g| oracle.solve(g, Algorithm::HopcroftKarp).expect("oracle").cardinality)
        .collect();

    let service =
        Arc::new(Service::builder().shards(4).workers(1).cache_capacity(graphs.len()).build());
    let fingerprints: Vec<u64> = graphs.iter().map(|g| service.put_graph(Arc::clone(g))).collect();

    const BURST_CLIENTS: usize = 6;
    const ROUNDS: usize = 4;
    std::thread::scope(|scope| {
        for client in 0..BURST_CLIENTS {
            let service = Arc::clone(&service);
            let graphs = &graphs;
            let expected = &expected;
            let fingerprints = &fingerprints;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Burst-submit a full corpus pass, then wait: keeping
                    // whole rounds outstanding is what gives the drain real
                    // queued jobs to displace.
                    let handles: Vec<_> = (0..graphs.len())
                        .map(|offset| {
                            let i = (offset + client) % graphs.len();
                            let source = if (client + round + offset) % 2 == 0 {
                                GraphSource::Cached(fingerprints[i])
                            } else {
                                GraphSource::Inline(Arc::clone(&graphs[i]))
                            };
                            let algorithm = algorithms()[(offset + round) % algorithms().len()];
                            (i, service.submit(JobSpec::new(source, algorithm)))
                        })
                        .collect();
                    for (i, handle) in handles {
                        let outcome = handle
                            .wait()
                            .unwrap_or_else(|e| panic!("client {client} graph {i}: {e}"));
                        verify::check_matching(&graphs[i], &outcome.report.matching)
                            .unwrap_or_else(|e| panic!("client {client} graph {i}: {e}"));
                        assert_eq!(outcome.report.cardinality, expected[i], "graph {i}");
                    }
                }
            });
        }
        // Mid-burst, the control plane takes half the capacity away.
        let service = Arc::clone(&service);
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            let drain = service.drain_shard(0).expect("shard 0 exists");
            assert_eq!(drain.shard, 0);
            assert_eq!(drain.kept, 0, "3 shards stayed active, nothing may stay behind");
            std::thread::sleep(Duration::from_millis(20));
            service.drain_shard(2).expect("shard 2 exists");
        });
    });

    let total = (BURST_CLIENTS * ROUNDS * graphs.len()) as u64;
    let stats = service.stats();
    assert_eq!(stats.submitted, total, "unbounded queues must accept the whole burst");
    assert_eq!(stats.completed, total, "every accepted job completes exactly once");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.queue_depth, 0);

    // The per-shard ledgers fold to the totals (a lost or double-counted
    // requeue would break one of these sums), and the drained shards are
    // marked and empty.
    let shards = service.shard_stats();
    assert_eq!(shards.len(), 4);
    assert_eq!(shards.iter().map(|s| s.stats.submitted).sum::<u64>(), total);
    assert_eq!(shards.iter().map(|s| s.stats.completed).sum::<u64>(), total);
    assert_eq!(shards.iter().map(|s| s.stats.failed).sum::<u64>(), 0);
    for id in [0usize, 2] {
        assert!(shards[id].draining, "shard {id} was drained");
        assert_eq!(shards[id].stats.queue_depth, 0, "drained shard {id} must end empty");
    }
    for id in [1usize, 3] {
        assert!(!shards[id].draining);
        assert!(shards[id].stats.completed > 0, "active shard {id} should have taken load");
    }

    // The drained shards' cached graphs stay reachable (remote peek), and a
    // rebalance re-homes them onto the two remaining active shards.
    let outcome = service
        .submit(JobSpec::new(GraphSource::Cached(fingerprints[0]), Algorithm::HopcroftKarp))
        .wait()
        .expect("cached submission after drain");
    assert_eq!(outcome.report.cardinality, expected[0]);
    assert!([1usize, 3].contains(&outcome.shard), "job placed on a drained shard");
    let rebalance = service.rebalance();
    assert_eq!(rebalance.active_shards, 2);
}

#[test]
fn slow_loris_client_does_not_wedge_the_server() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let service = Service::builder().workers(1).build();
    let server = std::thread::spawn(move || gpm_service::serve(listener, service));

    // Connection 1: connects and never sends a byte.
    let mut idle = TcpStream::connect(addr).unwrap();
    // Connection 2: dribbles a stats request one byte at a time.
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        for byte in b"{\"op\":\"stats\"}\n" {
            stream.write_all(&[*byte]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(15));
        }
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        line
    });

    // A well-behaved client must get served promptly in the meantime: the
    // server is one-thread-per-connection, so the loris can only wedge it
    // by corrupting shared state, not by starving the accept loop.
    let graph = gen::uniform_random(50, 50, 240, 3).unwrap();
    let opt = verify::maximum_matching_cardinality(&graph) as u64;
    let started = Instant::now();
    let mut client = Client::connect(addr).unwrap();
    let response =
        client.solve_inline(&graph, Algorithm::HopcroftKarp, InitHeuristic::Cheap).unwrap();
    assert_eq!(
        response.get("report").unwrap().get("cardinality").and_then(serde::Value::as_u64),
        Some(opt)
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "well-behaved client starved behind a slow-loris"
    );

    // The dribbled request still completes once fully delivered.
    let loris_line = loris.join().unwrap();
    assert!(loris_line.contains("\"ok\":true"), "{loris_line}");

    // Shutdown must tear down the idle connection instead of hanging on it.
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 8];
    assert_eq!(idle.read(&mut buf).unwrap(), 0, "idle connection should see EOF");
}
