//! Concurrency stress test: one shared [`Service`], 8 client threads
//! hammering the mixed `mini_suite()` corpus, every returned matching
//! verified against a single-threaded [`Solver`] oracle and
//! [`verify::check_matching`].
//!
//! This is the acceptance gate for the pool: concurrent results must be
//! *identical in cardinality* to the single-threaded session and must be
//! structurally valid matchings of their graph — a data race in the queue,
//! the cache, or a shared workspace shows up here as a corrupt or
//! sub-optimal matching.

use gpm_core::solver::{Algorithm, DevicePolicy, Solver};
use gpm_core::ExecutorConfig;
use gpm_graph::instances::{mini_suite, Scale};
use gpm_graph::{verify, BipartiteCsr};
use gpm_service::{GraphSource, JobSpec, Service};
use std::sync::Arc;

const CLIENTS: usize = 8;

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::HopcroftKarp,
        Algorithm::PothenFan,
        Algorithm::Pdbfs(2),
        Algorithm::gpr_default(),
    ]
}

#[test]
fn eight_clients_agree_with_the_single_threaded_oracle() {
    // The corpus: every mini-suite family at tiny scale.
    let graphs: Vec<Arc<BipartiteCsr>> = mini_suite()
        .iter()
        .map(|spec| Arc::new(spec.generate(Scale::Tiny).expect("generate")))
        .collect();
    assert!(graphs.len() >= 8, "mini suite should cover all families");

    // Single-threaded oracle: one warm Solver session, same algorithms.
    let mut oracle = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let mut expected = Vec::new();
    for graph in &graphs {
        let mut per_graph = Vec::new();
        for &alg in algorithms().iter() {
            let report = oracle.solve(graph, alg).expect("oracle solve");
            verify::check_matching(graph, &report.matching).expect("oracle matching valid");
            per_graph.push(report.cardinality);
        }
        // All algorithms are exact: they must agree with each other.
        assert!(per_graph.windows(2).all(|w| w[0] == w[1]), "oracle disagreement");
        expected.push(per_graph[0]);
    }

    let service = Arc::new(Service::builder().workers(4).cache_capacity(graphs.len()).build());
    // Pre-register the corpus so clients can submit by fingerprint.
    let fingerprints: Vec<u64> = graphs.iter().map(|g| service.put_graph(Arc::clone(g))).collect();

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let service = Arc::clone(&service);
            let graphs = &graphs;
            let expected = &expected;
            let fingerprints = &fingerprints;
            scope.spawn(move || {
                // Each client interleaves differently: rotate the corpus by
                // its index and alternate cached/inline submission.
                for (offset, _) in graphs.iter().enumerate() {
                    let i = (offset + client) % graphs.len();
                    let algorithm = algorithms()[(offset + client) % algorithms().len()];
                    let source = if (client + offset) % 2 == 0 {
                        GraphSource::Cached(fingerprints[i])
                    } else {
                        GraphSource::Inline(Arc::clone(&graphs[i]))
                    };
                    let outcome = service
                        .submit(JobSpec::new(source, algorithm))
                        .wait()
                        .unwrap_or_else(|e| panic!("client {client} job {offset}: {e}"));
                    // The matching is a valid matching of *this* graph…
                    verify::check_matching(&graphs[i], &outcome.report.matching)
                        .unwrap_or_else(|e| panic!("client {client} graph {i} {algorithm}: {e}"));
                    // …and exactly as large as the single-threaded result.
                    assert_eq!(
                        outcome.report.cardinality, expected[i],
                        "client {client} graph {i} {algorithm}"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    let total = (CLIENTS * graphs.len()) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.cache.hits > 0, "cached submissions must hit");
    // Batch path under contention too: one big mixed batch from the main
    // thread, fanned over all workers.
    let batch = service.submit_batch(
        graphs
            .iter()
            .enumerate()
            .map(|(i, g)| JobSpec::new(Arc::clone(g), algorithms()[i % algorithms().len()])),
    );
    for (i, handle) in batch.into_iter().enumerate() {
        assert_eq!(handle.wait().unwrap().report.cardinality, expected[i], "batch job {i}");
    }
}

#[test]
fn oversubscribed_executor_config_is_honored_and_stays_correct() {
    // Deliberate oversubscription: 4 service workers, each owning a
    // 4-worker parallel device — 16 kernel threads however many cores the
    // host has — with an inline threshold low enough that even the tiny test
    // graphs actually dispatch to the persistent pools.  The plumbed-down
    // ExecutorConfig must reach every worker's device, and the results must
    // still pin to the single-threaded oracle.
    let exec = ExecutorConfig { parallel_threshold: 16, chunk_size: 32, ..Default::default() };
    let graphs: Vec<Arc<BipartiteCsr>> = mini_suite()
        .iter()
        .take(6)
        .map(|spec| Arc::new(spec.generate(Scale::Tiny).expect("generate")))
        .collect();
    let gpu_algorithms = [Algorithm::gpr_default(), Algorithm::ghk(gpm_core::GhkVariant::Hkdw)];

    let mut oracle = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let expected: Vec<usize> = graphs
        .iter()
        .map(|g| oracle.solve(g, Algorithm::HopcroftKarp).expect("oracle").cardinality)
        .collect();

    let service = Service::builder()
        .workers(4)
        .device_policy(DevicePolicy::Parallel(4))
        .executor_config(exec)
        .cache_capacity(graphs.len())
        .build();
    assert_eq!(service.executor_config(), exec);

    let specs: Vec<JobSpec> = graphs
        .iter()
        .flat_map(|g| {
            gpu_algorithms
                .iter()
                .map(|&alg| JobSpec::new(GraphSource::Inline(Arc::clone(g)), alg))
                .collect::<Vec<_>>()
        })
        .collect();
    let handles = service.submit_batch(specs);

    for (j, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait().unwrap_or_else(|e| panic!("job {j}: {e}"));
        let graph_index = j / gpu_algorithms.len();
        verify::check_matching(&graphs[graph_index], &outcome.report.matching)
            .unwrap_or_else(|e| panic!("job {j}: {e}"));
        assert_eq!(outcome.report.cardinality, expected[graph_index], "job {j}");
    }
    assert_eq!(service.stats().failed, 0);
}
