//! Property-based tests for the placement decision.
//!
//! [`gpm_service::decide`] is a pure function over per-shard load
//! snapshots, which makes the sharding subsystem's core guarantees —
//! determinism, capacity respect, affinity preference, least-loaded
//! rejection — directly checkable over arbitrary shard sets instead of a
//! handful of hand-picked fixtures.

use gpm_service::{decide, decide_requeue, Placement, ShardLoad};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: one shard's load snapshot (id is assigned positionally).
/// Capacities stay small so "every shard full" actually happens; `0`
/// encodes unbounded.
fn arb_load_parts() -> impl Strategy<Value = (bool, usize, usize, usize, bool)> {
    (any::<bool>(), 0..12usize, 0..4usize, 0..10usize, any::<bool>())
}

/// Strategy: a 1–8 shard cluster with ids `0..n`.
fn arb_cluster() -> impl Strategy<Value = Vec<ShardLoad>> {
    vec(arb_load_parts(), 1..8).prop_map(|parts| {
        parts
            .into_iter()
            .enumerate()
            .map(|(id, (draining, queue_depth, running, cap, holds_graph))| ShardLoad {
                id,
                draining,
                queue_depth,
                running,
                capacity: if cap == 0 { None } else { Some(cap - 1) },
                holds_graph,
            })
            .collect()
    })
}

fn has_room(l: &ShardLoad) -> bool {
    l.capacity.is_none_or(|cap| l.queue_depth < cap)
}

fn load_of(l: &ShardLoad) -> usize {
    l.queue_depth + l.running
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Equal shard sets give equal placements regardless of the order the
    /// snapshots were taken in: the decision depends on shard identity, not
    /// slice position.
    #[test]
    fn decision_is_deterministic_and_order_independent(loads in arb_cluster()) {
        let baseline = decide(&loads);
        prop_assert_eq!(baseline, decide(&loads));
        let mut reversed = loads.clone();
        reversed.reverse();
        prop_assert_eq!(baseline, decide(&reversed));
        let mut rotated = loads.clone();
        rotated.rotate_left(loads.len() / 2);
        prop_assert_eq!(baseline, decide(&rotated));
        prop_assert_eq!(decide_requeue(&loads), decide_requeue(&reversed));
    }

    /// A placed job always lands on an active shard with queue room, and
    /// the placement is the least-loaded (lowest id on ties) within its
    /// tier: affinity holders if any have room, otherwise all candidates.
    #[test]
    fn placement_respects_capacity_draining_and_least_loaded_order(loads in arb_cluster()) {
        if let Placement::Shard(id) = decide(&loads) {
            let chosen = loads.iter().find(|l| l.id == id).expect("placed on a known shard");
            prop_assert!(!chosen.draining, "placed on a draining shard");
            prop_assert!(has_room(chosen), "placed on a full shard");
            let tier: Vec<&ShardLoad> = if chosen.holds_graph {
                loads.iter().filter(|l| !l.draining && has_room(l) && l.holds_graph).collect()
            } else {
                // No affinity pick means no holder had room.
                prop_assert!(
                    !loads.iter().any(|l| !l.draining && has_room(l) && l.holds_graph),
                    "spilled although an affinity holder had room"
                );
                loads.iter().filter(|l| !l.draining && has_room(l)).collect()
            };
            for other in tier {
                prop_assert!(
                    (load_of(chosen), chosen.id) <= (load_of(other), other.id),
                    "shard {} (load {}) beaten by {} (load {})",
                    chosen.id, load_of(chosen), other.id, load_of(other)
                );
            }
        }
    }

    /// Rejection happens exactly when every active shard is full, and the
    /// reported depth is the least-loaded active shard's; quiescence
    /// happens exactly when every shard drains.
    #[test]
    fn reject_and_quiesce_conditions_are_exact(loads in arb_cluster()) {
        let active: Vec<&ShardLoad> = loads.iter().filter(|l| !l.draining).collect();
        match decide(&loads) {
            Placement::Shard(_) => {
                prop_assert!(active.iter().any(|l| has_room(l)));
            }
            Placement::Reject { least_loaded, queue_depth } => {
                prop_assert!(!active.is_empty() && active.iter().all(|l| !has_room(l)));
                let least = active
                    .iter()
                    .min_by_key(|l| (l.queue_depth, l.id))
                    .expect("active is non-empty");
                prop_assert_eq!(least_loaded, least.id);
                prop_assert_eq!(queue_depth, least.queue_depth);
            }
            Placement::NoActiveShards => prop_assert!(active.is_empty()),
        }
    }

    /// Requeue targets the least-loaded active shard no matter how full it
    /// is (displaced jobs were already admitted), and gives up only when
    /// every shard drains.
    #[test]
    fn requeue_ignores_capacity_but_never_picks_a_draining_shard(loads in arb_cluster()) {
        let active: Vec<&ShardLoad> = loads.iter().filter(|l| !l.draining).collect();
        match decide_requeue(&loads) {
            None => prop_assert!(active.is_empty()),
            Some(id) => {
                let chosen = loads.iter().find(|l| l.id == id).expect("known shard");
                prop_assert!(!chosen.draining);
                for other in &active {
                    prop_assert!((load_of(chosen), chosen.id) <= (load_of(other), other.id));
                }
            }
        }
    }
}
