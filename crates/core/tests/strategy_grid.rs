//! `GrStrategy` schedules under the G-PR solver: the paper's Figure-1
//! strategy grid plus the degenerate schedules and graphs the schedule
//! logic must survive (interval 0/1, empty graphs, already-perfect initial
//! matchings).

use gpm_core::gpr::{self, GprConfig};
use gpm_core::strategy::figure1_strategies;
use gpm_core::GrStrategy;
use gpm_gpu::VirtualGpu;
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::verify::{maximum_matching_cardinality, reference_maximum_matching};
use gpm_graph::{gen, BipartiteCsr, Matching};

#[test]
fn figure1_grid_matches_the_paper() {
    let grid = figure1_strategies();
    assert_eq!(grid.len(), 7);
    assert_eq!(grid.iter().filter(|s| matches!(s, GrStrategy::Adaptive(_))).count(), 5);
    assert_eq!(grid.iter().filter(|s| matches!(s, GrStrategy::Fixed(_))).count(), 2);
    let labels: Vec<String> = grid.iter().map(GrStrategy::label).collect();
    for expected in [
        "adaptive, 0.3",
        "adaptive, 0.7",
        "adaptive, 1",
        "adaptive, 1.5",
        "adaptive, 2",
        "fix, 10",
        "fix, 50",
    ] {
        assert!(
            labels.iter().any(|l| l == expected),
            "missing strategy {expected:?} in {labels:?}"
        );
    }
}

#[test]
fn every_grid_strategy_reaches_the_optimum() {
    let gpu = VirtualGpu::sequential();
    let g = gen::planted_perfect(60, 240, 9).unwrap();
    let init = cheap_matching(&g);
    let opt = maximum_matching_cardinality(&g);
    for strategy in figure1_strategies() {
        let r = gpr::run(&gpu, &g, &init, GprConfig::with_strategy(strategy));
        assert_eq!(r.matching.cardinality(), opt, "strategy {} fell short", strategy.label());
    }
}

#[test]
fn degenerate_intervals_zero_and_one_still_terminate() {
    let gpu = VirtualGpu::sequential();
    let g = gen::uniform_random(40, 40, 160, 3).unwrap();
    let init = cheap_matching(&g);
    let opt = maximum_matching_cardinality(&g);
    for strategy in [
        GrStrategy::Fixed(0),                    // clamped to 1 by the schedule
        GrStrategy::Fixed(1),                    // relabel on every kernel execution
        GrStrategy::Adaptive(f64::MIN_POSITIVE), // ceil() clamps to 1 iteration
    ] {
        let r = gpr::run(&gpu, &g, &init, GprConfig::with_strategy(strategy));
        assert_eq!(r.matching.cardinality(), opt, "strategy {} fell short", strategy.label());
    }
}

#[test]
fn empty_and_edgeless_graphs_are_handled() {
    let gpu = VirtualGpu::sequential();
    // Smallest legal graph, no edges; and a wider edgeless graph.
    for g in
        [BipartiteCsr::from_edges(1, 1, &[]).unwrap(), BipartiteCsr::from_edges(7, 3, &[]).unwrap()]
    {
        for strategy in figure1_strategies() {
            let r =
                gpr::run(&gpu, &g, &Matching::empty_for(&g), GprConfig::with_strategy(strategy));
            assert_eq!(r.matching.cardinality(), 0, "strategy {}", strategy.label());
        }
    }
}

#[test]
fn already_perfect_initial_matching_is_preserved() {
    let gpu = VirtualGpu::sequential();
    let g = gen::planted_perfect(50, 200, 17).unwrap();
    let perfect = reference_maximum_matching(&g);
    assert_eq!(perfect.cardinality(), 50);
    for strategy in figure1_strategies() {
        let r = gpr::run(&gpu, &g, &perfect, GprConfig::with_strategy(strategy));
        assert_eq!(r.matching.cardinality(), 50, "strategy {}", strategy.label());
        assert!(r.matching.validate_against(&g).is_ok());
    }
}

#[test]
fn schedule_arithmetic_edge_cases() {
    // maxLevel 0 (before any relabel has run) must still advance.
    assert_eq!(GrStrategy::Adaptive(0.7).next_relabel_iteration(0, 0), 1);
    assert_eq!(GrStrategy::Fixed(0).next_relabel_iteration(0, 10), 11);
    // Large maxLevel values must not overflow the iteration counter.
    let far = GrStrategy::Adaptive(2.0).next_relabel_iteration(u32::MAX, 1_000_000);
    assert!(far > 1_000_000);
    // Fixed ignores maxLevel entirely; adaptive scales with it.
    assert_eq!(
        GrStrategy::Fixed(10).next_relabel_iteration(1, 0),
        GrStrategy::Fixed(10).next_relabel_iteration(1_000, 0),
    );
    assert!(
        GrStrategy::Adaptive(1.0).next_relabel_iteration(1_000, 0)
            > GrStrategy::Adaptive(1.0).next_relabel_iteration(1, 0)
    );
}
