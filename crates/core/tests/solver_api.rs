//! Tests of the session-style solve API: `Algorithm` label round-tripping
//! (property-based), warm-session vs cold-solve agreement across every
//! algorithm family, batch solving, and the structured error paths.

use gpm_core::solver::{
    paper_comparison_set, solve, Algorithm, DevicePolicy, InitHeuristic, Solver,
};
use gpm_core::{
    CancelToken, ExecMode, ExecutorConfig, GhkVariant, GprConfig, GprVariant, GrStrategy, SolveCtx,
    SolveError,
};
use gpm_gpu::WorklistMode;
use gpm_graph::gen;
use gpm_graph::instances::{mini_suite, Scale};
use gpm_graph::verify::maximum_matching_cardinality;
use gpm_graph::{BipartiteCsr, Matching};
use proptest::prelude::*;

/// Arbitrary valid algorithm covering all seven families with varied
/// parameters, including every worklist representation and both execution
/// modes of the GPU families (so the `+mode` and `@resident` label suffixes
/// are exercised by the round-trip property).
fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    (0usize..10, 1u32..100, 1u32..40, 1usize..16, 0usize..4, 0usize..2).prop_map(
        |(which, fix_k, tenths, threads, mode, exec)| {
            let adaptive = GrStrategy::Adaptive(f64::from(tenths) / 10.0);
            let mode = WorklistMode::all()[mode];
            let exec = ExecMode::all()[exec];
            match which {
                0 => Algorithm::GpuPushRelabel(GprVariant::First, adaptive, mode, exec),
                1 => Algorithm::GpuPushRelabel(
                    GprVariant::ActiveList,
                    GrStrategy::Fixed(fix_k),
                    mode,
                    exec,
                ),
                2 => Algorithm::GpuPushRelabel(GprVariant::Shrink, adaptive, mode, exec),
                3 => Algorithm::GpuHopcroftKarp(GhkVariant::Hk, mode, exec),
                4 => Algorithm::GpuHopcroftKarp(GhkVariant::Hkdw, mode, exec),
                5 => Algorithm::SequentialPushRelabel(f64::from(tenths) / 10.0),
                6 => Algorithm::PothenFan,
                7 => Algorithm::HopcroftKarp,
                8 => Algorithm::Hkdw,
                _ => Algorithm::Pdbfs(threads),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn algorithm_labels_round_trip_through_display_and_fromstr(alg in arb_algorithm()) {
        let label = alg.to_string();
        let parsed: Algorithm = label.parse().unwrap_or_else(|e| panic!("{label}: {e}"));
        prop_assert_eq!(parsed, alg, "{}", label);
        // The round-trippable label is also what serde emits.
        let json = serde_json::to_string(&alg).unwrap();
        prop_assert_eq!(json, format!("\"{label}\""));
        // Default representations stay suffix-free (paper-compatible labels);
        // non-default ones carry the '+' suffix.
        if let Some(mode) = alg.worklist() {
            let default_mode = match alg {
                Algorithm::GpuPushRelabel(v, ..) => v.default_worklist(),
                Algorithm::GpuHopcroftKarp(v, ..) => v.default_worklist(),
                _ => unreachable!(),
            };
            prop_assert_eq!(label.contains('+'), mode != default_mode, "{}", label);
        }
        // The persistent execution mode always prints (and only it does).
        if let Some(exec) = alg.exec() {
            prop_assert_eq!(
                label.ends_with("@resident"), exec == ExecMode::Persistent, "{}", label);
        }
    }
}

/// Every algorithm in the workspace: the paper's comparison set plus every
/// CPU baseline and the remaining GPU variants.
fn every_algorithm() -> Vec<Algorithm> {
    let mut algorithms = paper_comparison_set();
    algorithms.extend([
        Algorithm::gpr(GprVariant::First, GrStrategy::paper_default()),
        Algorithm::gpr(GprVariant::ActiveList, GrStrategy::Fixed(10)),
        Algorithm::ghk(GhkVariant::Hk),
        Algorithm::PothenFan,
        Algorithm::HopcroftKarp,
        Algorithm::Hkdw,
        Algorithm::Pdbfs(2),
    ]);
    algorithms
}

fn corpus() -> Vec<BipartiteCsr> {
    vec![
        gen::planted_perfect(60, 240, 5).unwrap(),
        gen::uniform_random(80, 80, 400, 6).unwrap(),
        gen::uniform_random(80, 80, 450, 7).unwrap(), // same shape as above: warm path
        gen::power_law(90, 70, 420, 2.2, 8).unwrap(),
        gen::uniform_random(40, 110, 390, 9).unwrap(),
    ]
}

#[test]
fn warm_solver_matches_cold_solves_across_all_algorithms() {
    let mut warm = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    for g in corpus() {
        let opt = maximum_matching_cardinality(&g);
        for alg in every_algorithm() {
            let warm_report = warm.solve(&g, alg).unwrap();
            let cold_report = solve(&g, alg).unwrap();
            assert_eq!(warm_report.cardinality, opt, "warm {alg}");
            assert_eq!(cold_report.cardinality, opt, "cold {alg}");
            assert_eq!(warm_report.initial_cardinality, cold_report.initial_cardinality, "{alg}");
        }
    }
    // The session kept exactly one warm engine per distinct algorithm.
    assert_eq!(warm.warm_engine_count(), every_algorithm().len());
}

#[test]
fn one_session_batch_solves_the_full_comparison_over_a_corpus() {
    // The acceptance scenario: a single Solver runs the paper's comparison
    // set plus all CPU baselines over a multi-graph corpus via solve_batch,
    // returning per-job Results.
    let graphs = corpus();
    let mut solver = Solver::builder().build().expect("valid solver config");
    let jobs: Vec<(&BipartiteCsr, Algorithm)> = graphs
        .iter()
        .flat_map(|g| every_algorithm().into_iter().map(move |alg| (g, alg)))
        .collect();
    let expected_jobs = jobs.len();
    let results = solver.solve_batch(jobs);
    assert_eq!(results.len(), expected_jobs);
    for (i, result) in results.iter().enumerate() {
        let report = result.as_ref().unwrap_or_else(|e| panic!("job {i} failed: {e}"));
        let g = &graphs[i / every_algorithm().len()];
        assert_eq!(report.cardinality, maximum_matching_cardinality(g), "job {i}");
    }
}

#[test]
fn invalid_pr_factor_is_a_structured_error() {
    let g = gen::uniform_random(20, 20, 80, 1).unwrap();
    let mut solver = Solver::new();
    for bad_k in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
        let err = solver.solve(&g, Algorithm::SequentialPushRelabel(bad_k)).unwrap_err();
        match err {
            SolveError::InvalidConfig { algorithm, reason } => {
                assert_eq!(algorithm, "PR");
                assert!(reason.contains("global-relabel factor"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
    // The shim propagates the same error.
    assert!(matches!(
        solve(&g, Algorithm::SequentialPushRelabel(f64::NAN)),
        Err(SolveError::InvalidConfig { .. })
    ));
}

#[test]
fn zero_thread_pdbfs_is_a_structured_error() {
    let g = gen::uniform_random(20, 20, 80, 2).unwrap();
    let mut solver = Solver::new();
    match solver.solve(&g, Algorithm::Pdbfs(0)).unwrap_err() {
        SolveError::InvalidConfig { algorithm, reason } => {
            assert_eq!(algorithm, "P-DBFS");
            assert!(reason.contains("thread count"), "{reason}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // A failed job does not poison the session.
    assert!(solver.solve(&g, Algorithm::Pdbfs(1)).is_ok());
}

#[test]
fn device_required_instead_of_panic_on_cpu_only_sessions() {
    let g = gen::uniform_random(15, 15, 60, 3).unwrap();
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::CpuOnly)
        .init_heuristic(InitHeuristic::KarpSipser)
        .build()
        .expect("valid solver config");
    let results = solver.solve_batch(vec![
        (&g, Algorithm::gpr_default()),
        (&g, Algorithm::ghk(GhkVariant::Hkdw)),
        (&g, Algorithm::HopcroftKarp),
    ]);
    assert!(matches!(results[0], Err(SolveError::DeviceRequired { .. })));
    assert!(matches!(results[1], Err(SolveError::DeviceRequired { .. })));
    assert_eq!(results[2].as_ref().unwrap().cardinality, maximum_matching_cardinality(&g));
    assert!(solver.device().is_none());

    // Parameter validation runs before device resolution: an invalid GPU
    // config on a CPU-only session is InvalidConfig, not DeviceRequired.
    let bad = Algorithm::gpr(GprVariant::Shrink, GrStrategy::Adaptive(f64::NAN));
    assert!(matches!(solver.solve(&g, bad), Err(SolveError::InvalidConfig { .. })));
}

#[test]
fn shape_mismatch_is_reported_with_both_shapes() {
    let g = gen::uniform_random(12, 14, 50, 4).unwrap();
    let wrong = Matching::empty(12, 13);
    let mut solver = Solver::new();
    match solver.solve_with_initial(&g, &wrong, Algorithm::HopcroftKarp).unwrap_err() {
        SolveError::ShapeMismatch { graph, initial } => {
            assert_eq!(graph, (12, 14));
            assert_eq!(initial, (12, 13));
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

/// Compile-time `Send` guarantee: the service layer moves `Solver` sessions
/// into worker threads, so a future non-`Send` field (an `Rc`, a raw device
/// handle) must fail this build, not the service at a distance.
#[test]
fn solver_and_components_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Solver>();
    assert_send::<Algorithm>();
    assert_send::<InitHeuristic>();
    assert_send::<gpm_core::SolveReport>();
    assert_send::<SolveError>();
    // A warm session (device + engines populated) must stay movable too.
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let g = gen::uniform_random(10, 10, 40, 3).unwrap();
    solver.solve(&g, Algorithm::gpr_default()).unwrap();
    let report = std::thread::spawn(move || solver.solve(&g, Algorithm::HopcroftKarp).unwrap())
        .join()
        .unwrap();
    assert!(report.cardinality > 0);
}

#[test]
fn worklist_labels_parse_and_reject_junk() {
    // Explicit suffixes on GPU algorithms.
    assert_eq!(
        "G-PR-Shr@adaptive:0.7+queue".parse::<Algorithm>().unwrap(),
        Algorithm::gpr_default().with_worklist(WorklistMode::AtomicQueue)
    );
    assert_eq!(
        "G-PR-NoShr+compacted".parse::<Algorithm>().unwrap(),
        Algorithm::gpr(GprVariant::ActiveList, GrStrategy::paper_default())
            .with_worklist(WorklistMode::Compacted)
    );
    assert_eq!(
        "G-HK+queue".parse::<Algorithm>().unwrap(),
        Algorithm::ghk(GhkVariant::Hk).with_worklist(WorklistMode::AtomicQueue)
    );
    assert_eq!(
        "G-HK+blocked".parse::<Algorithm>().unwrap(),
        Algorithm::ghk(GhkVariant::Hk).with_worklist(WorklistMode::BlockedQueue)
    );
    assert_eq!(
        "G-PR-Shr@adaptive:0.7+blocked".parse::<Algorithm>().unwrap(),
        Algorithm::gpr_default().with_worklist(WorklistMode::BlockedQueue)
    );
    // A default-mode suffix parses to the same algorithm as no suffix.
    assert_eq!(
        "G-PR-Shr+compacted".parse::<Algorithm>().unwrap(),
        "G-PR-Shr".parse::<Algorithm>().unwrap()
    );
    // Defaults print without the suffix; overrides print with it.
    assert_eq!(Algorithm::gpr_default().to_string(), "G-PR-Shr@adaptive:0.7");
    assert_eq!(
        Algorithm::gpr_default().with_worklist(WorklistMode::AtomicQueue).to_string(),
        "G-PR-Shr@adaptive:0.7+queue"
    );
    assert_eq!(
        Algorithm::ghk(GhkVariant::Hkdw).with_worklist(WorklistMode::Compacted).to_string(),
        "G-HKDW+compacted"
    );
    // Junk modes and CPU algorithms with modes are rejected.
    assert!("G-PR-Shr+stack".parse::<Algorithm>().is_err());
    assert!("HK+queue".parse::<Algorithm>().is_err());
    assert!("PR@0.5+dense".parse::<Algorithm>().is_err());
    assert!("P-DBFS+compacted".parse::<Algorithm>().is_err());
    // Plus-signed numeric parameters are not mistaken for worklist modes.
    assert_eq!("PR@+0.5".parse::<Algorithm>().unwrap(), Algorithm::SequentialPushRelabel(0.5));
    assert_eq!("P-DBFS@+8".parse::<Algorithm>().unwrap(), Algorithm::Pdbfs(8));
    assert_eq!(
        "G-PR-Shr@fix:+10+queue".parse::<Algorithm>().unwrap(),
        Algorithm::gpr(GprVariant::Shrink, GrStrategy::Fixed(10))
            .with_worklist(WorklistMode::AtomicQueue)
    );
}

#[test]
fn exec_mode_labels_parse_and_reject_junk() {
    // The full grammar: strategy, worklist, and execution-mode suffixes.
    let full = Algorithm::gpr_default()
        .with_worklist(WorklistMode::BlockedQueue)
        .with_exec(ExecMode::Persistent);
    assert_eq!(full.to_string(), "G-PR-Shr@adaptive:0.7+blocked@resident");
    assert_eq!("G-PR-Shr@adaptive:0.7+blocked@resident".parse::<Algorithm>().unwrap(), full);
    // Resident without a worklist suffix.
    assert_eq!(
        "G-HK@resident".parse::<Algorithm>().unwrap(),
        Algorithm::ghk(GhkVariant::Hk).with_exec(ExecMode::Persistent)
    );
    assert_eq!(
        Algorithm::ghk(GhkVariant::Hkdw).with_exec(ExecMode::Persistent).to_string(),
        "G-HKDW@resident"
    );
    // The default mode may be spelled out and parses to the suffix-free form.
    assert_eq!(
        "G-PR-Shr@launch".parse::<Algorithm>().unwrap(),
        "G-PR-Shr".parse::<Algorithm>().unwrap()
    );
    assert_eq!(Algorithm::gpr_default().with_exec(ExecMode::LaunchPerRound), {
        let alg: Algorithm = "G-PR-Shr".parse().unwrap();
        alg
    });
    // Launch-per-round is the default, so it never prints.
    assert_eq!(
        Algorithm::gpr_default().with_exec(ExecMode::LaunchPerRound).to_string(),
        "G-PR-Shr@adaptive:0.7"
    );
    // CPU algorithms have no device round loop to make resident.
    assert!("HK@resident".parse::<Algorithm>().is_err());
    assert!("PR@0.5@resident".parse::<Algorithm>().is_err());
    assert!("P-DBFS@8@launch".parse::<Algorithm>().is_err());
    // Junk exec modes fall through to (and fail) ordinary parsing.
    assert!("G-HK@megakernel".parse::<Algorithm>().is_err());
    // Suffix order is fixed: worklist, then exec.
    assert!("G-PR-Shr@resident+blocked".parse::<Algorithm>().is_err());
}

/// The cross-representation acceptance test: every worklist mode, under both
/// the sequential and the pooled executor, produces the oracle cardinality
/// on every instance family of the mini suite.
#[test]
fn all_worklist_modes_match_the_oracle_over_the_mini_suite() {
    let instances: Vec<_> = mini_suite()
        .iter()
        .map(|spec| {
            let g = spec.generate(Scale::Tiny).expect("generate mini instance");
            let opt = maximum_matching_cardinality(&g);
            (spec.name, g, opt)
        })
        .collect();
    for policy in [DevicePolicy::Sequential, DevicePolicy::Parallel(3)] {
        let mut solver =
            Solver::builder().device_policy(policy).build().expect("valid solver config");
        for mode in WorklistMode::all() {
            for (name, g, opt) in &instances {
                for alg in [
                    Algorithm::gpr_default().with_worklist(mode),
                    Algorithm::ghk(GhkVariant::Hkdw).with_worklist(mode),
                ] {
                    let report = solver.solve(g, alg).unwrap();
                    assert_eq!(report.cardinality, *opt, "{alg} on {name} under {policy:?}");
                }
            }
        }
    }
}

/// The persistent-execution acceptance test: on every instance family of
/// the mini suite, every GPU engine × worklist mode solved `@resident`
/// agrees with its launch-per-round twin — same cardinality under both the
/// sequential and the pooled executor, and (sequential executor, where the
/// modelled counters are deterministic) the same number of device rounds,
/// with the whole solve riding on a small constant number of launches.
#[test]
fn persistent_exec_matches_launch_per_round_over_the_mini_suite() {
    let instances: Vec<_> = mini_suite()
        .iter()
        .map(|spec| {
            let g = spec.generate(Scale::Tiny).expect("generate mini instance");
            let opt = maximum_matching_cardinality(&g);
            (spec.name, g, opt)
        })
        .collect();
    for policy in [DevicePolicy::Sequential, DevicePolicy::Parallel(3)] {
        let mut solver =
            Solver::builder().device_policy(policy).build().expect("valid solver config");
        for mode in WorklistMode::all() {
            for (name, g, opt) in &instances {
                for base in [
                    Algorithm::gpr_default().with_worklist(mode),
                    Algorithm::ghk(GhkVariant::Hkdw).with_worklist(mode),
                ] {
                    let launch = solver.solve(g, base).unwrap();
                    let resident = solver.solve(g, base.with_exec(ExecMode::Persistent)).unwrap();
                    assert_eq!(
                        launch.cardinality, resident.cardinality,
                        "{base} on {name} under {policy:?}"
                    );
                    assert_eq!(launch.cardinality, *opt, "{base} on {name} under {policy:?}");
                    let stats = resident.device_stats.as_ref().expect("GPU solve has stats");
                    assert!(
                        stats.total_launches() <= 2,
                        "{base}@resident on {name} under {policy:?}: {} launches",
                        stats.total_launches()
                    );
                    if policy == DevicePolicy::Sequential {
                        // Same rounds, just resident: the per-round kernel
                        // launches of the one mode reappear one-for-one as
                        // barrier-separated resident rounds of the other.
                        let launch_stats = launch.device_stats.as_ref().unwrap();
                        let lpr_rounds: u64 =
                            launch_stats.kernels.values().map(|k| k.launches).sum();
                        let res_rounds: u64 =
                            stats.kernels.values().map(|k| k.resident_rounds).sum();
                        // Every launch-per-round kernel invocation reappears
                        // either as a resident round or (the out-of-scope
                        // fix-up) as one of the surviving launches; the one
                        // launch that is new is the resident entry kernel.
                        assert_eq!(
                            lpr_rounds,
                            res_rounds + stats.total_launches() - 1,
                            "{base} on {name}: launch-per-round kernel launches should equal \
                             resident rounds plus the non-entry launches"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pre_cancelled_solves_fail_fast_for_every_algorithm_family() {
    // An already-tripped token never touches an engine: zero rounds, zero
    // partial cardinality, for GPU and CPU families alike.
    let g = gen::uniform_random(50, 50, 250, 12).unwrap();
    let initial = Matching::empty_for(&g);
    let token = CancelToken::new();
    token.cancel();
    let ctx = SolveCtx::with_cancel(token);
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    for alg in every_algorithm() {
        match solver.solve_with_initial_ctx(&g, &initial, alg, &ctx).unwrap_err() {
            SolveError::Cancelled { rounds_completed, partial_cardinality } => {
                assert_eq!(rounds_completed, 0, "{alg}");
                assert_eq!(partial_cardinality, 0, "{alg}");
            }
            other => panic!("{alg}: expected Cancelled, got {other:?}"),
        }
    }
    // The session is not poisoned: the same solver still solves.
    let report = solver.solve(&g, Algorithm::HopcroftKarp).unwrap();
    assert_eq!(report.cardinality, maximum_matching_cardinality(&g));
}

#[test]
fn expired_deadline_is_deadline_exceeded_not_cancelled() {
    let g = gen::uniform_random(40, 40, 200, 13).unwrap();
    let initial = Matching::empty_for(&g);
    let ctx =
        SolveCtx::with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    for alg in [Algorithm::gpr_default(), Algorithm::HopcroftKarp] {
        assert!(
            matches!(
                solver.solve_with_initial_ctx(&g, &initial, alg, &ctx).unwrap_err(),
                SolveError::DeadlineExceeded { rounds_completed: 0, partial_cardinality: 0 }
            ),
            "{alg}"
        );
    }
}

#[test]
fn mid_solve_cancellation_reports_rounds_and_partial_progress() {
    // Cancel from a clone of the token on another thread after the engine
    // has started: the G-PR solve must stop at a round boundary and report
    // how far it got.
    let g = gen::rmat(gen::RmatParams::graph500(11, 4), 21).unwrap();
    let initial = Matching::empty_for(&g);
    let opt = maximum_matching_cardinality(&g);

    let token = CancelToken::new();
    let trip = {
        let token = token.clone();
        std::thread::spawn(move || {
            // Wait until the solve is plausibly inside its round loop.
            std::thread::sleep(std::time::Duration::from_millis(2));
            token.cancel();
        })
    };

    let ctx = SolveCtx::with_cancel(token.clone());
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::Sequential)
        .build()
        .expect("valid solver config");
    let result = solver.solve_with_initial_ctx(&g, &initial, Algorithm::gpr_default(), &ctx);
    trip.join().unwrap();
    match result {
        // The usual outcome at this scale: cancelled mid-run with a
        // consistent partial matching no better than the optimum.
        Err(SolveError::Cancelled { partial_cardinality, .. }) => {
            assert!(partial_cardinality <= opt);
        }
        // On a very fast machine the solve may legitimately finish first.
        Ok(report) => assert_eq!(report.cardinality, opt),
        Err(other) => panic!("expected Cancelled or success, got {other:?}"),
    }
    // Either way the session keeps working afterwards.
    let report = solver.solve(&g, Algorithm::gpr_default()).unwrap();
    assert_eq!(report.cardinality, opt);
}

#[test]
fn builder_rejects_zero_chunk_size_and_zero_shrink_threshold() {
    let bad_exec = ExecutorConfig { chunk_size: 0, ..Default::default() };
    match Solver::builder().executor_config(bad_exec).build() {
        Err(SolveError::InvalidConfig { algorithm, reason }) => {
            assert_eq!(algorithm, "device executor");
            assert!(reason.contains("chunk_size"), "{reason}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }

    let bad_gpr = GprConfig { shrink_threshold: 0, ..GprConfig::paper_default() };
    match Solver::builder().gpr_config(bad_gpr).build() {
        Err(SolveError::InvalidConfig { algorithm, reason }) => {
            assert_eq!(algorithm, "G-PR");
            assert!(reason.contains("shrink_threshold"), "{reason}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }

    // Valid overrides pass through to the session.
    let tuned = GprConfig { shrink_threshold: 64, ..GprConfig::paper_default() };
    let solver = Solver::builder().gpr_config(tuned).build().expect("valid tuning");
    assert_eq!(solver.gpr_config().shrink_threshold, 64);
}

#[test]
fn executor_config_reaches_the_session_device() {
    // The builder's executor tuning must be applied verbatim to the device
    // the session creates on its first GPU solve — this is the contract the
    // service layer relies on to keep N workers from oversubscribing the
    // host.
    let exec = ExecutorConfig { parallel_threshold: 32, chunk_size: 64, ..Default::default() };
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::Parallel(2))
        .executor_config(exec)
        .build()
        .expect("valid solver config");
    assert_eq!(solver.executor_config(), exec);
    assert!(solver.device().is_none(), "device is created lazily");

    let g = gen::uniform_random(60, 60, 300, 17).unwrap();
    let report = solver.solve(&g, Algorithm::gpr_default()).unwrap();
    assert_eq!(report.cardinality, maximum_matching_cardinality(&g));

    let device = solver.device().expect("GPU solve created the device");
    assert_eq!(device.config().executor, exec);
    // The pooled executor respects the backend sizing: at most the two
    // configured workers were ever spawned.
    assert!(device.worker_threads_spawned() <= 2);

    // Warm solves on the same session keep the same device (and pool).
    let before = device as *const _;
    solver.solve(&g, Algorithm::gpr_default()).unwrap();
    assert!(std::ptr::eq(solver.device().unwrap(), before));
}
