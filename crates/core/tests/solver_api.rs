//! Tests of the session-style solve API: `Algorithm` label round-tripping
//! (property-based), warm-session vs cold-solve agreement across every
//! algorithm family, batch solving, and the structured error paths.

use gpm_core::solver::{
    paper_comparison_set, solve, Algorithm, DevicePolicy, InitHeuristic, Solver,
};
use gpm_core::{ExecutorConfig, GhkVariant, GprVariant, GrStrategy, SolveError};
use gpm_graph::gen;
use gpm_graph::verify::maximum_matching_cardinality;
use gpm_graph::{BipartiteCsr, Matching};
use proptest::prelude::*;

/// Arbitrary valid algorithm covering all seven families with varied
/// parameters.
fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    (0usize..10, 1u32..100, 1u32..40, 1usize..16).prop_map(|(which, fix_k, tenths, threads)| {
        let adaptive = GrStrategy::Adaptive(f64::from(tenths) / 10.0);
        match which {
            0 => Algorithm::GpuPushRelabel(GprVariant::First, adaptive),
            1 => Algorithm::GpuPushRelabel(GprVariant::ActiveList, GrStrategy::Fixed(fix_k)),
            2 => Algorithm::GpuPushRelabel(GprVariant::Shrink, adaptive),
            3 => Algorithm::GpuHopcroftKarp(GhkVariant::Hk),
            4 => Algorithm::GpuHopcroftKarp(GhkVariant::Hkdw),
            5 => Algorithm::SequentialPushRelabel(f64::from(tenths) / 10.0),
            6 => Algorithm::PothenFan,
            7 => Algorithm::HopcroftKarp,
            8 => Algorithm::Hkdw,
            _ => Algorithm::Pdbfs(threads),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn algorithm_labels_round_trip_through_display_and_fromstr(alg in arb_algorithm()) {
        let label = alg.to_string();
        let parsed: Algorithm = label.parse().unwrap_or_else(|e| panic!("{label}: {e}"));
        prop_assert_eq!(parsed, alg, "{}", label);
        // The round-trippable label is also what serde emits.
        let json = serde_json::to_string(&alg).unwrap();
        prop_assert_eq!(json, format!("\"{label}\""));
    }
}

/// Every algorithm in the workspace: the paper's comparison set plus every
/// CPU baseline and the remaining GPU variants.
fn every_algorithm() -> Vec<Algorithm> {
    let mut algorithms = paper_comparison_set();
    algorithms.extend([
        Algorithm::GpuPushRelabel(GprVariant::First, GrStrategy::paper_default()),
        Algorithm::GpuPushRelabel(GprVariant::ActiveList, GrStrategy::Fixed(10)),
        Algorithm::GpuHopcroftKarp(GhkVariant::Hk),
        Algorithm::PothenFan,
        Algorithm::HopcroftKarp,
        Algorithm::Hkdw,
        Algorithm::Pdbfs(2),
    ]);
    algorithms
}

fn corpus() -> Vec<BipartiteCsr> {
    vec![
        gen::planted_perfect(60, 240, 5).unwrap(),
        gen::uniform_random(80, 80, 400, 6).unwrap(),
        gen::uniform_random(80, 80, 450, 7).unwrap(), // same shape as above: warm path
        gen::power_law(90, 70, 420, 2.2, 8).unwrap(),
        gen::uniform_random(40, 110, 390, 9).unwrap(),
    ]
}

#[test]
fn warm_solver_matches_cold_solves_across_all_algorithms() {
    let mut warm = Solver::builder().device_policy(DevicePolicy::Sequential).build();
    for g in corpus() {
        let opt = maximum_matching_cardinality(&g);
        for alg in every_algorithm() {
            let warm_report = warm.solve(&g, alg).unwrap();
            let cold_report = solve(&g, alg).unwrap();
            assert_eq!(warm_report.cardinality, opt, "warm {alg}");
            assert_eq!(cold_report.cardinality, opt, "cold {alg}");
            assert_eq!(warm_report.initial_cardinality, cold_report.initial_cardinality, "{alg}");
        }
    }
    // The session kept exactly one warm engine per distinct algorithm.
    assert_eq!(warm.warm_engine_count(), every_algorithm().len());
}

#[test]
fn one_session_batch_solves_the_full_comparison_over_a_corpus() {
    // The acceptance scenario: a single Solver runs the paper's comparison
    // set plus all CPU baselines over a multi-graph corpus via solve_batch,
    // returning per-job Results.
    let graphs = corpus();
    let mut solver = Solver::builder().build();
    let jobs: Vec<(&BipartiteCsr, Algorithm)> = graphs
        .iter()
        .flat_map(|g| every_algorithm().into_iter().map(move |alg| (g, alg)))
        .collect();
    let expected_jobs = jobs.len();
    let results = solver.solve_batch(jobs);
    assert_eq!(results.len(), expected_jobs);
    for (i, result) in results.iter().enumerate() {
        let report = result.as_ref().unwrap_or_else(|e| panic!("job {i} failed: {e}"));
        let g = &graphs[i / every_algorithm().len()];
        assert_eq!(report.cardinality, maximum_matching_cardinality(g), "job {i}");
    }
}

#[test]
fn invalid_pr_factor_is_a_structured_error() {
    let g = gen::uniform_random(20, 20, 80, 1).unwrap();
    let mut solver = Solver::new();
    for bad_k in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
        let err = solver.solve(&g, Algorithm::SequentialPushRelabel(bad_k)).unwrap_err();
        match err {
            SolveError::InvalidConfig { algorithm, reason } => {
                assert_eq!(algorithm, "PR");
                assert!(reason.contains("global-relabel factor"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
    // The shim propagates the same error.
    assert!(matches!(
        solve(&g, Algorithm::SequentialPushRelabel(f64::NAN)),
        Err(SolveError::InvalidConfig { .. })
    ));
}

#[test]
fn zero_thread_pdbfs_is_a_structured_error() {
    let g = gen::uniform_random(20, 20, 80, 2).unwrap();
    let mut solver = Solver::new();
    match solver.solve(&g, Algorithm::Pdbfs(0)).unwrap_err() {
        SolveError::InvalidConfig { algorithm, reason } => {
            assert_eq!(algorithm, "P-DBFS");
            assert!(reason.contains("thread count"), "{reason}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // A failed job does not poison the session.
    assert!(solver.solve(&g, Algorithm::Pdbfs(1)).is_ok());
}

#[test]
fn device_required_instead_of_panic_on_cpu_only_sessions() {
    let g = gen::uniform_random(15, 15, 60, 3).unwrap();
    let mut solver = Solver::builder()
        .device_policy(DevicePolicy::CpuOnly)
        .init_heuristic(InitHeuristic::KarpSipser)
        .build();
    let results = solver.solve_batch(vec![
        (&g, Algorithm::gpr_default()),
        (&g, Algorithm::GpuHopcroftKarp(GhkVariant::Hkdw)),
        (&g, Algorithm::HopcroftKarp),
    ]);
    assert!(matches!(results[0], Err(SolveError::DeviceRequired { .. })));
    assert!(matches!(results[1], Err(SolveError::DeviceRequired { .. })));
    assert_eq!(results[2].as_ref().unwrap().cardinality, maximum_matching_cardinality(&g));
    assert!(solver.device().is_none());

    // Parameter validation runs before device resolution: an invalid GPU
    // config on a CPU-only session is InvalidConfig, not DeviceRequired.
    let bad = Algorithm::GpuPushRelabel(GprVariant::Shrink, GrStrategy::Adaptive(f64::NAN));
    assert!(matches!(solver.solve(&g, bad), Err(SolveError::InvalidConfig { .. })));
}

#[test]
fn shape_mismatch_is_reported_with_both_shapes() {
    let g = gen::uniform_random(12, 14, 50, 4).unwrap();
    let wrong = Matching::empty(12, 13);
    let mut solver = Solver::new();
    match solver.solve_with_initial(&g, &wrong, Algorithm::HopcroftKarp).unwrap_err() {
        SolveError::ShapeMismatch { graph, initial } => {
            assert_eq!(graph, (12, 14));
            assert_eq!(initial, (12, 13));
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

/// Compile-time `Send` guarantee: the service layer moves `Solver` sessions
/// into worker threads, so a future non-`Send` field (an `Rc`, a raw device
/// handle) must fail this build, not the service at a distance.
#[test]
fn solver_and_components_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Solver>();
    assert_send::<Algorithm>();
    assert_send::<InitHeuristic>();
    assert_send::<gpm_core::SolveReport>();
    assert_send::<SolveError>();
    // A warm session (device + engines populated) must stay movable too.
    let mut solver = Solver::builder().device_policy(DevicePolicy::Sequential).build();
    let g = gen::uniform_random(10, 10, 40, 3).unwrap();
    solver.solve(&g, Algorithm::gpr_default()).unwrap();
    let report = std::thread::spawn(move || solver.solve(&g, Algorithm::HopcroftKarp).unwrap())
        .join()
        .unwrap();
    assert!(report.cardinality > 0);
}

#[test]
fn executor_config_reaches_the_session_device() {
    // The builder's executor tuning must be applied verbatim to the device
    // the session creates on its first GPU solve — this is the contract the
    // service layer relies on to keep N workers from oversubscribing the
    // host.
    let exec = ExecutorConfig { parallel_threshold: 32, chunk_size: 64, ..Default::default() };
    let mut solver =
        Solver::builder().device_policy(DevicePolicy::Parallel(2)).executor_config(exec).build();
    assert_eq!(solver.executor_config(), exec);
    assert!(solver.device().is_none(), "device is created lazily");

    let g = gen::uniform_random(60, 60, 300, 17).unwrap();
    let report = solver.solve(&g, Algorithm::gpr_default()).unwrap();
    assert_eq!(report.cardinality, maximum_matching_cardinality(&g));

    let device = solver.device().expect("GPU solve created the device");
    assert_eq!(device.config().executor, exec);
    // The pooled executor respects the backend sizing: at most the two
    // configured workers were ever spawned.
    assert!(device.worker_threads_spawned() <= 2);

    // Warm solves on the same session keep the same device (and pool).
    let before = device as *const _;
    solver.solve(&g, Algorithm::gpr_default()).unwrap();
    assert!(std::ptr::eq(solver.device().unwrap(), before));
}
