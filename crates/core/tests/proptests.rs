//! Property-based tests for the GPU algorithms: on arbitrary random bipartite
//! graphs, every variant of G-PR and G-HK/G-HKDW must return a valid matching
//! whose cardinality equals the independent oracle's, on both virtual-GPU
//! backends, from both an empty and a greedy initial matching.

use gpm_core::gpr::{self, GprConfig, GprVariant};
use gpm_core::{ghk, GhkVariant, GrStrategy};
use gpm_gpu::VirtualGpu;
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::verify::{is_maximum, maximum_matching_cardinality};
use gpm_graph::{BipartiteCsr, Matching};
use gpm_testutil::arb_bipartite_with;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = BipartiteCsr> {
    arb_bipartite_with(30, 30, 150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gpr_variants_match_oracle_on_sequential_backend(g in arb_graph()) {
        let gpu = VirtualGpu::sequential();
        let opt = maximum_matching_cardinality(&g);
        let init = cheap_matching(&g);
        for variant in [GprVariant::First, GprVariant::ActiveList, GprVariant::Shrink] {
            let r = gpr::run(&gpu, &g, &init, GprConfig::with_variant(variant));
            prop_assert_eq!(r.matching.cardinality(), opt, "{}", variant.label());
            prop_assert!(is_maximum(&g, &r.matching));
            prop_assert!(r.matching.validate_against(&g).is_ok());
        }
    }

    #[test]
    fn gpr_shrink_matches_oracle_on_parallel_backend(g in arb_graph()) {
        let gpu = VirtualGpu::parallel();
        let opt = maximum_matching_cardinality(&g);
        let init = cheap_matching(&g);
        let r = gpr::run(&gpu, &g, &init, GprConfig::paper_default());
        prop_assert_eq!(r.matching.cardinality(), opt);
        prop_assert!(is_maximum(&g, &r.matching));
    }

    #[test]
    fn gpr_from_empty_matching_matches_oracle(g in arb_graph()) {
        let gpu = VirtualGpu::sequential();
        let opt = maximum_matching_cardinality(&g);
        let r = gpr::run(&gpu, &g, &Matching::empty_for(&g), GprConfig::paper_default());
        prop_assert_eq!(r.matching.cardinality(), opt);
    }

    #[test]
    fn ghk_variants_match_oracle(g in arb_graph()) {
        let gpu = VirtualGpu::sequential();
        let opt = maximum_matching_cardinality(&g);
        let init = cheap_matching(&g);
        for variant in [GhkVariant::Hk, GhkVariant::Hkdw] {
            let r = ghk::run(&gpu, &g, &init, variant);
            prop_assert_eq!(r.matching.cardinality(), opt, "{}", variant.label());
            prop_assert!(is_maximum(&g, &r.matching));
        }
    }

    #[test]
    fn all_gr_strategies_agree(g in arb_graph(), k in 1u32..20) {
        let gpu = VirtualGpu::sequential();
        let opt = maximum_matching_cardinality(&g);
        let init = cheap_matching(&g);
        for strategy in [GrStrategy::Fixed(k), GrStrategy::Adaptive(f64::from(k) / 5.0)] {
            let r = gpr::run(&gpu, &g, &init, GprConfig::with_strategy(strategy));
            prop_assert_eq!(r.matching.cardinality(), opt, "{}", strategy.label());
        }
    }
}
