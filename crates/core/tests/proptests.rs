//! Property-based tests for the GPU algorithms: on arbitrary random bipartite
//! graphs, every variant of G-PR and G-HK/G-HKDW must return a valid matching
//! whose cardinality equals the independent oracle's, on both virtual-GPU
//! backends, from both an empty and a greedy initial matching.

use gpm_core::gpr::{self, GprConfig, GprVariant};
use gpm_core::solver::{Algorithm, DevicePolicy, Solver};
use gpm_core::{ghk, ExecMode, GhkVariant, GrStrategy, WorklistMode};
use gpm_gpu::VirtualGpu;
use gpm_graph::heuristics::cheap_matching;
use gpm_graph::verify::{is_maximum, maximum_matching_cardinality};
use gpm_graph::{BipartiteCsr, GraphDelta, Matching, VertexId};
use gpm_testutil::arb_bipartite_with;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = BipartiteCsr> {
    arb_bipartite_with(30, 30, 150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gpr_variants_match_oracle_on_sequential_backend(g in arb_graph()) {
        let gpu = VirtualGpu::sequential();
        let opt = maximum_matching_cardinality(&g);
        let init = cheap_matching(&g);
        for variant in [GprVariant::First, GprVariant::ActiveList, GprVariant::Shrink] {
            let r = gpr::run(&gpu, &g, &init, GprConfig::with_variant(variant));
            prop_assert_eq!(r.matching.cardinality(), opt, "{}", variant.label());
            prop_assert!(is_maximum(&g, &r.matching));
            prop_assert!(r.matching.validate_against(&g).is_ok());
        }
    }

    #[test]
    fn gpr_shrink_matches_oracle_on_parallel_backend(g in arb_graph()) {
        let gpu = VirtualGpu::parallel();
        let opt = maximum_matching_cardinality(&g);
        let init = cheap_matching(&g);
        let r = gpr::run(&gpu, &g, &init, GprConfig::paper_default());
        prop_assert_eq!(r.matching.cardinality(), opt);
        prop_assert!(is_maximum(&g, &r.matching));
    }

    #[test]
    fn gpr_from_empty_matching_matches_oracle(g in arb_graph()) {
        let gpu = VirtualGpu::sequential();
        let opt = maximum_matching_cardinality(&g);
        let r = gpr::run(&gpu, &g, &Matching::empty_for(&g), GprConfig::paper_default());
        prop_assert_eq!(r.matching.cardinality(), opt);
    }

    #[test]
    fn ghk_variants_match_oracle(g in arb_graph()) {
        let gpu = VirtualGpu::sequential();
        let opt = maximum_matching_cardinality(&g);
        let init = cheap_matching(&g);
        for variant in [GhkVariant::Hk, GhkVariant::Hkdw] {
            let r = ghk::run(&gpu, &g, &init, variant);
            prop_assert_eq!(r.matching.cardinality(), opt, "{}", variant.label());
            prop_assert!(is_maximum(&g, &r.matching));
        }
    }

    #[test]
    fn persistent_exec_is_equivalent_for_every_gpu_engine(g in arb_graph()) {
        // The persistent megakernel loop is the same round loop as
        // launch-per-round, merely device-resident: on arbitrary graphs,
        // every GPU engine × worklist mode must produce the same
        // cardinality and (sequential backend, deterministic counters) the
        // same per-round kernel work, with the whole resident solve issuing
        // at most entry + fix-up launches.
        let gpu = VirtualGpu::sequential();
        let init = cheap_matching(&g);
        for mode in WorklistMode::all() {
            for variant in [GprVariant::First, GprVariant::ActiveList, GprVariant::Shrink] {
                let base = GprConfig::with_variant(variant).with_worklist(mode);
                let launch = gpr::run(&gpu, &g, &init, base);
                let resident = gpr::run(&gpu, &g, &init, base.with_exec(ExecMode::Persistent));
                prop_assert_eq!(
                    launch.matching.cardinality(),
                    resident.matching.cardinality(),
                    "{} + {}", variant.label(), mode
                );
                prop_assert_eq!(
                    launch.stats.loops, resident.stats.loops,
                    "{} + {}", variant.label(), mode
                );
                prop_assert!(resident.stats.device.total_launches() <= 2);
            }
            for variant in [GhkVariant::Hk, GhkVariant::Hkdw] {
                let launch = ghk::run_with_exec_stop(
                    &gpu, &g, &init, variant, mode, ExecMode::LaunchPerRound,
                    &mut gpm_core::GhkWorkspace::new(), &gpm_gpu::StopCheck::never(),
                );
                let resident = ghk::run_with_exec_stop(
                    &gpu, &g, &init, variant, mode, ExecMode::Persistent,
                    &mut gpm_core::GhkWorkspace::new(), &gpm_gpu::StopCheck::never(),
                );
                prop_assert_eq!(
                    launch.matching.cardinality(),
                    resident.matching.cardinality(),
                    "{} + {}", variant.label(), mode
                );
                prop_assert_eq!(
                    launch.stats.phases, resident.stats.phases,
                    "{} + {}", variant.label(), mode
                );
                prop_assert!(!launch.stats.stopped && !resident.stats.stopped);
                prop_assert!(resident.stats.device.total_launches() <= 1);
            }
        }
    }

    #[test]
    fn resolve_cardinality_matches_cold_oracle_for_every_engine(
        g in arb_graph(),
        inserts in proptest::collection::vec((0u32..35, 0u32..35), 0..15),
        remove_picks in proptest::collection::vec(0usize..1000, 0..8),
        clear_rows in proptest::collection::vec(0u32..35, 0..3),
        clear_cols in proptest::collection::vec(0u32..35, 0..3),
        dims in (0usize..3, 0usize..3),
    ) {
        let (add_rows, add_cols) = dims;
        // Build an in-bounds delta that mixes inserts, removals of real
        // edges (including a matched one, forced below), vertex clears, and
        // dimension growth.
        let new_rows = g.num_rows() + add_rows;
        let new_cols = g.num_cols() + add_cols;
        let mut delta = GraphDelta::new();
        delta.add_rows(add_rows).add_cols(add_cols);
        delta.extend_inserts(
            inserts
                .iter()
                .filter(|&&(r, c)| (r as usize) < new_rows && (c as usize) < new_cols)
                .copied(),
        );
        let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        if !edges.is_empty() {
            delta.extend_removes(remove_picks.iter().map(|&i| edges[i % edges.len()]));
        }
        for &r in clear_rows.iter().filter(|&&r| (r as usize) < new_rows) {
            delta.clear_row(r);
        }
        for &c in clear_cols.iter().filter(|&&c| (c as usize) < new_cols) {
            delta.clear_col(c);
        }

        // The full engine matrix: every family, every worklist mode, and
        // both the sequential and the pooled virtual-GPU executor.
        let mut algorithms = vec![
            Algorithm::SequentialPushRelabel(0.5),
            Algorithm::PothenFan,
            Algorithm::HopcroftKarp,
            Algorithm::Pdbfs(2),
            Algorithm::gpr(GprVariant::First, GrStrategy::Fixed(4)),
            Algorithm::ghk(GhkVariant::Hk),
        ];
        for mode in WorklistMode::all() {
            algorithms.push(
                Algorithm::gpr(GprVariant::ActiveList, GrStrategy::Fixed(4)).with_worklist(mode),
            );
            algorithms.push(
                Algorithm::gpr(GprVariant::Shrink, GrStrategy::Fixed(4)).with_worklist(mode),
            );
            algorithms.push(Algorithm::ghk(GhkVariant::Hkdw).with_worklist(mode));
        }

        for policy in [DevicePolicy::Sequential, DevicePolicy::Parallel(2)] {
            let mut solver = Solver::builder().device_policy(policy).build().unwrap();
            let base = solver.solve(&g, Algorithm::HopcroftKarp).unwrap();
            // Force the delta to delete a matched edge when one exists.
            let mut delta = delta.clone();
            if let Some((r, c)) = base.matching.pairs().next() {
                delta.remove_edge(r, c);
            }
            let oracle = maximum_matching_cardinality(&g.apply_delta(&delta).unwrap());
            for &algorithm in &algorithms {
                let out = solver
                    .resolve(&g, &base.matching, &delta, algorithm)
                    .unwrap();
                prop_assert_eq!(
                    out.report.report.cardinality, oracle,
                    "{} under {:?}", algorithm, policy
                );
                prop_assert!(out.report.report.matching.validate_against(&out.graph).is_ok());
            }
        }
    }

    #[test]
    fn all_gr_strategies_agree(g in arb_graph(), k in 1u32..20) {
        let gpu = VirtualGpu::sequential();
        let opt = maximum_matching_cardinality(&g);
        let init = cheap_matching(&g);
        for strategy in [GrStrategy::Fixed(k), GrStrategy::Adaptive(f64::from(k) / 5.0)] {
            let r = gpr::run(&gpu, &g, &init, GprConfig::with_strategy(strategy));
            prop_assert_eq!(r.matching.cardinality(), opt, "{}", strategy.label());
        }
    }
}
