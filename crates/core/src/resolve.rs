//! Incremental re-solve: repair the previous matching after a
//! [`GraphDelta`] instead of solving from scratch.
//!
//! The push-relabel formulation is warm-startable — any valid matching is a
//! legal starting state — so when a graph mutates, the cheapest route to the
//! new maximum matching is usually:
//!
//! 1. patch the graph with [`BipartiteCsr::apply_delta`];
//! 2. project the previous matching onto the patched graph
//!    ([`Matching::project_onto`]), dropping only the pairs the delta
//!    invalidated;
//! 3. run the normal engine from that almost-complete matching.  The
//!    engines seed their worklists with the *unmatched* columns of the
//!    initial matching, so the first frontier contains exactly the columns
//!    the delta disturbed — work is proportional to the change, not to the
//!    graph.
//!
//! [`Solver::resolve`] packages those steps; [`ResolveReport`] records how
//! much warm state survived (dropped pairs, seeded frontier, device rounds)
//! so callers — and the test suite — can verify the work really was
//! sub-linear.  When a warm start cannot help — the delta is too large, or
//! the repaired matching would start the engine from no smaller a frontier
//! than the init heuristic does — the solver falls back to a cold solve and
//! says so in the report.

use crate::cancel::SolveCtx;
use crate::error::SolveError;
use crate::solver::{Algorithm, SolveReport, Solver};
use gpm_graph::{BipartiteCsr, DeltaLineage, GraphDelta, Matching};

/// When the delta's touched-edge bound exceeds this fraction of the patched
/// graph's edges, [`Solver::resolve`] skips the warm start: repairing and
/// re-converging a mostly-invalidated matching costs more than the cheap
/// initialization heuristic it would replace.
pub const WARM_START_CHURN_LIMIT: f64 = 0.5;

/// The warm start must leave a frontier (unmatched, not-proven-unmatchable
/// columns) at least this many times smaller than the init heuristic's
/// before [`Solver::resolve`] prefers it.  The engines' work scales with
/// the frontier they must drain, so a repaired matching that is no better
/// a starting point than a fresh greedy pass — large churn, or a sentinel
/// reset that re-opens a deficient graph's whole unmatchable set — is
/// discarded and the resolve runs the identical-to-cold path instead.
pub const WARM_START_FRONTIER_ADVANTAGE: usize = 2;

/// Outcome of one incremental re-solve.
#[derive(Clone, Debug)]
pub struct ResolveReport {
    /// The underlying solve outcome (matching, cardinality, timings).
    pub report: SolveReport,
    /// `true` when the solver discarded the warm state and ran the normal
    /// cold path: delta churn above [`WARM_START_CHURN_LIMIT`], or a
    /// repaired matching whose frontier was not
    /// [`WARM_START_FRONTIER_ADVANTAGE`]× smaller than the init
    /// heuristic's.
    pub fell_back_to_cold: bool,
    /// Matched pairs of the previous matching invalidated by the delta
    /// (zero on the cold path).
    pub dropped_pairs: usize,
    /// Cardinality of the starting matching the engine was given — the
    /// repaired previous matching on the warm path, the init heuristic's
    /// matching on the cold path.
    pub warm_cardinality: usize,
    /// Columns left unmatched by the starting matching: the exact frontier
    /// the engines seed their worklists from.  Tests assert this is
    /// proportional to the delta, not to the graph.
    pub seeded_frontier: usize,
    /// Device kernel launches the re-solve needed (0 for CPU algorithms) —
    /// the round-granular work measure.
    pub rounds: u64,
}

/// Result of [`Solver::resolve`]: the patched graph, its lineage record, and
/// the re-solve report.
#[derive(Clone, Debug)]
pub struct ResolveOutcome {
    /// The patched graph (`parent.apply_delta(delta)`).
    pub graph: BipartiteCsr,
    /// Parent → child fingerprint record for cache/lineage keying.
    pub lineage: DeltaLineage,
    /// What the re-solve did and how much warm state it reused.
    pub report: ResolveReport,
}

impl Solver {
    /// Applies `delta` to `parent` and computes a maximum matching of the
    /// patched graph by repairing `previous` (a matching of `parent`,
    /// typically the last solve's result) instead of starting over.
    ///
    /// Equivalent to [`Solver::resolve_ctx`] with an unbounded context.
    pub fn resolve(
        &mut self,
        parent: &BipartiteCsr,
        previous: &Matching,
        delta: &GraphDelta,
        algorithm: Algorithm,
    ) -> Result<ResolveOutcome, SolveError> {
        self.resolve_ctx(parent, previous, delta, algorithm, &SolveCtx::unbounded())
    }

    /// [`Solver::resolve`] under the cancellation/deadline signals of `ctx`
    /// (same round-granular semantics as
    /// [`Solver::solve_with_initial_ctx`]).
    ///
    /// Graph-side errors (a delta referencing vertices outside the patched
    /// shape) surface as [`SolveError::InvalidConfig`].
    pub fn resolve_ctx(
        &mut self,
        parent: &BipartiteCsr,
        previous: &Matching,
        delta: &GraphDelta,
        algorithm: Algorithm,
        ctx: &SolveCtx,
    ) -> Result<ResolveOutcome, SolveError> {
        let (graph, lineage) =
            parent.apply_delta_lineage(delta).map_err(|e| SolveError::InvalidConfig {
                algorithm: algorithm.label(),
                reason: format!("delta does not apply: {e}"),
            })?;
        let report = self.resolve_prepared_ctx(&graph, previous, delta, algorithm, ctx)?;
        Ok(ResolveOutcome { graph, lineage, report })
    }

    /// The re-solve core for callers that have already patched the graph
    /// (e.g. the `gpm-service` shards, which patch at `patch_graph` time and
    /// re-solve later): computes a maximum matching of `child` starting from
    /// `previous`, a matching of the *parent* graph.
    ///
    /// `delta` is consulted for the fallback decision (churn bound,
    /// evaluated against `child` — a delta that only clears vertices scores
    /// low because the cleared vertices are already isolated in `child`,
    /// which is correct: each clear invalidates at most one matched pair)
    /// and for the sentinel policy: previously proven unmatchable columns
    /// stay marked only when the delta inserts no edges *and* the
    /// projection dropped no matched pairs.  New edges anywhere can create
    /// augmenting paths to columns whose own adjacency never changed, and a
    /// dropped pair frees a row whose remaining edges can do the same — in
    /// either case the old proofs no longer hold and the sentinels are
    /// reset.
    pub fn resolve_prepared_ctx(
        &mut self,
        child: &BipartiteCsr,
        previous: &Matching,
        delta: &GraphDelta,
        algorithm: Algorithm,
        ctx: &SolveCtx,
    ) -> Result<ResolveReport, SolveError> {
        let churn = delta.touched_edge_bound(child) as f64;
        let warm_ok = churn <= WARM_START_CHURN_LIMIT * child.num_edges().max(1) as f64;
        // The heuristic initial is always built: it is the fallback start,
        // and its frontier is the yardstick the repaired matching must beat.
        let cold_initial = self.init_heuristic().build(child);
        let cold_frontier = cold_initial.unmatched_cols(false).len();
        let (initial, dropped, fell_back_to_cold) = if warm_ok {
            let keep_sentinels = !delta.inserts_edges();
            let (repaired, dropped) = previous.project_onto(child, keep_sentinels);
            // A dropped pair frees a row: its surviving edges may now open
            // augmenting paths to columns proven unmatchable under the old
            // matching, so those proofs are void and the sentinels must go.
            let repaired = if keep_sentinels && dropped > 0 {
                previous.project_onto(child, false).0
            } else {
                repaired
            };
            let warm_frontier = repaired.unmatched_cols(false).len();
            if warm_frontier * WARM_START_FRONTIER_ADVANTAGE <= cold_frontier {
                (repaired, dropped, false)
            } else {
                (cold_initial, 0, true)
            }
        } else {
            (cold_initial, 0, true)
        };
        let warm_cardinality = initial.cardinality();
        let seeded_frontier = initial.unmatched_cols(false).len();
        let report = self.solve_with_initial_ctx(child, &initial, algorithm, ctx)?;
        let rounds = report.device_stats.as_ref().map_or(0, |s| s.total_launches());
        Ok(ResolveReport {
            report,
            fell_back_to_cold,
            dropped_pairs: dropped,
            warm_cardinality,
            seeded_frontier,
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::DevicePolicy;
    use gpm_graph::gen;
    use gpm_graph::verify::maximum_matching_cardinality;
    use gpm_graph::VertexId;

    fn solver() -> Solver {
        Solver::builder().device_policy(DevicePolicy::Sequential).build().unwrap()
    }

    #[test]
    fn resolve_matches_cold_oracle_after_edge_churn() {
        let parent = gen::uniform_random(120, 110, 700, 11).unwrap();
        let mut s = solver();
        let base = s.solve(&parent, Algorithm::gpr_default()).unwrap();

        let mut delta = GraphDelta::new();
        // Remove a few edges (including matched ones) and add a few.
        let edges: Vec<_> = parent.edges().collect();
        for i in [0usize, 13, 44, 101] {
            let (r, c) = edges[i % edges.len()];
            delta.remove_edge(r, c);
        }
        delta.insert_edge(3, 107).insert_edge(99, 0);

        let out = s.resolve(&parent, &base.matching, &delta, Algorithm::gpr_default()).unwrap();
        assert!(!out.report.fell_back_to_cold);
        let oracle = maximum_matching_cardinality(&out.graph);
        assert_eq!(out.report.report.cardinality, oracle);
        out.report.report.matching.validate_against(&out.graph).unwrap();
        assert_eq!(out.lineage.parent, parent.fingerprint());
        assert_eq!(out.lineage.child, out.graph.fingerprint());
    }

    #[test]
    fn warm_start_work_is_proportional_to_the_delta() {
        // A planted-perfect graph: the base solve matches everything, so
        // after a tiny delta the warm frontier must be tiny too.
        let parent = gen::planted_perfect(400, 1600, 3).unwrap();
        let mut s = solver();
        let base = s.solve(&parent, Algorithm::gpr_default()).unwrap();
        assert_eq!(base.cardinality, 400);

        // Drop two matched edges.
        let pairs: Vec<_> = base.matching.pairs().collect();
        let mut delta = GraphDelta::new();
        for &(r, c) in pairs.iter().take(2) {
            delta.remove_edge(r, c);
        }
        let out = s.resolve(&parent, &base.matching, &delta, Algorithm::gpr_default()).unwrap();
        assert!(!out.report.fell_back_to_cold);
        assert_eq!(out.report.dropped_pairs, 2);
        // The engine started from the repaired matching, not from scratch…
        assert_eq!(out.report.warm_cardinality, 398);
        // …and seeded only the two disturbed columns.
        assert!(out.report.seeded_frontier <= 2, "frontier {}", out.report.seeded_frontier);
        let oracle = maximum_matching_cardinality(&out.graph);
        assert_eq!(out.report.report.cardinality, oracle);

        // A cold solve of the same child does strictly more device rounds.
        let cold = s.solve(&out.graph, Algorithm::gpr_default()).unwrap();
        let cold_rounds = cold.device_stats.as_ref().unwrap().total_launches();
        assert!(
            out.report.rounds < cold_rounds,
            "warm {} rounds vs cold {cold_rounds}",
            out.report.rounds
        );
        assert_eq!(cold.cardinality, out.report.report.cardinality);
    }

    #[test]
    fn huge_delta_falls_back_to_cold() {
        let parent = gen::uniform_random(60, 60, 300, 5).unwrap();
        let mut s = solver();
        let base = s.solve(&parent, Algorithm::HopcroftKarp).unwrap();
        // Remove most of the graph's edges — far past the churn limit.
        let mut delta = GraphDelta::new();
        let victims: Vec<_> = parent.edges().take(parent.num_edges() * 4 / 5).collect();
        delta.extend_removes(victims);
        let out = s.resolve(&parent, &base.matching, &delta, Algorithm::HopcroftKarp).unwrap();
        assert!(out.report.fell_back_to_cold);
        assert_eq!(out.report.dropped_pairs, 0);
        assert_eq!(out.report.report.cardinality, maximum_matching_cardinality(&out.graph));
    }

    #[test]
    fn vertex_additions_and_clears_resolve_correctly() {
        // `planted_perfect(n, extra, seed)` is an n×n graph.
        let parent = gen::planted_perfect(80, 320, 9).unwrap();
        let mut s = solver();
        let base = s.solve(&parent, Algorithm::ghk(crate::ghk::GhkVariant::Hkdw)).unwrap();
        let mut delta = GraphDelta::new();
        delta.add_rows(3).add_cols(2);
        // New rows get edges to both old and new columns.
        delta.insert_edge(80, 0).insert_edge(81, 80).insert_edge(82, 81);
        // And one old vertex goes away.
        delta.clear_col(5);
        let out = s
            .resolve(&parent, &base.matching, &delta, Algorithm::ghk(crate::ghk::GhkVariant::Hkdw))
            .unwrap();
        assert_eq!(out.graph.num_rows(), 83);
        assert_eq!(out.graph.num_cols(), 82);
        assert_eq!(out.report.report.cardinality, maximum_matching_cardinality(&out.graph));
        out.report.report.matching.validate_against(&out.graph).unwrap();
    }

    #[test]
    fn unmatchable_sentinels_reset_when_delta_inserts() {
        // Column 1 is unmatchable in the parent (no edges at all); an insert
        // elsewhere must still allow it to be re-proven, and an insert *to*
        // it must let it match.
        let parent = BipartiteCsr::from_edges(2, 2, &[(0, 0), (1, 0)]).unwrap();
        let mut s = solver();
        let base = s.solve(&parent, Algorithm::gpr_default()).unwrap();
        assert_eq!(base.cardinality, 1);
        let mut delta = GraphDelta::new();
        delta.insert_edge(1, 1);
        let out = s.resolve(&parent, &base.matching, &delta, Algorithm::gpr_default()).unwrap();
        assert_eq!(out.report.report.cardinality, 2);
    }

    #[test]
    fn unmatchable_sentinels_reset_when_a_matched_edge_is_removed() {
        // Only row 0 reaches columns 0 and 1; the base solve matches one of
        // them and proves the other unmatchable.  Removing the *matched*
        // edge frees the row, which re-opens a path to the sentinel column —
        // the warm start must not trust the stale proof.
        //
        // The three extra gadgets (cols `A_i = {2i+1, 2i+2}`, `B_i =
        // {2i+1}`) trap the column-order greedy init — it hands `A_i` the
        // only row `B_i` can use — so the cold frontier is large enough for
        // the frontier-advantage rule to pick the warm path this test is
        // about.
        let mut edges = vec![(0, 0), (0, 1)];
        for i in 0..3u32 {
            let (r0, r1, a, b) = (1 + 2 * i, 2 + 2 * i, 2 + 2 * i, 3 + 2 * i);
            edges.extend([(r0, a), (r1, a), (r0, b)]);
        }
        let parent = BipartiteCsr::from_edges(7, 8, &edges).unwrap();
        let mut s = solver();
        let base = s.solve(&parent, Algorithm::gpr_default()).unwrap();
        assert_eq!(base.cardinality, 7);
        let matched_col = base.matching.row_mate(0).unwrap();
        assert!(matched_col <= 1, "row 0 can only match column 0 or 1");
        let mut delta = GraphDelta::new();
        delta.remove_edge(0, matched_col);
        let out = s.resolve(&parent, &base.matching, &delta, Algorithm::gpr_default()).unwrap();
        assert!(!out.report.fell_back_to_cold, "the repaired frontier is far below the greedy one");
        assert_eq!(out.report.report.cardinality, 7, "row 0 re-matches the other column");
    }

    #[test]
    fn bad_delta_is_a_structured_error() {
        let parent = gen::uniform_random(10, 10, 40, 1).unwrap();
        let mut s = solver();
        let base = s.solve(&parent, Algorithm::HopcroftKarp).unwrap();
        let mut delta = GraphDelta::new();
        delta.insert_edge(99, 0);
        let err = s.resolve(&parent, &base.matching, &delta, Algorithm::HopcroftKarp).unwrap_err();
        assert!(matches!(err, SolveError::InvalidConfig { .. }));
        assert!(err.to_string().contains("delta does not apply"));
    }

    #[test]
    fn chained_resolves_track_lineage() {
        let g0 = gen::planted_perfect(100, 400, 21).unwrap();
        let mut s = solver();
        let mut graph = g0.clone();
        let mut matching = s.solve(&graph, Algorithm::gpr_default()).unwrap().matching;
        let mut parent_fp = graph.fingerprint();
        for step in 0..5u32 {
            let mut delta = GraphDelta::new();
            delta.remove_edge(step, matching.row_mate(step).unwrap());
            delta.insert_edge(step, (step + 50) as VertexId % 100);
            let out = s.resolve(&graph, &matching, &delta, Algorithm::gpr_default()).unwrap();
            assert_eq!(out.lineage.parent, parent_fp);
            assert_eq!(
                out.report.report.cardinality,
                maximum_matching_cardinality(&out.graph),
                "step {step}"
            );
            parent_fp = out.lineage.child;
            graph = out.graph;
            matching = out.report.report.matching;
        }
    }
}
