//! The [`Engine`] abstraction: one uniform, fallible interface over every
//! algorithm family in the workspace.
//!
//! Each of the paper's seven families — the three G-PR variants, G-HK /
//! G-HKDW, sequential PR, PF+, HK, HKDW, and P-DBFS — is wrapped in an
//! engine that owns its **warm workspace** (device state, label arrays,
//! active-list staging).  A [`crate::solver::Solver`] session keeps one
//! engine per [`Algorithm`] it has run, so repeated solves on same-shaped
//! graphs skip the setup cost the paper excludes from its reported runtimes.

use crate::cancel::SolveCtx;
use crate::error::SolveError;
use crate::ghk::{self, GhkVariant, GhkWorkspace};
use crate::gpr::{self, GprConfig, GprWorkspace};
use crate::solver::Algorithm;
use gpm_cpu::{
    hkdw, hopcroft_karp, pdbfs, pothen_fan, sequential_pr_with, PdbfsConfig, PrConfig, PrWorkspace,
};
use gpm_gpu::{DeviceStats, VirtualGpu};
use gpm_graph::{BipartiteCsr, Matching};

/// Per-solve context handed to an engine: the (optional) virtual device the
/// solver session resolved for this call, plus the cancellation/deadline
/// signals the round loops poll.
pub struct EngineCtx<'a> {
    /// The device GPU engines run on; `None` under a CPU-only policy.
    pub device: Option<&'a VirtualGpu>,
    /// Cancellation and deadline for this solve (default: unbounded).
    pub stop: SolveCtx,
}

impl EngineCtx<'_> {
    /// The device, or [`SolveError::DeviceRequired`] for `algorithm`.
    pub fn require_device(&self, algorithm: &Algorithm) -> Result<&VirtualGpu, SolveError> {
        self.device.ok_or_else(|| SolveError::DeviceRequired { algorithm: algorithm.label() })
    }
}

/// What every engine returns: the matching plus the measurements the
/// [`crate::solver::SolveReport`] is assembled from.
#[derive(Debug)]
pub struct EngineOutput {
    /// The computed (consistent, maximum) matching.
    pub matching: Matching,
    /// Host wall-clock seconds spent inside the engine.
    pub wall_seconds: f64,
    /// Per-kernel device statistics (GPU engines only).
    pub device_stats: Option<DeviceStats>,
}

/// A matching algorithm behind the uniform, fallible solve interface.
///
/// `solve` takes `&mut self` so the engine can reuse its warm workspace
/// across calls; engines are cheap to create cold via [`engine_for`].
pub trait Engine {
    /// The algorithm this engine runs.
    fn algorithm(&self) -> Algorithm;

    /// Solves one instance, reusing any warm state from previous calls.
    fn solve(
        &mut self,
        graph: &BipartiteCsr,
        initial: &Matching,
        ctx: &mut EngineCtx<'_>,
    ) -> Result<EngineOutput, SolveError>;
}

/// Builds the engine for `algorithm` with the paper's default tuning,
/// validating the algorithm's parameters first
/// ([`SolveError::InvalidConfig`] on NaN/negative global-relabel factors or
/// zero thread counts).
pub fn engine_for(algorithm: Algorithm) -> Result<Box<dyn Engine + Send>, SolveError> {
    engine_for_tuned(algorithm, &GprConfig::paper_default())
}

/// Builds the engine for `algorithm` over a caller-supplied G-PR tuning
/// template (`Solver::builder().gpr_config(..)`): the template's shrink
/// threshold and loop cap apply, while the variant, strategy, and worklist
/// representation come from the algorithm itself.
pub fn engine_for_tuned(
    algorithm: Algorithm,
    gpr_base: &GprConfig,
) -> Result<Box<dyn Engine + Send>, SolveError> {
    algorithm.validate()?;
    Ok(match algorithm {
        Algorithm::GpuPushRelabel(variant, strategy, worklist, exec) => Box::new(GprEngine {
            algorithm,
            config: GprConfig { variant, strategy, worklist, exec, ..*gpr_base },
            workspace: GprWorkspace::new(),
        }),
        Algorithm::GpuHopcroftKarp(variant, worklist, exec) => Box::new(GhkEngine {
            algorithm,
            variant,
            worklist,
            exec,
            workspace: GhkWorkspace::new(),
        }),
        Algorithm::SequentialPushRelabel(k) => Box::new(PrEngine {
            algorithm,
            config: PrConfig { global_relabel_k: k, ..PrConfig::default() },
            workspace: PrWorkspace::new(),
        }),
        Algorithm::PothenFan => Box::new(PothenFanEngine),
        Algorithm::HopcroftKarp => Box::new(HopcroftKarpEngine),
        Algorithm::Hkdw => Box::new(HkdwEngine),
        Algorithm::Pdbfs(threads) => Box::new(PdbfsEngine { threads }),
    })
}

/// G-PR (all three kernel variants) with a warm device workspace.
struct GprEngine {
    algorithm: Algorithm,
    config: GprConfig,
    workspace: GprWorkspace,
}

impl Engine for GprEngine {
    fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    fn solve(
        &mut self,
        graph: &BipartiteCsr,
        initial: &Matching,
        ctx: &mut EngineCtx<'_>,
    ) -> Result<EngineOutput, SolveError> {
        let device = ctx.require_device(&self.algorithm)?;
        let stop = ctx.stop.stop_check();
        let r = gpr::run_with_stop(device, graph, initial, self.config, &mut self.workspace, &stop);
        if r.stats.stopped {
            return Err(ctx.stop.stop_error(r.stats.loops, r.matching.cardinality()));
        }
        Ok(EngineOutput {
            matching: r.matching,
            wall_seconds: r.stats.seconds,
            device_stats: Some(r.stats.device),
        })
    }
}

/// G-HK / G-HKDW with a warm device workspace.
struct GhkEngine {
    algorithm: Algorithm,
    variant: GhkVariant,
    worklist: gpm_gpu::WorklistMode,
    exec: gpm_gpu::ExecMode,
    workspace: GhkWorkspace,
}

impl Engine for GhkEngine {
    fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    fn solve(
        &mut self,
        graph: &BipartiteCsr,
        initial: &Matching,
        ctx: &mut EngineCtx<'_>,
    ) -> Result<EngineOutput, SolveError> {
        let device = ctx.require_device(&self.algorithm)?;
        let stop = ctx.stop.stop_check();
        let r = ghk::run_with_exec_stop(
            device,
            graph,
            initial,
            self.variant,
            self.worklist,
            self.exec,
            &mut self.workspace,
            &stop,
        );
        if r.stats.stopped {
            return Err(ctx.stop.stop_error(r.stats.phases, r.matching.cardinality()));
        }
        Ok(EngineOutput {
            matching: r.matching,
            wall_seconds: r.stats.seconds,
            device_stats: Some(r.stats.device),
        })
    }
}

/// Sequential push-relabel with warm label arrays.
struct PrEngine {
    algorithm: Algorithm,
    config: PrConfig,
    workspace: PrWorkspace,
}

impl Engine for PrEngine {
    fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    fn solve(
        &mut self,
        graph: &BipartiteCsr,
        initial: &Matching,
        _ctx: &mut EngineCtx<'_>,
    ) -> Result<EngineOutput, SolveError> {
        let r = sequential_pr_with(graph, initial, self.config, &mut self.workspace);
        Ok(EngineOutput { matching: r.matching, wall_seconds: r.stats.seconds, device_stats: None })
    }
}

/// Pothen–Fan with lookahead (stateless between solves).
struct PothenFanEngine;

impl Engine for PothenFanEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::PothenFan
    }

    fn solve(
        &mut self,
        graph: &BipartiteCsr,
        initial: &Matching,
        _ctx: &mut EngineCtx<'_>,
    ) -> Result<EngineOutput, SolveError> {
        let r = pothen_fan(graph, initial);
        Ok(EngineOutput { matching: r.matching, wall_seconds: r.stats.seconds, device_stats: None })
    }
}

/// Hopcroft–Karp (stateless between solves).
struct HopcroftKarpEngine;

impl Engine for HopcroftKarpEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::HopcroftKarp
    }

    fn solve(
        &mut self,
        graph: &BipartiteCsr,
        initial: &Matching,
        _ctx: &mut EngineCtx<'_>,
    ) -> Result<EngineOutput, SolveError> {
        let r = hopcroft_karp(graph, initial);
        Ok(EngineOutput { matching: r.matching, wall_seconds: r.stats.seconds, device_stats: None })
    }
}

/// HKDW (stateless between solves).
struct HkdwEngine;

impl Engine for HkdwEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Hkdw
    }

    fn solve(
        &mut self,
        graph: &BipartiteCsr,
        initial: &Matching,
        _ctx: &mut EngineCtx<'_>,
    ) -> Result<EngineOutput, SolveError> {
        let r = hkdw(graph, initial);
        Ok(EngineOutput { matching: r.matching, wall_seconds: r.stats.seconds, device_stats: None })
    }
}

/// Multicore P-DBFS (spawns its worker threads per solve).
struct PdbfsEngine {
    threads: usize,
}

impl Engine for PdbfsEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Pdbfs(self.threads)
    }

    fn solve(
        &mut self,
        graph: &BipartiteCsr,
        initial: &Matching,
        _ctx: &mut EngineCtx<'_>,
    ) -> Result<EngineOutput, SolveError> {
        let r = pdbfs(graph, initial, PdbfsConfig { threads: self.threads });
        Ok(EngineOutput { matching: r.matching, wall_seconds: r.stats.seconds, device_stats: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::GrStrategy;
    use gpm_graph::gen;
    use gpm_graph::heuristics::cheap_matching;
    use gpm_graph::verify::maximum_matching_cardinality;

    fn seven_families() -> Vec<Algorithm> {
        vec![
            Algorithm::gpr_default(),
            Algorithm::ghk(GhkVariant::Hkdw),
            Algorithm::SequentialPushRelabel(0.5),
            Algorithm::PothenFan,
            Algorithm::HopcroftKarp,
            Algorithm::Hkdw,
            Algorithm::Pdbfs(2),
        ]
    }

    #[test]
    fn every_engine_solves_through_the_uniform_interface() {
        let g = gen::uniform_random(60, 60, 320, 9).unwrap();
        let initial = cheap_matching(&g);
        let opt = maximum_matching_cardinality(&g);
        let gpu = VirtualGpu::sequential();
        for alg in seven_families() {
            let mut engine = engine_for(alg).unwrap();
            assert_eq!(engine.algorithm(), alg);
            let mut ctx = EngineCtx { device: Some(&gpu), stop: SolveCtx::default() };
            let out = engine.solve(&g, &initial, &mut ctx).unwrap();
            assert_eq!(out.matching.cardinality(), opt, "{alg}");
            assert_eq!(out.device_stats.is_some(), alg.is_gpu(), "{alg}");
            // A second call on the same engine (now warm) agrees.
            let again = engine.solve(&g, &initial, &mut ctx).unwrap();
            assert_eq!(again.matching.cardinality(), opt, "{alg} warm");
        }
    }

    #[test]
    fn gpu_engines_fail_without_a_device() {
        let g = gen::uniform_random(10, 10, 40, 1).unwrap();
        let initial = cheap_matching(&g);
        for alg in [
            Algorithm::gpr(crate::gpr::GprVariant::First, GrStrategy::paper_default()),
            Algorithm::ghk(GhkVariant::Hk),
        ] {
            let mut engine = engine_for(alg).unwrap();
            let mut ctx = EngineCtx { device: None, stop: SolveCtx::default() };
            let err = engine.solve(&g, &initial, &mut ctx).unwrap_err();
            assert!(matches!(err, SolveError::DeviceRequired { .. }), "{alg}");
        }
    }

    #[test]
    fn engine_for_rejects_invalid_parameters() {
        assert!(matches!(engine_for(Algorithm::Pdbfs(0)), Err(SolveError::InvalidConfig { .. })));
        assert!(matches!(
            engine_for(Algorithm::SequentialPushRelabel(f64::NAN)),
            Err(SolveError::InvalidConfig { .. })
        ));
    }
}
