//! The shared round-loop driver every GPU engine's solve loop runs on.
//!
//! All three GPU engine families (G-PR, G-HK/G-HKDW, and G-GR's BFS) share
//! the same scaffolding: a loop that polls a [`StopCheck`] before each
//! round, runs the round's kernels, and exits either because the algorithm
//! converged or because the check fired.  [`drive_rounds`] owns that
//! scaffolding once, for both execution modes:
//!
//! * **Launch-per-round** ([`ExecMode::LaunchPerRound`]): the loop runs on
//!   the host and every kernel pays the full launch overhead — the classic
//!   bulk-synchronous structure.
//! * **Persistent** ([`ExecMode::Persistent`]): the whole loop runs inside a
//!   [`VirtualGpu::resident`] scope, so the device's worker threads stay
//!   resident for the entire solve and each kernel becomes a device-resident
//!   round behind the software global barrier — the stop poll then lands
//!   exactly where the paper's megakernel formulation would poll it: on the
//!   leader, between two barrier crossings.
//!
//! Because both modes execute the *same* round closure, their results are
//! equivalent by construction; only the modelled launch cost differs.

use gpm_gpu::{DeviceStats, ExecMode, StopCheck, VirtualGpu};

/// What one round of a [`drive_rounds`] loop decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundOutcome {
    /// Work remains: run another round (after the next stop poll).
    Continue,
    /// The algorithm converged; leave the loop with `stopped = false`.
    Done,
    /// A nested stop fired inside the round (e.g. during a global
    /// relabeling); leave the loop with `stopped = true`.
    Stopped,
}

/// Runs `round` until it reports [`RoundOutcome::Done`], polling `stop`
/// before every invocation.  Returns `true` iff the loop was stopped early —
/// by the poll or by a [`RoundOutcome::Stopped`] from inside a round.
///
/// When `resident` is `Some((name, domain))` the whole loop executes inside
/// a [`VirtualGpu::resident`] scope of that name: one entry launch keeps
/// `domain` device threads (clamped to the device's resident capacity)
/// alive, and every kernel the rounds issue on this device runs as a
/// barrier-separated resident round instead of a fresh launch.  Callers
/// already inside a resident scope (e.g. a global relabeling invoked from a
/// persistent G-PR loop) must pass `None` — their kernels inherit the
/// ambient scope, and nesting scopes is an error.
pub fn drive_rounds(
    gpu: &VirtualGpu,
    resident: Option<(&'static str, usize)>,
    stop: &StopCheck,
    mut round: impl FnMut() -> RoundOutcome,
) -> bool {
    let mut run = move || loop {
        if stop.should_stop() {
            return true;
        }
        match round() {
            RoundOutcome::Continue => {}
            RoundOutcome::Done => return false,
            RoundOutcome::Stopped => return true,
        }
    };
    match resident {
        Some((name, domain)) => gpu.resident(name, domain, run),
        None => run(),
    }
}

/// The `resident` argument [`drive_rounds`] expects for `exec`: the scope
/// spec under [`ExecMode::Persistent`], `None` under
/// [`ExecMode::LaunchPerRound`].
pub fn resident_scope(
    exec: ExecMode,
    name: &'static str,
    domain: usize,
) -> Option<(&'static str, usize)> {
    match exec {
        ExecMode::Persistent => Some((name, domain.max(1))),
        ExecMode::LaunchPerRound => None,
    }
}

/// Subtracts `base` (a previous device snapshot) from `total`, leaving only
/// the work performed after the snapshot was taken — the per-run isolation
/// every engine's stats reporting relies on.  Rows that did no work in the
/// window are dropped; fused-only and resident-only rows (which launch
/// nothing but are real work) are kept.
pub(crate) fn subtract_device_stats(total: &mut DeviceStats, base: &DeviceStats) {
    for (name, b) in &base.kernels {
        if let Some(t) = total.kernels.get_mut(name) {
            t.launches -= b.launches;
            t.fused_tails -= b.fused_tails;
            t.resident_rounds -= b.resident_rounds;
            t.barriers -= b.barriers;
            t.total_threads -= b.total_threads;
            t.total_work -= b.total_work;
            t.total_atomics -= b.total_atomics;
            t.hot_word_atomics -= b.hot_word_atomics;
            t.modelled_time_ns -= b.modelled_time_ns;
            t.wall_time_ns -= b.wall_time_ns;
        }
    }
    total.kernels.retain(|_, k| k.launches > 0 || k.fused_tails > 0 || k.resident_rounds > 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_rounds_runs_until_done() {
        let gpu = VirtualGpu::sequential();
        let mut rounds = 0;
        let stopped = drive_rounds(&gpu, None, &StopCheck::never(), || {
            rounds += 1;
            if rounds == 5 {
                RoundOutcome::Done
            } else {
                RoundOutcome::Continue
            }
        });
        assert!(!stopped);
        assert_eq!(rounds, 5);
    }

    #[test]
    fn drive_rounds_polls_stop_before_each_round() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let gpu = VirtualGpu::sequential();
        let polls = Arc::new(AtomicU64::new(0));
        let p = Arc::clone(&polls);
        let stop = StopCheck::from_fn(move || p.fetch_add(1, Ordering::Relaxed) >= 3);
        let mut rounds = 0;
        let stopped = drive_rounds(&gpu, None, &stop, || {
            rounds += 1;
            RoundOutcome::Continue
        });
        assert!(stopped);
        // Polls 1..=3 returned false, each preceding one round; poll 4 fired.
        assert_eq!(rounds, 3);
    }

    #[test]
    fn drive_rounds_propagates_inner_stops() {
        let gpu = VirtualGpu::sequential();
        let mut rounds = 0;
        let stopped = drive_rounds(&gpu, None, &StopCheck::never(), || {
            rounds += 1;
            RoundOutcome::Stopped
        });
        assert!(stopped);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn resident_spec_turns_round_launches_into_resident_rounds() {
        let gpu = VirtualGpu::sequential();
        let buf = gpm_gpu::DeviceBuffer::<u64>::new(64, 0);
        let spec = resident_scope(ExecMode::Persistent, "RL-TEST", 64);
        assert_eq!(spec, Some(("RL-TEST", 64)));
        let mut rounds = 0;
        let stopped = drive_rounds(&gpu, spec, &StopCheck::never(), || {
            gpu.launch("RL-STEP", 64, |ctx| {
                ctx.add_work(1);
                buf.fetch_add(ctx.global_id, 1);
            });
            rounds += 1;
            if rounds == 4 {
                RoundOutcome::Done
            } else {
                RoundOutcome::Continue
            }
        });
        assert!(!stopped);
        let stats = gpu.stats();
        assert_eq!(stats.launches_of("RL-STEP"), 0);
        assert_eq!(stats.resident_rounds_of("RL-STEP"), 4);
        assert_eq!(stats.launches_of("RL-TEST"), 1);
        assert!((0..64).all(|i| buf.get(i) == 4));

        assert_eq!(resident_scope(ExecMode::LaunchPerRound, "RL-TEST", 64), None);
        assert_eq!(resident_scope(ExecMode::Persistent, "RL-TEST", 0), Some(("RL-TEST", 1)));
    }
}
