//! Cancellation and deadlines for in-flight solves.
//!
//! The paper's engines are all round-structured: every kernel iteration
//! passes through the worklist's `begin_round` (or the frontier's
//! `advance_frontier`), so the host regains control between rounds.  This
//! module packages the two host-side stop signals — an explicit
//! [`CancelToken`] and a wall-clock deadline — into a [`SolveCtx`] the
//! solver threads down to those round boundaries via
//! [`gpm_gpu::StopCheck`].
//!
//! A stopped solve is not a crash: the engine finishes its current round,
//! repairs device state (e.g. G-PR's `fix_matching`), and surfaces
//! [`SolveError::Cancelled`] / [`SolveError::DeadlineExceeded`] carrying the
//! rounds completed and the cardinality of the consistent partial matching
//! it left behind.

use crate::error::SolveError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared, clonable cancellation flag.
///
/// Clones observe the same flag; [`CancelToken::cancel`] is sticky (there is
/// no un-cancel).  The token is safe to trip from any thread — a service
/// handler can cancel a solve running in a pool worker, or a second TCP
/// connection can cancel a solve started by a first.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.  Engines honour it at the next worklist-round
    /// boundary; queued jobs that have not started are failed immediately.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on this token or
    /// any clone of it.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// `true` when `other` is a clone of this token (shares the flag).
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Why a solve was asked to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The [`CancelToken`] was tripped.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
}

impl StopReason {
    /// Builds the structured [`SolveError`] for this reason, carrying the
    /// progress made before the stop.
    pub fn into_error(self, rounds_completed: u64, partial_cardinality: usize) -> SolveError {
        match self {
            StopReason::Cancelled => {
                SolveError::Cancelled { rounds_completed, partial_cardinality }
            }
            StopReason::DeadlineExceeded => {
                SolveError::DeadlineExceeded { rounds_completed, partial_cardinality }
            }
        }
    }
}

/// Per-solve control context: cancellation and deadline.
///
/// The default context carries neither signal and adds no per-round cost
/// (the engine-side [`gpm_gpu::StopCheck`] degenerates to
/// [`gpm_gpu::StopCheck::never`]).  Cancellation wins ties: a solve that is
/// both cancelled and past its deadline reports [`StopReason::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct SolveCtx {
    /// Cooperative cancellation flag, shared with whoever may cancel.
    pub cancel: Option<CancelToken>,
    /// Absolute wall-clock deadline for the solve.
    pub deadline: Option<Instant>,
}

impl SolveCtx {
    /// A context with no stop signals — solves run to completion.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A context stopping when `token` trips.
    pub fn with_cancel(token: CancelToken) -> Self {
        Self { cancel: Some(token), deadline: None }
    }

    /// A context stopping when the wall clock reaches `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self { cancel: None, deadline: Some(deadline) }
    }

    /// `true` when the context carries no signal at all.
    pub fn is_unbounded(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// Polls both signals.  `None` means keep going.
    pub fn check(&self) -> Option<StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        None
    }

    /// Renders the context as the [`gpm_gpu::StopCheck`] the round loops
    /// poll.  An unbounded context yields [`gpm_gpu::StopCheck::never`], so
    /// the common path stays free.
    pub fn stop_check(&self) -> gpm_gpu::StopCheck {
        if self.is_unbounded() {
            return gpm_gpu::StopCheck::never();
        }
        let ctx = self.clone();
        gpm_gpu::StopCheck::from_fn(move || ctx.check().is_some())
    }

    /// The error a stopped solve should report, given the progress it made.
    /// Falls back to [`SolveError::Cancelled`] if the signal raced away
    /// between the engine observing the stop and this call.
    pub fn stop_error(&self, rounds_completed: u64, partial_cardinality: usize) -> SolveError {
        self.check()
            .unwrap_or(StopReason::Cancelled)
            .into_error(rounds_completed, partial_cardinality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_is_sticky_and_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
        assert!(token.same_token(&clone));
        assert!(!token.same_token(&CancelToken::new()));
    }

    #[test]
    fn unbounded_ctx_never_stops_and_costs_nothing() {
        let ctx = SolveCtx::unbounded();
        assert!(ctx.is_unbounded());
        assert_eq!(ctx.check(), None);
        assert!(ctx.stop_check().is_never());
    }

    #[test]
    fn cancel_dominates_deadline() {
        let token = CancelToken::new();
        let ctx = SolveCtx {
            cancel: Some(token.clone()),
            deadline: Some(Instant::now() - Duration::from_secs(1)),
        };
        assert_eq!(ctx.check(), Some(StopReason::DeadlineExceeded));
        token.cancel();
        assert_eq!(ctx.check(), Some(StopReason::Cancelled));
        assert_eq!(
            ctx.stop_error(3, 17),
            SolveError::Cancelled { rounds_completed: 3, partial_cardinality: 17 }
        );
    }

    #[test]
    fn deadline_in_the_future_does_not_fire() {
        let ctx = SolveCtx::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(ctx.check(), None);
        let check = ctx.stop_check();
        assert!(!check.is_never());
        assert!(!check.should_stop());
    }

    #[test]
    fn expired_deadline_maps_to_the_right_error() {
        let ctx = SolveCtx::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(ctx.check(), Some(StopReason::DeadlineExceeded));
        assert!(ctx.stop_check().should_stop());
        assert_eq!(
            ctx.stop_error(0, 0),
            SolveError::DeadlineExceeded { rounds_completed: 0, partial_cardinality: 0 }
        );
    }
}
